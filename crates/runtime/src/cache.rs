//! The plan cache: concurrent sessions exchanging the same *shape* of
//! data reuse one optimized program instead of re-running the optimizer.
//!
//! The cache key has two halves. The **shape** half hashes everything
//! structural the optimizer's answer depends on: both fragmentations
//! (roots and element sets, not names — renaming a fragment does not
//! change the plan), the cost-model weights and both system profiles.
//! The **stats** half hashes the probed document statistics. Entries are
//! stored per shape and remember the stats they were planned under:
//!
//! * a lookup whose stats hash *drifted* (the source data changed enough
//!   to re-probe differently) evicts the stale plan instead of serving a
//!   program optimized for data that no longer exists,
//! * an optional TTL expires entries outright, bounding how long a plan
//!   can outlive the statistics snapshot it was built from.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xdx_core::{CostModel, Fragmentation, Optimizer, Program, WireFormat};
use xdx_net::fnv64;

/// The two-part cache key of an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Hash of both fragmentation shapes, cost weights and profiles.
    pub shape: u64,
    /// Hash of the probed document statistics.
    pub stats: u64,
}

/// A cached optimizer answer.
#[derive(Debug)]
pub struct CachedPlan {
    /// The placed data-transfer program.
    pub program: Program,
    /// Its estimated cost under the keying model.
    pub cost: f64,
    /// Predicted computation cost of each program node under the keying
    /// model, in the model's work units (indexed like
    /// `program.nodes`). Calibration compares these against observed
    /// per-operator wall time. Empty when the plan predates telemetry.
    pub op_costs: Vec<f64>,
    /// Predicted cross-edge wire bytes for the whole program (the
    /// model's unweighted communication estimate).
    pub comm_bytes: u64,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    stats: u64,
    inserted: Instant,
}

/// Thread-shared map from plan shape to optimized program, with
/// hit/miss/expiry/eviction counters.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<u64, Entry>>,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    stats_evicted: AtomicU64,
    drift_evicted: AtomicU64,
}

impl PlanCache {
    /// An empty cache whose entries never expire by age.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache whose entries expire `ttl` after insertion.
    pub fn with_ttl(ttl: Duration) -> PlanCache {
        PlanCache {
            ttl: Some(ttl),
            ..PlanCache::default()
        }
    }

    /// Looks the key up, counting a hit or a miss. A shape entry that
    /// aged past the TTL, or whose stats hash no longer matches the
    /// probe, is evicted and counts as a miss. On a miss the caller
    /// plans outside any lock and [`insert`](PlanCache::insert)s; two
    /// sessions racing the same key may both plan — the duplicate work
    /// is bounded by the worker count and both arrive at the same
    /// program.
    pub fn lookup(&self, key: PlanKey) -> Option<Arc<CachedPlan>> {
        let mut map = self.map.lock().unwrap();
        if let Some(entry) = map.get(&key.shape) {
            if self.ttl.is_some_and(|ttl| entry.inserted.elapsed() > ttl) {
                map.remove(&key.shape);
                self.expired.fetch_add(1, Ordering::Relaxed);
            } else if entry.stats != key.stats {
                map.remove(&key.shape);
                self.stats_evicted.fetch_add(1, Ordering::Relaxed);
            } else {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(&entry.plan));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a freshly planned program and returns the shared copy
    /// (the already-present one if a racing session with the same stats
    /// inserted first; drifted or expired residents are replaced).
    pub fn insert(&self, key: PlanKey, plan: CachedPlan) -> Arc<CachedPlan> {
        let mut map = self.map.lock().unwrap();
        match map.get(&key.shape) {
            Some(entry)
                if entry.stats == key.stats
                    && self.ttl.is_none_or(|ttl| entry.inserted.elapsed() <= ttl) =>
            {
                Arc::clone(&entry.plan)
            }
            _ => {
                let plan = Arc::new(plan);
                map.insert(
                    key.shape,
                    Entry {
                        plan: Arc::clone(&plan),
                        stats: key.stats,
                        inserted: Instant::now(),
                    },
                );
                plan
            }
        }
    }

    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted because they aged past the TTL.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Entries evicted because the probed statistics drifted.
    pub fn stats_evicted(&self) -> u64 {
        self.stats_evicted.load(Ordering::Relaxed)
    }

    /// Entries evicted because cost-model calibration reported
    /// sustained predicted-vs-observed drift.
    pub fn drift_evicted(&self) -> u64 {
        self.drift_evicted.load(Ordering::Relaxed)
    }

    /// Drops the cached plan for `shape` after calibration declared the
    /// model drifted there: the program was optimized under a cost
    /// model whose predictions no longer track reality, so the next
    /// session re-plans (and re-learns a baseline). Returns whether an
    /// entry was actually evicted.
    pub fn evict_drifted(&self, shape: u64) -> bool {
        let evicted = self.map.lock().unwrap().remove(&shape).is_some();
        if evicted {
            self.drift_evicted.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// Distinct plans cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the stable two-part cache key of an exchange. The optimizer
/// is part of the shape: sessions planned greedily and sessions planned
/// with the exhaustive ordering search must not share one cached program.
/// So is the delta `(base_version, head_version)` pair when present: a
/// delta session's plan embeds which snapshot it diffs against, and a
/// full-ship session (`versions: None`) must not replay a delta plan —
/// nor may two deltas against different version pairs share one.
pub fn plan_key(
    source: &Fragmentation,
    target: &Fragmentation,
    model: &CostModel,
    optimizer: Optimizer,
    versions: Option<(u64, u64)>,
) -> PlanKey {
    plan_key_with_fanout(source, target, model, optimizer, versions, 1)
}

/// [`plan_key`] for a 1→`fanout` publish group: the subscriber count
/// changes the k-site placement trade-off, so groups of different sizes
/// must not share a cached program. `fanout <= 1` contributes no bytes
/// to the hash — a group of one keys identically to [`plan_key`], which
/// is what lets the N=1 degenerate case reuse (and be reused by)
/// ordinary two-site sessions.
pub fn plan_key_with_fanout(
    source: &Fragmentation,
    target: &Fragmentation,
    model: &CostModel,
    optimizer: Optimizer,
    versions: Option<(u64, u64)>,
    fanout: usize,
) -> PlanKey {
    let mut shape = Vec::with_capacity(256);
    let push = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
    if fanout > 1 {
        push(&mut shape, 0x4D);
        push(&mut shape, fanout as u64);
    }
    if let Some((base, head)) = versions {
        push(&mut shape, 0x44);
        push(&mut shape, base);
        push(&mut shape, head);
    }
    match optimizer {
        Optimizer::Greedy => push(&mut shape, 0x47),
        Optimizer::Optimal { ordering_cap } => {
            push(&mut shape, 0x4F);
            push(&mut shape, ordering_cap as u64);
        }
    }
    for (tag, frag) in [(0x5Cu64, source), (0x7Au64, target)] {
        push(&mut shape, tag);
        push(&mut shape, frag.fragments.len() as u64);
        for f in &frag.fragments {
            push(&mut shape, f.root.index() as u64);
            push(&mut shape, f.elements.len() as u64);
            for &e in &f.elements {
                push(&mut shape, e.index() as u64);
            }
        }
    }
    push(&mut shape, model.w_comp.to_bits());
    push(&mut shape, model.w_comm.to_bits());
    // The negotiated wire format changes communication estimates, so
    // formats must not share a cached program.
    push(
        &mut shape,
        match model.wire_format {
            WireFormat::Xml => 0x58,
            WireFormat::Columnar => 0x43,
        },
    );
    for profile in [&model.source, &model.target] {
        push(&mut shape, profile.speed.to_bits());
        push(&mut shape, profile.can_combine as u64);
        push(&mut shape, profile.can_split as u64);
    }
    let mut stats = Vec::with_capacity(2 + 16 * model.stats.counts.len());
    push(&mut stats, model.stats.counts.len() as u64);
    for &c in &model.stats.counts {
        push(&mut stats, c);
    }
    for &t in &model.stats.text_bytes {
        push(&mut stats, t);
    }
    PlanKey {
        shape: fnv64(&shape),
        stats: fnv64(&stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_core::SchemaStats;
    use xdx_xml::SchemaTree;

    fn schema() -> SchemaTree {
        SchemaTree::balanced(3, 2, true)
    }

    fn model(schema: &SchemaTree, w_comm: f64) -> CostModel {
        let mut m = CostModel::fast_network(SchemaStats::multiplicative(schema, 3, 10));
        m.w_comm = w_comm;
        m
    }

    fn plan_for(s: &SchemaTree, m: &CostModel) -> CachedPlan {
        use xdx_core::gen::Generator;
        let mf = Fragmentation::most_fragmented("MF", s);
        let lf = Fragmentation::least_fragmented("LF", s);
        let gen = Generator::new(s, &mf, &lf);
        let (program, cost) = xdx_core::greedy::greedy(&gen, m).unwrap();
        CachedPlan {
            program,
            cost,
            op_costs: Vec::new(),
            comm_bytes: 0,
        }
    }

    #[test]
    fn same_shape_same_key_regardless_of_names() {
        let s = schema();
        let mf_a = Fragmentation::most_fragmented("MF", &s);
        let mf_b = Fragmentation::most_fragmented("renamed", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        assert_eq!(
            plan_key(&mf_a, &lf, &m, Optimizer::Greedy, None),
            plan_key(&mf_b, &lf, &m, Optimizer::Greedy, None)
        );
    }

    #[test]
    fn direction_weights_and_stats_all_discriminate() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::whole_document("WD", &s);
        let m = model(&s, 0.05);
        let base = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);
        // Reversed direction is a different plan shape.
        assert_ne!(
            base.shape,
            plan_key(&lf, &mf, &m, Optimizer::Greedy, None).shape
        );
        // A different communication weight is a different plan shape.
        assert_ne!(
            base.shape,
            plan_key(&mf, &lf, &model(&s, 5.0), Optimizer::Greedy, None).shape
        );
        // Different statistics keep the shape but move the stats hash.
        let mut fatter = m.clone();
        fatter.stats.counts[2] += 100;
        let drifted = plan_key(&mf, &lf, &fatter, Optimizer::Greedy, None);
        assert_eq!(base.shape, drifted.shape);
        assert_ne!(base.stats, drifted.stats);
        // A dumb-client target is a different plan shape.
        let mut dumb = m.clone();
        dumb.target.can_combine = false;
        assert_ne!(
            base.shape,
            plan_key(&mf, &lf, &dumb, Optimizer::Greedy, None).shape
        );
        // A columnar link is a different plan shape: its cheaper wire
        // moves the placement trade-off.
        let mut columnar = m.clone();
        columnar.wire_format = WireFormat::Columnar;
        assert_ne!(
            base.shape,
            plan_key(&mf, &lf, &columnar, Optimizer::Greedy, None).shape
        );
        // A different optimizer is a different plan shape too: greedy
        // and exhaustive sessions must not share a cached program.
        assert_ne!(
            base.shape,
            plan_key(&mf, &lf, &m, Optimizer::Optimal { ordering_cap: 6 }, None).shape
        );
        assert_ne!(
            plan_key(&mf, &lf, &m, Optimizer::Optimal { ordering_cap: 6 }, None).shape,
            plan_key(&mf, &lf, &m, Optimizer::Optimal { ordering_cap: 8 }, None).shape
        );
    }

    #[test]
    fn version_pair_discriminates_plan_shapes() {
        // Regression: delta sessions fold the (base_version,
        // head_version) pair into the key. Before that, a delta plan
        // against v3 could be replayed for a full ship — or for a delta
        // against a different base — shipping the wrong bytes.
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let full = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);
        let d34 = plan_key(&mf, &lf, &m, Optimizer::Greedy, Some((3, 4)));
        let d24 = plan_key(&mf, &lf, &m, Optimizer::Greedy, Some((2, 4)));
        let d35 = plan_key(&mf, &lf, &m, Optimizer::Greedy, Some((3, 5)));
        assert_ne!(full.shape, d34.shape, "delta vs full");
        assert_ne!(d34.shape, d24.shape, "base version matters");
        assert_ne!(d34.shape, d35.shape, "head version matters");
        assert_eq!(
            d34,
            plan_key(&mf, &lf, &m, Optimizer::Greedy, Some((3, 4))),
            "same pair, same key"
        );
        // The stats half is untouched by versions.
        assert_eq!(full.stats, d34.stats);
    }

    #[test]
    fn fanout_discriminates_but_one_is_degenerate() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let two_site = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);
        let group_of_one = plan_key_with_fanout(&mf, &lf, &m, Optimizer::Greedy, None, 1);
        assert_eq!(two_site, group_of_one, "N=1 keys identically");
        let group_of_eight = plan_key_with_fanout(&mf, &lf, &m, Optimizer::Greedy, None, 8);
        assert_ne!(two_site.shape, group_of_eight.shape, "fanout is shape");
        assert_ne!(
            group_of_eight.shape,
            plan_key_with_fanout(&mf, &lf, &m, Optimizer::Greedy, None, 4).shape,
            "different group sizes do not share a plan"
        );
        assert_eq!(two_site.stats, group_of_eight.stats, "stats untouched");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let key = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);

        let cache = PlanCache::new();
        assert!(cache.lookup(key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let shared = cache.insert(key, plan_for(&s, &m));
        assert_eq!(cache.len(), 1);

        let again = cache.lookup(key).expect("second lookup hits");
        assert!(Arc::ptr_eq(&shared, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn drifted_stats_evict_the_stale_plan() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let key = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);
        let cache = PlanCache::new();
        cache.lookup(key);
        cache.insert(key, plan_for(&s, &m));

        // The source grew: a re-probe hashes differently.
        let mut grown = m.clone();
        grown.stats.counts[1] *= 7;
        let drifted = plan_key(&mf, &lf, &grown, Optimizer::Greedy, None);
        assert!(cache.lookup(drifted).is_none(), "stale plan not served");
        assert_eq!(cache.stats_evicted(), 1);
        assert!(cache.is_empty(), "the drifted entry is gone");
        // Re-planning under the new stats repopulates the shape slot.
        cache.insert(drifted, plan_for(&s, &grown));
        assert!(cache.lookup(drifted).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn drift_eviction_drops_the_shape_once() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let key = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);
        let cache = PlanCache::new();
        cache.lookup(key);
        cache.insert(key, plan_for(&s, &m));

        assert!(cache.evict_drifted(key.shape), "resident shape evicted");
        assert!(
            !cache.evict_drifted(key.shape),
            "second eviction is a no-op"
        );
        assert_eq!(cache.drift_evicted(), 1);
        assert!(cache.lookup(key).is_none(), "drifted plan not served");
        assert!(cache.is_empty());
    }

    #[test]
    fn ttl_expires_entries() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let key = plan_key(&mf, &lf, &m, Optimizer::Greedy, None);
        let cache = PlanCache::with_ttl(Duration::ZERO);
        cache.lookup(key);
        cache.insert(key, plan_for(&s, &m));
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.lookup(key).is_none(), "aged entry not served");
        assert_eq!(cache.expired(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));

        let unlimited = PlanCache::new();
        unlimited.lookup(key);
        unlimited.insert(key, plan_for(&s, &m));
        assert!(unlimited.lookup(key).is_some(), "no TTL, no expiry");
    }
}
