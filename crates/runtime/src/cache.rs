//! The plan cache: concurrent sessions exchanging the same *shape* of
//! data reuse one optimized program instead of re-running the optimizer.
//!
//! The cache key is a stable FNV-64 hash over everything the optimizer's
//! answer depends on: both fragmentations (roots and element sets, not
//! names — renaming a fragment does not change the plan), the cost-model
//! weights, both system profiles, and the probed document statistics.
//! Two requests with the same key would receive byte-identical programs
//! from the optimizer, so sharing the cached one is safe.

use crate::shipper::fnv64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xdx_core::{CostModel, Fragmentation, Program};

/// A cached optimizer answer.
#[derive(Debug)]
pub struct CachedPlan {
    /// The placed data-transfer program.
    pub program: Program,
    /// Its estimated cost under the keying model.
    pub cost: f64,
}

/// Thread-shared map from plan key to optimized program, with hit/miss
/// counters.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<u64, Arc<CachedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Looks `key` up, counting a hit or a miss. On a miss the caller
    /// plans outside any lock and [`insert`](PlanCache::insert)s; two
    /// sessions racing the same key may both plan — the duplicate work is
    /// bounded by the worker count and both arrive at the same program.
    pub fn lookup(&self, key: u64) -> Option<Arc<CachedPlan>> {
        let found = self.map.lock().unwrap().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a freshly planned program and returns the shared copy
    /// (the already-present one if a racing session inserted first).
    pub fn insert(&self, key: u64, plan: CachedPlan) -> Arc<CachedPlan> {
        Arc::clone(
            self.map
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(plan)),
        )
    }

    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct plans cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the stable cache key of an exchange: a hash of (source
/// fragmentation shape, target fragmentation shape, cost-model
/// parameters, document statistics).
pub fn plan_key(source: &Fragmentation, target: &Fragmentation, model: &CostModel) -> u64 {
    let mut bytes = Vec::with_capacity(256);
    let mut push = |v: u64| bytes.extend_from_slice(&v.to_le_bytes());
    for (tag, frag) in [(0x5Cu64, source), (0x7Au64, target)] {
        push(tag);
        push(frag.fragments.len() as u64);
        for f in &frag.fragments {
            push(f.root.index() as u64);
            push(f.elements.len() as u64);
            for &e in &f.elements {
                push(e.index() as u64);
            }
        }
    }
    push(model.w_comp.to_bits());
    push(model.w_comm.to_bits());
    for profile in [&model.source, &model.target] {
        push(profile.speed.to_bits());
        push(profile.can_combine as u64);
        push(profile.can_split as u64);
    }
    push(model.stats.counts.len() as u64);
    for &c in &model.stats.counts {
        push(c);
    }
    for &t in &model.stats.text_bytes {
        push(t);
    }
    fnv64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_core::SchemaStats;
    use xdx_xml::SchemaTree;

    fn schema() -> SchemaTree {
        SchemaTree::balanced(3, 2, true)
    }

    fn model(schema: &SchemaTree, w_comm: f64) -> CostModel {
        let mut m = CostModel::fast_network(SchemaStats::multiplicative(schema, 3, 10));
        m.w_comm = w_comm;
        m
    }

    #[test]
    fn same_shape_same_key_regardless_of_names() {
        let s = schema();
        let mf_a = Fragmentation::most_fragmented("MF", &s);
        let mf_b = Fragmentation::most_fragmented("renamed", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        assert_eq!(plan_key(&mf_a, &lf, &m), plan_key(&mf_b, &lf, &m));
    }

    #[test]
    fn direction_weights_and_stats_all_discriminate() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::whole_document("WD", &s);
        let m = model(&s, 0.05);
        let base = plan_key(&mf, &lf, &m);
        // Reversed direction is a different plan.
        assert_ne!(base, plan_key(&lf, &mf, &m));
        // A different communication weight is a different plan.
        assert_ne!(base, plan_key(&mf, &lf, &model(&s, 5.0)));
        // Different statistics are a different plan.
        let mut fatter = m.clone();
        fatter.stats.counts[2] += 100;
        assert_ne!(base, plan_key(&mf, &lf, &fatter));
        // A dumb-client target is a different plan.
        let mut dumb = m.clone();
        dumb.target.can_combine = false;
        assert_ne!(base, plan_key(&mf, &lf, &dumb));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let s = schema();
        let mf = Fragmentation::most_fragmented("MF", &s);
        let lf = Fragmentation::least_fragmented("LF", &s);
        let m = model(&s, 0.05);
        let key = plan_key(&mf, &lf, &m);

        let cache = PlanCache::new();
        assert!(cache.lookup(key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        use xdx_core::gen::Generator;
        let gen = Generator::new(&s, &mf, &lf);
        let (program, cost) = xdx_core::greedy::greedy(&gen, &m).unwrap();
        let shared = cache.insert(key, CachedPlan { program, cost });
        assert_eq!(cache.len(), 1);

        let again = cache.lookup(key).expect("second lookup hits");
        assert!(Arc::ptr_eq(&shared, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }
}
