//! Fault-tolerant chunked shipping over an unreliable shared link.
//!
//! The executor hands the shipper one serialized cross-edge message at a
//! time (already framed as an HTTP POST). The shipper slices it into
//! chunks, frames each with an index/total/length/checksum header, and
//! transmits them through the shared [`Link`]'s probabilistic fault
//! model, retrying damaged or lost chunks with exponential backoff until
//! the chunk lands, the per-chunk attempt cap is hit, or the session's
//! retry budget runs out. Because every chunk is checksum-verified, a
//! shipment either reassembles to *exactly* the bytes that were sent or
//! fails loudly — rows are never silently lost or corrupted.
//!
//! The link is a serialized shared resource (the paper's single
//! wide-area path): concurrent sessions interleave at chunk granularity,
//! each chunk transmission holding the link lock only for its own
//! simulated transfer.

use crate::events::{EventKind, EventLog};
use crate::session::{SessionShared, SessionState};
use std::sync::Mutex;
use std::time::Duration;
use xdx_core::error::{Error, Result};
use xdx_core::Transport;
use xdx_net::{Delivery, Link};

/// Retry/chunking policy of the shipping layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShippingPolicy {
    /// Payload bytes per chunk.
    pub chunk_bytes: usize,
    /// Transmission attempts per chunk before the shipment fails
    /// (1 = no retry).
    pub max_attempts_per_chunk: u32,
    /// Total retries one session may spend across all its shipments; a
    /// session on a pathological link degrades to `Failed` instead of
    /// monopolizing the link forever.
    pub retry_budget: u32,
    /// Backoff after the first failed attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ShippingPolicy {
    fn default() -> ShippingPolicy {
        ShippingPolicy {
            chunk_bytes: 16 * 1024,
            max_attempts_per_chunk: 8,
            retry_budget: 256,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl ShippingPolicy {
    /// Simulated backoff before retry number `failed_attempts`
    /// (1-based): `base · 2^(n-1)`, capped.
    pub fn backoff(&self, failed_attempts: u32) -> Duration {
        let shift = failed_attempts.saturating_sub(1).min(20);
        (self.backoff_base * (1u32 << shift)).min(self.backoff_cap)
    }
}

/// Shipping-side tallies, folded into the session metrics afterwards.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShipStats {
    pub chunks_shipped: u64,
    pub chunks_retried: u64,
    pub retry_backoff: Duration,
    pub wire_bytes: u64,
}

/// FNV-1a 64-bit hash; also used by the plan cache for stable keys.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const CHUNK_MAGIC: &str = "XDXCHUNK";

/// Frames one chunk: `XDXCHUNK <index> <total> <len> <fnv64:016x>\n`
/// followed by the raw payload bytes.
fn frame_chunk(index: usize, total: usize, payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{CHUNK_MAGIC} {index} {total} {len} {sum:016x}\n",
        len = payload.len(),
        sum = fnv64(payload),
    );
    let mut frame = Vec::with_capacity(header.len() + payload.len());
    frame.extend_from_slice(header.as_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parses and verifies a received chunk frame. Returns `(index, total,
/// payload)` only when the header is intact, the length matches and the
/// checksum verifies — any byte damage anywhere in the frame fails it.
fn parse_chunk(frame: &[u8]) -> Option<(usize, usize, Vec<u8>)> {
    let newline = frame.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&frame[..newline]).ok()?;
    let mut parts = header.split(' ');
    if parts.next()? != CHUNK_MAGIC {
        return None;
    }
    let index: usize = parts.next()?.parse().ok()?;
    let total: usize = parts.next()?.parse().ok()?;
    let len: usize = parts.next()?.parse().ok()?;
    let sum = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    let payload = &frame[newline + 1..];
    if payload.len() != len || fnv64(payload) != sum || index >= total {
        return None;
    }
    Some((index, total, payload.to_vec()))
}

/// The runtime's [`Transport`]: chunked, checksummed, retrying shipment
/// over a link shared by all sessions.
pub(crate) struct FaultTolerantShipper<'a> {
    link: &'a Mutex<Link>,
    policy: ShippingPolicy,
    session: &'a SessionShared,
    events: &'a EventLog,
    budget_left: u32,
    pub(crate) stats: ShipStats,
}

impl<'a> FaultTolerantShipper<'a> {
    pub(crate) fn new(
        link: &'a Mutex<Link>,
        policy: ShippingPolicy,
        session: &'a SessionShared,
        events: &'a EventLog,
    ) -> FaultTolerantShipper<'a> {
        FaultTolerantShipper {
            link,
            policy,
            session,
            events,
            budget_left: policy.retry_budget,
            stats: ShipStats::default(),
        }
    }

    /// Transmits one framed chunk until it arrives intact or the policy
    /// gives up. Returns the verified payload plus the simulated time
    /// spent (transfers, timeout waits, backoff).
    fn ship_chunk(
        &mut self,
        label: &str,
        index: usize,
        total: usize,
        payload: &[u8],
    ) -> Result<(Duration, Vec<u8>)> {
        let frame = frame_chunk(index, total, payload);
        let mut elapsed = Duration::ZERO;
        let mut failed_attempts = 0u32;
        loop {
            if self.session.is_cancelled() {
                return Err(Error::Engine(format!(
                    "session cancelled while shipping {label} chunk {index}/{total}"
                )));
            }
            let (duration, delivery) = self
                .link
                .lock()
                .unwrap()
                .transmit_faulty(format!("{label}[{index}/{total}]"), &frame);
            elapsed += duration;
            self.stats.wire_bytes += frame.len() as u64;
            let verified = delivery
                .payload()
                .and_then(parse_chunk)
                .filter(|(got_index, got_total, _)| *got_index == index && *got_total == total);
            if let Some((_, _, payload)) = verified {
                self.stats.chunks_shipped += 1;
                return Ok((elapsed, payload));
            }
            failed_attempts += 1;
            let cause = match delivery {
                Delivery::Dropped => "dropped",
                Delivery::TimedOut => "timed out",
                Delivery::Corrupted(_) => "corrupted",
                Delivery::Delivered(_) => "frame damaged",
            };
            if failed_attempts >= self.policy.max_attempts_per_chunk {
                return Err(Error::Engine(format!(
                    "shipping {label} chunk {index}/{total}: gave up after \
                     {failed_attempts} attempts (last outcome: {cause})"
                )));
            }
            if self.budget_left == 0 {
                return Err(Error::Engine(format!(
                    "shipping {label} chunk {index}/{total}: session retry \
                     budget ({}) exhausted (last outcome: {cause})",
                    self.policy.retry_budget
                )));
            }
            self.budget_left -= 1;
            self.stats.chunks_retried += 1;
            let backoff = self.policy.backoff(failed_attempts);
            self.stats.retry_backoff += backoff;
            elapsed += backoff;
            self.events.push(
                self.session.id,
                EventKind::ChunkRetried,
                format!("{label} chunk {index}/{total} {cause}, retry {failed_attempts}"),
            );
        }
    }
}

impl Transport for FaultTolerantShipper<'_> {
    fn ship(&mut self, label: &str, message: &[u8]) -> Result<(Duration, Vec<u8>)> {
        self.session.set_state(SessionState::Shipping);
        let chunk_bytes = self.policy.chunk_bytes.max(1);
        let total = message.len().div_ceil(chunk_bytes).max(1);
        let mut assembled = Vec::with_capacity(message.len());
        let mut elapsed = Duration::ZERO;
        let mut result = Ok(());
        for (index, chunk) in message.chunks(chunk_bytes).enumerate() {
            match self.ship_chunk(label, index, total, chunk) {
                Ok((duration, payload)) => {
                    elapsed += duration;
                    assembled.extend_from_slice(&payload);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.session.set_state(SessionState::Executing);
        result?;
        debug_assert_eq!(assembled, message, "verified chunks reassemble exactly");
        Ok((elapsed, assembled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_net::{FaultProfile, NetworkProfile};

    fn session() -> std::sync::Arc<SessionShared> {
        SessionShared::new(1, "test".into())
    }

    #[test]
    fn chunk_frames_roundtrip() {
        let payload = b"hello, fragmented world";
        let frame = frame_chunk(3, 7, payload);
        let (index, total, back) = parse_chunk(&frame).unwrap();
        assert_eq!((index, total), (3, 7));
        assert_eq!(back, payload);
        // Empty payloads frame too.
        let (_, _, empty) = parse_chunk(&frame_chunk(0, 1, b"")).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let frame = frame_chunk(0, 2, b"sensitive payload");
        for i in 0..frame.len() {
            let mut damaged = frame.clone();
            damaged[i] ^= 0x40;
            let still_ok = parse_chunk(&damaged)
                .map(|(index, total, p)| index == 0 && total == 2 && p == b"sensitive payload")
                .unwrap_or(false);
            assert!(!still_ok, "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn lossy_link_reassembles_exactly_with_retries() {
        let link = Mutex::new(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile {
                drop_probability: 0.15,
                timeout_probability: 0.05,
                corrupt_probability: 0.10,
                seed: 42,
            }),
        );
        let session = session();
        let events = EventLog::new();
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            ..ShippingPolicy::default()
        };
        let mut shipper = FaultTolerantShipper::new(&link, policy, &session, &events);
        let message: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let (elapsed, delivered) = shipper.ship("feed ITEM", &message).unwrap();
        assert_eq!(delivered, message);
        assert!(elapsed > Duration::ZERO);
        assert_eq!(shipper.stats.chunks_shipped, 2000usize.div_ceil(64) as u64);
        // A 30% fault rate over 32 chunks virtually guarantees retries.
        assert!(shipper.stats.chunks_retried > 0);
        assert_eq!(
            events.count(EventKind::ChunkRetried) as u64,
            shipper.stats.chunks_retried
        );
        // Wire bytes exceed the logical message: headers + retries.
        assert!(shipper.stats.wire_bytes > message.len() as u64);
        // The shipper leaves the session back in Executing.
        assert_eq!(session.state(), SessionState::Executing);
    }

    #[test]
    fn exhausted_retry_budget_fails_with_diagnostic() {
        let link = Mutex::new(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let session = session();
        let events = EventLog::new();
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            max_attempts_per_chunk: 100,
            retry_budget: 5,
            ..ShippingPolicy::default()
        };
        let mut shipper = FaultTolerantShipper::new(&link, policy, &session, &events);
        let err = shipper.ship("feed X", b"some payload").unwrap_err();
        assert!(err.to_string().contains("retry budget"), "{err}");
        assert_eq!(shipper.stats.chunks_retried, 5);
    }

    #[test]
    fn attempt_cap_fails_even_with_budget_left() {
        let link = Mutex::new(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let session = session();
        let events = EventLog::new();
        let policy = ShippingPolicy {
            max_attempts_per_chunk: 3,
            ..ShippingPolicy::default()
        };
        let mut shipper = FaultTolerantShipper::new(&link, policy, &session, &events);
        let err = shipper.ship("feed X", b"payload").unwrap_err();
        assert!(err.to_string().contains("gave up after 3"), "{err}");
    }

    #[test]
    fn cancellation_interrupts_shipping() {
        let link = Mutex::new(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let session = session();
        session
            .cancelled
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let events = EventLog::new();
        let mut shipper =
            FaultTolerantShipper::new(&link, ShippingPolicy::default(), &session, &events);
        let err = shipper.ship("feed X", b"payload").unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ShippingPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..ShippingPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(5), Duration::from_millis(100));
        assert_eq!(policy.backoff(30), Duration::from_millis(100));
    }
}
