//! Fault-tolerant, *checkpointed* chunked shipping over an unreliable
//! link.
//!
//! The executor hands the shipper one serialized cross-edge message at a
//! time (already framed as an HTTP POST). The shipper slices it into
//! chunks, frames each with its full shipment identity — session,
//! per-session shipment sequence number, index, total, length, checksum
//! ([`xdx_net::ChunkFrame`]) — and transmits them through its session's
//! per-pair [`Link`] (resolved from the [`crate::registry::LinkRegistry`]),
//! retrying damaged or lost chunks with exponential backoff.
//!
//! Every verified frame is filed in the receiver-side
//! [`ReassemblyLedger`] under the coordinates *in the frame*, so chunks
//! that arrive reordered, duplicated, or cross-delivered during another
//! session's transmission all land in the right slot, and exact repeats
//! are dropped idempotently. Because the ledger outlives a failed
//! session, a resumed session re-ships only the chunks that never
//! arrived (`chunks_resumed`) and replays the *serialized message* the
//! failed run persisted ([`Transport::checkpointed_message`]) instead of
//! re-serializing it.
//!
//! The hot path is allocation-free at steady state: one frame buffer and
//! one label buffer are reused across every chunk of every shipment, the
//! frame is built once per chunk (not per attempt), and per-link
//! accounting is lock-free atomics. Only sessions sharing a `(source,
//! target)` pair contend on a link lock — the paper's one-path-per-pair
//! model.

use crate::events::{EventKind, EventLog};
use crate::ledger::{Filed, ReassemblyLedger};
use crate::registry::LinkSlot;
use crate::session::{SessionShared, SessionState};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdx_core::error::{Error, Result};
use xdx_core::{Transport, WireFormat};
use xdx_net::{frame_chunk_into, ChunkFrame, Delivery};
use xdx_trace::{Histogram, SpanId, TraceSink, NO_SPAN};

/// Retry/chunking policy of the shipping layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShippingPolicy {
    /// Payload bytes per chunk.
    pub chunk_bytes: usize,
    /// Transmission attempts per chunk before the shipment fails
    /// (1 = no retry).
    pub max_attempts_per_chunk: u32,
    /// Total retries one session may spend across all its shipments; a
    /// session on a pathological link degrades to `Failed` instead of
    /// monopolizing the link forever.
    pub retry_budget: u32,
    /// Backoff after the first failed attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ShippingPolicy {
    fn default() -> ShippingPolicy {
        ShippingPolicy {
            chunk_bytes: 16 * 1024,
            max_attempts_per_chunk: 8,
            retry_budget: 256,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl ShippingPolicy {
    /// Simulated backoff before retry number `failed_attempts`
    /// (1-based): `base · 2^(n-1)`, capped.
    pub fn backoff(&self, failed_attempts: u32) -> Duration {
        let shift = failed_attempts.saturating_sub(1).min(20);
        (self.backoff_base * (1u32 << shift)).min(self.backoff_cap)
    }
}

/// Shipping-side tallies, folded into the session metrics afterwards.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShipStats {
    pub shipments: u64,
    pub chunks_shipped: u64,
    pub chunks_resumed: u64,
    pub chunks_deduped: u64,
    pub chunks_retried: u64,
    pub retry_backoff: Duration,
    pub wire_bytes: u64,
    /// Encoded message bytes this session produced (logical payload
    /// before chunk framing; checkpoint replays encode nothing).
    pub bytes_encoded: u64,
    /// Wall nanoseconds the executor spent encoding this session's
    /// messages.
    pub encode_ns: u64,
    /// Shipments whose message the executor had to serialize because no
    /// checkpointed copy existed ([`Transport::checkpointed_message`]
    /// misses). Tallied here — not in the executor's outcome — so the
    /// count survives a shipment failure.
    pub messages_serialized: u64,
    /// True when the shipment failed because the *link* defeated the
    /// policy (attempt cap or retry budget) — the signal the circuit
    /// breaker listens for. Cancellations and deadlines leave it false.
    pub link_gave_up: bool,
}

/// A transmission consumed the link but delivered a *different* verified
/// frame (reordering pipeline) or parked ours in the deferred queue.
/// Bounded: the link's deferred queue holds at most a handful of frames,
/// so a parked chunk reappears within that many transmissions. The cap
/// turns a hypothetically livelocked loop into a counted failure.
pub(crate) const MAX_STALLS_PER_CHUNK: u32 = 32;

/// The runtime's [`Transport`]: chunked, checksummed, checkpointed,
/// retrying shipment over the session's per-pair link.
pub(crate) struct FaultTolerantShipper<'a> {
    slot: Arc<LinkSlot>,
    policy: ShippingPolicy,
    session: &'a SessionShared,
    events: &'a EventLog,
    ledger: &'a ReassemblyLedger,
    /// The wire format this session encodes cross-edge messages in:
    /// the link's negotiated format, or the request's override.
    wire_format: WireFormat,
    /// The link's real-time pacing scale, cached at construction so
    /// retry backoff can sleep *outside* the link lock — a backing-off
    /// session must not hold the pair's link while it waits.
    pacing: f64,
    budget_left: u32,
    /// Reused across every chunk of every shipment — the encoded frame.
    frame_buf: Vec<u8>,
    /// Reused across every chunk — the transfer-log label.
    label_buf: String,
    /// Span sink for `ship`/`encode` spans (absent in bare tests).
    trace: Option<&'a TraceSink>,
    /// Parent span of this session's shipments (the exec span).
    parent_span: SpanId,
    /// The span the current shipment runs under; retry events correlate
    /// to it.
    current_span: SpanId,
    /// Shared encode-latency histogram (absent in bare tests).
    encode_hist: Option<Arc<Histogram>>,
    /// The runtime's shipping engine, when one is running. A backing-off
    /// shipper *volunteers its wait* to the engine — driving other
    /// sessions' parked shipments instead of sleeping — so retry backoff
    /// never burns a worker slot even on this fallback blocking path.
    engine: Option<Arc<crate::engine::ShipEngine>>,
    pub(crate) stats: ShipStats,
}

impl<'a> FaultTolerantShipper<'a> {
    /// Only used by tests; the runtime always passes the session's
    /// resolved format explicitly.
    #[cfg(test)]
    pub(crate) fn new(
        slot: Arc<LinkSlot>,
        policy: ShippingPolicy,
        session: &'a SessionShared,
        events: &'a EventLog,
        ledger: &'a ReassemblyLedger,
    ) -> FaultTolerantShipper<'a> {
        let wire_format = slot.wire_format();
        FaultTolerantShipper::with_wire_format(slot, policy, session, events, ledger, wire_format)
    }

    pub(crate) fn with_wire_format(
        slot: Arc<LinkSlot>,
        policy: ShippingPolicy,
        session: &'a SessionShared,
        events: &'a EventLog,
        ledger: &'a ReassemblyLedger,
        wire_format: WireFormat,
    ) -> FaultTolerantShipper<'a> {
        let pacing = slot.link.lock().unwrap().pacing();
        FaultTolerantShipper {
            slot,
            policy,
            session,
            events,
            ledger,
            wire_format,
            pacing,
            budget_left: policy.retry_budget,
            frame_buf: Vec::new(),
            label_buf: String::new(),
            trace: None,
            parent_span: NO_SPAN,
            current_span: NO_SPAN,
            encode_hist: None,
            engine: None,
            stats: ShipStats::default(),
        }
    }

    /// Attaches the runtime's shipping engine so paced retry backoff is
    /// spent driving parked shipments instead of sleeping.
    pub(crate) fn with_engine(
        mut self,
        engine: Arc<crate::engine::ShipEngine>,
    ) -> FaultTolerantShipper<'a> {
        self.engine = Some(engine);
        self
    }

    /// Attaches the runtime's telemetry: `ship` and `encode` spans are
    /// recorded under `parent_span` (the session's exec span) and every
    /// encode lands in the shared histogram.
    pub(crate) fn with_telemetry(
        mut self,
        trace: &'a TraceSink,
        parent_span: SpanId,
        encode_hist: Arc<Histogram>,
    ) -> FaultTolerantShipper<'a> {
        self.trace = Some(trace);
        self.parent_span = parent_span;
        self.current_span = parent_span;
        self.encode_hist = Some(encode_hist);
        self
    }

    /// Files a verified frame in the ledger, tallying duplicates.
    fn file(&mut self, frame: &ChunkFrame) {
        if self.ledger.file(frame) == Filed::Duplicate {
            self.stats.chunks_deduped += 1;
        }
    }

    /// Transmits the pre-framed chunk at `index` until a copy of it
    /// lands in the ledger or the policy gives up. The frame was built
    /// once by the caller; every retry re-sends the same bytes. Returns
    /// the simulated time spent (transfers, timeout waits, backoff).
    fn ship_chunk(
        &mut self,
        chunk_label: &str,
        shipment: u64,
        index: usize,
        frame: &[u8],
    ) -> Result<Duration> {
        let session_id = self.session.id;
        let mut elapsed = Duration::ZERO;
        let mut failed_attempts = 0u32;
        let mut stalls = 0u32;
        loop {
            if self.session.is_cancelled() {
                return Err(Error::Engine(format!(
                    "session cancelled while shipping {chunk_label}"
                )));
            }
            if self.session.deadline_exceeded() {
                return Err(Error::Engine(format!(
                    "deadline exceeded while shipping {chunk_label}"
                )));
            }
            // Draw the fault outcome under the lock, but settle the
            // paced wire occupancy *outside* it: holding the pair's
            // link across the settle wait would stall every other
            // session sharing the lane (and the engine's try_lock
            // probes). The wait itself is volunteered to the engine —
            // driving parked shipments, exactly like retry backoff —
            // so the blocking path never idles a worker on the wire.
            let (duration, delivery) = self
                .slot
                .link
                .lock()
                .unwrap()
                .transmit_faulty_nowait(chunk_label, frame);
            if self.pacing > 0.0 {
                let settle = duration.mul_f64(self.pacing);
                match &self.engine {
                    Some(engine) => engine.drive_until(Instant::now() + settle),
                    None => std::thread::sleep(settle),
                }
            }
            elapsed += duration;
            self.stats.wire_bytes += frame.len() as u64;
            self.slot
                .counters
                .wire_bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            // File whatever verified frame the link produced — ours, an
            // older deferred one, even another session's. Duplicated
            // deliveries are filed twice; the ledger drops the repeat.
            let verified = delivery.payload().and_then(ChunkFrame::decode);
            if let Some(arrived) = &verified {
                self.file(arrived);
                if matches!(delivery, Delivery::Duplicated(_)) {
                    self.file(arrived);
                }
            }
            if self.ledger.has_chunk(session_id, shipment, index) {
                self.stats.chunks_shipped += 1;
                self.slot
                    .counters
                    .chunks_shipped
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(elapsed);
            }
            // The link consumed the transmission without landing our
            // chunk. A verified *other* frame or a deferral is progress
            // — the reorder pipeline will surface our copy shortly — so
            // it does not burn attempts or budget (up to a cap).
            let progressed = verified.is_some() || matches!(delivery, Delivery::Deferred);
            if progressed && stalls < MAX_STALLS_PER_CHUNK {
                stalls += 1;
                continue;
            }
            failed_attempts += 1;
            let cause = match delivery {
                Delivery::Dropped => "dropped",
                Delivery::TimedOut => "timed out",
                Delivery::Corrupted(_) => "corrupted",
                Delivery::Deferred => "deferred livelock",
                Delivery::Delivered(_) | Delivery::Duplicated(_) => "frame damaged",
            };
            if failed_attempts >= self.policy.max_attempts_per_chunk {
                self.stats.link_gave_up = true;
                return Err(Error::Engine(format!(
                    "shipping {chunk_label}: gave up after \
                     {failed_attempts} attempts (last outcome: {cause})"
                )));
            }
            if self.budget_left == 0 {
                self.stats.link_gave_up = true;
                return Err(Error::Engine(format!(
                    "shipping {chunk_label}: session retry \
                     budget ({}) exhausted (last outcome: {cause})",
                    self.policy.retry_budget
                )));
            }
            self.budget_left -= 1;
            self.stats.chunks_retried += 1;
            self.slot
                .counters
                .chunks_retried
                .fetch_add(1, Ordering::Relaxed);
            let backoff = self.policy.backoff(failed_attempts);
            self.stats.retry_backoff += backoff;
            elapsed += backoff;
            // A paced link makes simulated time observable on the wall
            // clock; backoff must obey the same clock or retries ship
            // faster than the link they are backing off from. Waited
            // here, outside the link lock, so other sessions sharing
            // the pair keep transmitting while this one waits — and
            // when the shipping engine is running, the wait is spent
            // *driving it* (timer-wheel deadlines, parked shipments)
            // instead of sleeping, so backoff never idles a worker.
            if self.pacing > 0.0 {
                let wait = backoff.mul_f64(self.pacing);
                match &self.engine {
                    Some(engine) => engine.drive_until(Instant::now() + wait),
                    None => std::thread::sleep(wait),
                }
            }
            self.events.push(
                session_id,
                self.current_span,
                EventKind::ChunkRetried,
                format!("{chunk_label} {cause}, retry {failed_attempts}"),
            );
        }
    }
}

impl Transport for FaultTolerantShipper<'_> {
    fn ship(&mut self, label: &str, message: &[u8]) -> Result<(Duration, Vec<u8>)> {
        self.session.set_state(SessionState::Shipping);
        let session_id = self.session.id;
        let shipment = self.stats.shipments;
        self.stats.shipments += 1;
        let ship_started = Instant::now();
        self.current_span = match self.trace {
            Some(trace) => trace.allocate_id(),
            None => self.parent_span,
        };
        let chunk_bytes = self.policy.chunk_bytes.max(1);
        let total = message.len().div_ceil(chunk_bytes).max(1);
        // Open the shipment in the ledger, persisting the serialized
        // message; chunks checkpointed by a previous (failed) attempt
        // are skipped, not re-shipped.
        let prior = self
            .ledger
            .begin_shipment(session_id, shipment, total, message);
        if !prior.is_empty() {
            self.stats.chunks_resumed += prior.len() as u64;
            self.events.push(
                session_id,
                self.current_span,
                EventKind::ShipmentResumed,
                format!(
                    "{label}: {} of {total} chunks checkpointed, re-shipping {}",
                    prior.len(),
                    total - prior.len()
                ),
            );
        }
        self.slot.open_shipment();
        let mut elapsed = Duration::ZERO;
        let mut result = Ok(());
        // Buffers move out for the loop (the borrow checker will not let
        // `&mut self` methods run while fields are borrowed) and move
        // back after — same allocation either way.
        let mut frame_buf = std::mem::take(&mut self.frame_buf);
        let mut label_buf = std::mem::take(&mut self.label_buf);
        for index in 0..total {
            let start = index * chunk_bytes;
            let end = usize::min(start + chunk_bytes, message.len());
            let chunk = &message[start..end];
            if prior.contains(&index) {
                continue;
            }
            if self.ledger.has_chunk(session_id, shipment, index) {
                // Landed meanwhile via the reorder pipeline (possibly
                // transmitted by another session sharing the link).
                self.stats.chunks_shipped += 1;
                continue;
            }
            label_buf.clear();
            let _ = write!(label_buf, "{label}[{index}/{total}]");
            frame_chunk_into(&mut frame_buf, session_id, shipment, index, total, chunk);
            match self.ship_chunk(&label_buf, shipment, index, &frame_buf) {
                Ok(duration) => elapsed += duration,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.frame_buf = frame_buf;
        self.label_buf = label_buf;
        self.slot.close_shipment();
        self.session.set_state(SessionState::Executing);
        if let Some(trace) = self.trace {
            trace.record_with_id(
                self.current_span,
                "ship",
                session_id,
                self.parent_span,
                ship_started,
                ship_started.elapsed(),
                format!(
                    "{label}: {total} chunks, {} retried, {}",
                    self.stats.chunks_retried,
                    if result.is_ok() { "ok" } else { "failed" }
                ),
            );
        }
        self.current_span = self.parent_span;
        result?;
        let assembled = self
            .ledger
            .assemble(session_id, shipment)
            .ok_or_else(|| Error::Engine(format!("shipment {shipment} did not reassemble")))?;
        debug_assert_eq!(assembled, message, "verified chunks reassemble exactly");
        Ok((elapsed, assembled))
    }

    fn checkpointed_message(&mut self, _label: &str) -> Option<Vec<u8>> {
        // `stats.shipments` is the sequence number the *next* ship()
        // call will use; a resumed session replays the identical cached
        // plan, so shipment numbering is deterministic across attempts
        // and the persisted bytes are exactly this shipment's message.
        let stored = self
            .ledger
            .stored_message(self.session.id, self.stats.shipments);
        if stored.is_none() {
            self.stats.messages_serialized += 1;
        }
        stored
    }

    fn wire_format(&self) -> WireFormat {
        self.wire_format
    }

    fn record_encode(&mut self, bytes: u64, ns: u64) {
        self.stats.bytes_encoded += bytes;
        self.stats.encode_ns += ns;
        self.slot
            .counters
            .bytes_encoded
            .fetch_add(bytes, Ordering::Relaxed);
        self.slot
            .counters
            .encode_ns
            .fetch_add(ns, Ordering::Relaxed);
        if let Some(hist) = &self.encode_hist {
            hist.record(ns);
        }
        if let Some(trace) = self.trace {
            // The executor reports the encode after the fact; reconstruct
            // the start so the span sits where the work happened.
            let dur = Duration::from_nanos(ns);
            let now = Instant::now();
            trace.record(
                "encode",
                self.session.id,
                self.parent_span,
                now.checked_sub(dur).unwrap_or(now),
                dur,
                format!("{bytes} bytes"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::CircuitBreaker;
    use crate::registry::ShipGauge;
    use xdx_net::{FaultProfile, Link, NetworkProfile};

    fn session() -> std::sync::Arc<SessionShared> {
        SessionShared::new(1, "test".into(), None, 0)
    }

    fn slot_for(link: Link) -> Arc<LinkSlot> {
        Arc::new(LinkSlot::new(
            "source",
            "target",
            link,
            CircuitBreaker::new(8, Duration::from_millis(50)),
            WireFormat::Xml,
            Arc::new(ShipGauge::default()),
        ))
    }

    fn shipper_parts() -> (std::sync::Arc<SessionShared>, EventLog, ReassemblyLedger) {
        (session(), EventLog::new(), ReassemblyLedger::new())
    }

    #[test]
    fn lossy_link_reassembles_exactly_with_retries() {
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile {
                drop_probability: 0.15,
                timeout_probability: 0.05,
                corrupt_probability: 0.10,
                seed: 42,
                ..FaultProfile::healthy()
            }),
        );
        let (session, events, ledger) = shipper_parts();
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            ..ShippingPolicy::default()
        };
        let mut shipper =
            FaultTolerantShipper::new(Arc::clone(&slot), policy, &session, &events, &ledger);
        let message: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let (elapsed, delivered) = shipper.ship("feed ITEM", &message).unwrap();
        assert_eq!(delivered, message);
        assert!(elapsed > Duration::ZERO);
        assert_eq!(shipper.stats.chunks_shipped, 2000usize.div_ceil(64) as u64);
        assert_eq!(shipper.stats.chunks_resumed, 0);
        // A 30% fault rate over 32 chunks virtually guarantees retries.
        assert!(shipper.stats.chunks_retried > 0);
        assert_eq!(
            events.count(EventKind::ChunkRetried) as u64,
            shipper.stats.chunks_retried
        );
        // Wire bytes exceed the logical message: headers + retries.
        assert!(shipper.stats.wire_bytes > message.len() as u64);
        // The shipper leaves the session back in Executing.
        assert_eq!(session.state(), SessionState::Executing);
        assert!(!shipper.stats.link_gave_up);
        // The link slot's lock-free counters mirror the shipper's view.
        let link_stats = slot.stats();
        assert_eq!(link_stats.wire_bytes, shipper.stats.wire_bytes);
        assert_eq!(link_stats.chunks_shipped, shipper.stats.chunks_shipped);
        assert_eq!(link_stats.chunks_retried, shipper.stats.chunks_retried);
        assert_eq!(link_stats.peak_concurrent_shipments, 1);
    }

    #[test]
    fn reordering_and_duplication_still_reassemble_exactly() {
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile {
                reorder_probability: 0.25,
                duplicate_probability: 0.15,
                seed: 7,
                ..FaultProfile::healthy()
            }),
        );
        let (session, events, ledger) = shipper_parts();
        let policy = ShippingPolicy {
            chunk_bytes: 32,
            ..ShippingPolicy::default()
        };
        let mut shipper = FaultTolerantShipper::new(slot, policy, &session, &events, &ledger);
        let message: Vec<u8> = (0..3000u32).map(|i| (i * 7 % 256) as u8).collect();
        let (_, delivered) = shipper.ship("feed R", &message).unwrap();
        assert_eq!(delivered, message);
        // Duplicated deliveries were filed twice and dropped once.
        assert!(shipper.stats.chunks_deduped > 0, "{:?}", shipper.stats);
    }

    #[test]
    fn checkpointed_chunks_are_not_reshipped() {
        let network = NetworkProfile::lan();
        let (session, events, ledger) = shipper_parts();
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            max_attempts_per_chunk: 3,
            ..ShippingPolicy::default()
        };
        let message: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let total = 1000usize.div_ceil(64) as u64;

        // First attempt: a drop-heavy link defeats the tight attempt
        // cap partway through the shipment.
        let slot = slot_for(Link::new(network).with_fault_profile(FaultProfile {
            drop_probability: 0.35,
            seed: 3,
            ..FaultProfile::healthy()
        }));
        let mut first =
            FaultTolerantShipper::new(Arc::clone(&slot), policy, &session, &events, &ledger);
        let err = first.ship("feed C", &message).unwrap_err();
        assert!(err.to_string().contains("gave up"), "{err}");
        assert!(first.stats.link_gave_up);
        let landed = first.stats.chunks_shipped;
        assert!(landed > 0 && landed < total, "partial landing: {landed}");
        assert_eq!(ledger.checkpointed_chunks(session.id), landed as usize);

        // Second attempt over a repaired link: the persisted serialized
        // message comes back verbatim, and only the remainder ships.
        slot.link
            .lock()
            .unwrap()
            .set_fault_profile(FaultProfile::healthy());
        let mut second = FaultTolerantShipper::new(slot, policy, &session, &events, &ledger);
        assert_eq!(
            second.checkpointed_message("feed C").unwrap(),
            message,
            "the failed run persisted the assembled message"
        );
        let (_, delivered) = second.ship("feed C", &message).unwrap();
        assert_eq!(delivered, message);
        assert_eq!(second.stats.chunks_resumed, landed);
        assert_eq!(second.stats.chunks_shipped, total - landed);
        assert_eq!(events.count(EventKind::ShipmentResumed), 1);
    }

    #[test]
    fn exhausted_retry_budget_fails_with_diagnostic() {
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let (session, events, ledger) = shipper_parts();
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            max_attempts_per_chunk: 100,
            retry_budget: 5,
            ..ShippingPolicy::default()
        };
        let mut shipper = FaultTolerantShipper::new(slot, policy, &session, &events, &ledger);
        let err = shipper.ship("feed X", b"some payload").unwrap_err();
        assert!(err.to_string().contains("retry budget"), "{err}");
        assert_eq!(shipper.stats.chunks_retried, 5);
        assert!(shipper.stats.link_gave_up);
    }

    #[test]
    fn attempt_cap_fails_even_with_budget_left() {
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let (session, events, ledger) = shipper_parts();
        let policy = ShippingPolicy {
            max_attempts_per_chunk: 3,
            ..ShippingPolicy::default()
        };
        let mut shipper = FaultTolerantShipper::new(slot, policy, &session, &events, &ledger);
        let err = shipper.ship("feed X", b"payload").unwrap_err();
        assert!(err.to_string().contains("gave up after 3"), "{err}");
    }

    #[test]
    fn cancellation_interrupts_shipping() {
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let (session, events, ledger) = shipper_parts();
        session
            .cancelled
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let mut shipper =
            FaultTolerantShipper::new(slot, ShippingPolicy::default(), &session, &events, &ledger);
        let err = shipper.ship("feed X", b"payload").unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
        assert!(!shipper.stats.link_gave_up, "cancellation is not the link");
    }

    #[test]
    fn deadline_interrupts_shipping_without_blaming_the_link() {
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let session = SessionShared::new(1, "t".into(), Some(Duration::ZERO), 0);
        std::thread::sleep(Duration::from_millis(2));
        let events = EventLog::new();
        let ledger = ReassemblyLedger::new();
        let mut shipper =
            FaultTolerantShipper::new(slot, ShippingPolicy::default(), &session, &events, &ledger);
        let err = shipper.ship("feed X", b"payload").unwrap_err();
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
        assert!(!shipper.stats.link_gave_up);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ShippingPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..ShippingPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(5), Duration::from_millis(100));
        assert_eq!(policy.backoff(30), Duration::from_millis(100));
    }
}
