//! The weighted-fair admission queue: per-tenant lanes with priority
//! aging.
//!
//! The runtime's original admission queue was a strict-priority binary
//! heap: under sustained overload one hot `(source, target)` pair — or
//! one tenant spraying `Priority::High` — could starve every other
//! submitter indefinitely. This queue composes two classic disciplines
//! instead:
//!
//! * **Across tenants: weighted fair queueing.** Each tenant (an
//!   explicit `ExchangeRequest::with_tenant` tag, or the route pair
//!   when untagged) gets a lane with a virtual-time clock. A dequeue
//!   picks the backlogged lane with the smallest virtual time and
//!   advances that clock by `1/weight`, so over any backlogged window a
//!   tenant's dequeue share converges to `weight / Σweights`. A lane
//!   that goes idle re-enters at the global virtual-time floor: idling
//!   never banks credit, and a brand-new tenant cannot replay history
//!   it was not queued for.
//! * **Within a tenant: priority with aging.** Each lane keeps one FIFO
//!   per priority class, and a dequeue picks the class whose *head* has
//!   the highest `class_index + waited / aging_interval` score. A fresh
//!   High (score 2) still overtakes a fresh Low (score 0), but a Low
//!   that has waited two aging intervals draws level — every admitted
//!   session eventually dequeues no matter what keeps arriving above
//!   it, which a strict-priority heap cannot promise.
//!
//! The queue is deliberately runtime-agnostic (generic payload, a
//! `pop_at` hook taking an explicit clock) so its fairness invariants
//! can be property-tested without threads or sleeps.

use crate::session::Priority;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Default aging interval: a queued session gains one priority class
/// per interval waited, so a Low entry overtakes a fresh High after
/// two intervals.
pub const DEFAULT_AGING_INTERVAL: Duration = Duration::from_millis(500);

/// Weights below this are clamped up — a zero weight would stall the
/// lane's virtual clock and starve every other tenant.
const MIN_WEIGHT: f64 = 0.01;

/// Priority classes, Low → High.
const CLASSES: usize = 3;

fn class_index(priority: Priority) -> usize {
    match priority {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

fn class_priority(index: usize) -> Priority {
    match index {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

struct Entry<T> {
    seq: u64,
    enqueued: Instant,
    item: T,
}

struct Lane<T> {
    weight: f64,
    /// This lane's virtual finish time: advanced by `1/weight` per
    /// dequeue, clamped to the global floor on re-activation.
    vtime: f64,
    classes: [VecDeque<Entry<T>>; CLASSES],
    len: usize,
}

impl<T> Lane<T> {
    fn new(weight: f64, vtime: f64) -> Lane<T> {
        Lane {
            weight: weight.max(MIN_WEIGHT),
            vtime,
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            len: 0,
        }
    }
}

/// One dequeued entry, with the scheduling metadata the caller may want
/// to account against.
pub struct Popped<T> {
    /// The lane the entry was billed to.
    pub tenant: String,
    /// The priority class it was filed under.
    pub priority: Priority,
    /// Admission sequence number it was pushed with.
    pub seq: u64,
    /// Instant it was pushed with.
    pub enqueued: Instant,
    /// The payload.
    pub item: T,
}

/// A bounded-fairness multi-tenant queue (see the module docs). Not
/// internally synchronized: the runtime wraps it in the same mutex that
/// guarded the heap it replaces.
pub struct FairQueue<T> {
    lanes: HashMap<String, Lane<T>>,
    /// Virtual time of the most recent dequeue — the floor newly active
    /// lanes start from.
    vfloor: f64,
    aging: Duration,
    len: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue whose priority aging promotes a waiting entry one
    /// class per `aging_interval`.
    pub fn new(aging_interval: Duration) -> FairQueue<T> {
        FairQueue {
            lanes: HashMap::new(),
            vfloor: 0.0,
            aging: aging_interval.max(Duration::from_millis(1)),
            len: 0,
        }
    }

    /// Entries queued across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries queued for one tenant.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.lanes.get(tenant).map_or(0, |lane| lane.len)
    }

    /// Queues one entry on `tenant`'s lane at `priority`. The weight is
    /// re-declared on every push (lanes of idle tenants are dropped, so
    /// the queue holds no per-tenant state beyond its backlog); a
    /// changed weight applies from this push on.
    pub fn push(
        &mut self,
        tenant: &str,
        weight: f64,
        priority: Priority,
        seq: u64,
        enqueued: Instant,
        item: T,
    ) {
        let vfloor = self.vfloor;
        let lane = self
            .lanes
            .entry(tenant.to_string())
            .or_insert_with(|| Lane::new(weight, vfloor));
        lane.weight = weight.max(MIN_WEIGHT);
        if lane.len == 0 {
            lane.vtime = lane.vtime.max(vfloor);
        }
        lane.classes[class_index(priority)].push_back(Entry {
            seq,
            enqueued,
            item,
        });
        lane.len += 1;
        self.len += 1;
    }

    /// Dequeues the next entry under the fairness discipline, using the
    /// wall clock for priority aging.
    pub fn pop(&mut self) -> Option<Popped<T>> {
        self.pop_at(Instant::now())
    }

    /// [`pop`](FairQueue::pop) with an explicit clock — the hook
    /// property tests drive aging through without sleeping.
    pub fn pop_at(&mut self, now: Instant) -> Option<Popped<T>> {
        // The backlogged lane with the smallest virtual time; ties break
        // by tenant name for determinism.
        let tenant = self
            .lanes
            .iter()
            .filter(|(_, lane)| lane.len > 0)
            .min_by(|(a_name, a), (b_name, b)| {
                a.vtime
                    .partial_cmp(&b.vtime)
                    .expect("lane vtime is never NaN")
                    .then_with(|| a_name.cmp(b_name))
            })
            .map(|(name, _)| name.clone())?;
        let lane = self.lanes.get_mut(&tenant).expect("lane just selected");
        // Within the lane: the class whose head scores highest, where
        // waiting `aging` promotes an entry one class. Ties go to the
        // higher class (strict `>` while scanning downwards).
        let mut best: Option<(f64, usize)> = None;
        for ci in (0..CLASSES).rev() {
            if let Some(head) = lane.classes[ci].front() {
                let waited = now.saturating_duration_since(head.enqueued);
                let score = ci as f64 + waited.as_secs_f64() / self.aging.as_secs_f64();
                if best.is_none_or(|(top, _)| score > top) {
                    best = Some((score, ci));
                }
            }
        }
        let (_, ci) = best.expect("a backlogged lane has a head");
        let entry = lane.classes[ci].pop_front().expect("head just scored");
        lane.len -= 1;
        self.len -= 1;
        self.vfloor = self.vfloor.max(lane.vtime);
        lane.vtime += 1.0 / lane.weight;
        if lane.len == 0 {
            // Idle lanes carry no state worth keeping: a returning
            // tenant re-enters at the floor either way, and dropping
            // the lane keeps the queue's memory proportional to its
            // backlog, not to every tenant ever seen.
            self.lanes.remove(&tenant);
        }
        Some(Popped {
            tenant,
            priority: class_priority(ci),
            seq: entry.seq,
            enqueued: entry.enqueued,
            item: entry.item,
        })
    }

    /// Removes and returns every queued entry matching `pred`, FIFO
    /// within each `(tenant, priority)` lane — the breaker-feedback
    /// hook that drains a dead route out of the queue.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut drained = Vec::new();
        for lane in self.lanes.values_mut() {
            for class in &mut lane.classes {
                let mut keep = VecDeque::with_capacity(class.len());
                for entry in class.drain(..) {
                    if pred(&entry.item) {
                        drained.push(entry.item);
                        lane.len -= 1;
                        self.len -= 1;
                    } else {
                        keep.push_back(entry);
                    }
                }
                *class = keep;
            }
        }
        self.lanes.retain(|_, lane| lane.len > 0);
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(queue: &mut FairQueue<u64>) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some(popped) = queue.pop() {
            order.push(popped.item);
        }
        order
    }

    #[test]
    fn fifo_within_one_tenant_and_priority() {
        let mut q = FairQueue::new(DEFAULT_AGING_INTERVAL);
        let now = Instant::now();
        for seq in 0..5 {
            q.push("t", 1.0, Priority::Normal, seq, now, seq);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.tenant_depth("t"), 5);
        assert_eq!(drain_order(&mut q), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn fresh_high_overtakes_fresh_low_within_a_tenant() {
        let mut q = FairQueue::new(DEFAULT_AGING_INTERVAL);
        let now = Instant::now();
        q.push("t", 1.0, Priority::Low, 0, now, 0);
        q.push("t", 1.0, Priority::High, 1, now, 1);
        q.push("t", 1.0, Priority::Normal, 2, now, 2);
        assert_eq!(drain_order(&mut q), vec![1, 2, 0]);
    }

    #[test]
    fn aging_promotes_a_waiting_low_past_fresh_highs() {
        let aging = Duration::from_millis(100);
        let mut q = FairQueue::new(aging);
        let base = Instant::now();
        q.push("t", 1.0, Priority::Low, 0, base, 999);
        // Three aging intervals later the Low head scores 3.0; a fresh
        // High scores 2.0 and must lose.
        let later = base + 3 * aging;
        q.push("t", 1.0, Priority::High, 1, later, 1);
        let first = q.pop_at(later).unwrap();
        assert_eq!(first.item, 999, "aged Low never overtook a fresh High");
        assert_eq!(first.priority, Priority::Low);
        assert_eq!(q.pop_at(later).unwrap().item, 1);
    }

    #[test]
    fn weighted_shares_converge_under_full_backlog() {
        let mut q = FairQueue::new(DEFAULT_AGING_INTERVAL);
        let now = Instant::now();
        for seq in 0..300 {
            q.push("heavy", 2.0, Priority::Normal, seq, now, 0);
            q.push("light-a", 1.0, Priority::Normal, seq, now, 1);
            q.push("light-b", 1.0, Priority::Normal, seq, now, 2);
        }
        let mut counts = [0usize; 3];
        for _ in 0..200 {
            counts[q.pop_at(now).unwrap().item as usize] += 1;
        }
        // Fair shares over 200 dequeues at weights 2:1:1 → 100/50/50.
        assert!(
            (95..=105).contains(&counts[0]),
            "heavy tenant drew {} of 200",
            counts[0]
        );
        for light in [counts[1], counts[2]] {
            assert!(
                (45..=55).contains(&light),
                "light tenant drew {light} of 200"
            );
        }
    }

    #[test]
    fn an_idle_tenant_reenters_at_the_floor_without_banked_credit() {
        let mut q = FairQueue::new(DEFAULT_AGING_INTERVAL);
        let now = Instant::now();
        // One tenant consumes service alone for a while.
        for seq in 0..50 {
            q.push("busy", 1.0, Priority::Normal, seq, now, 0);
        }
        for _ in 0..40 {
            q.pop_at(now);
        }
        // A newcomer joins: it must not monopolize the queue to "catch
        // up" on the 40 dequeues it was absent for — shares from here on
        // are 1:1.
        for seq in 50..80 {
            q.push("newcomer", 1.0, Priority::Normal, seq, now, 1);
        }
        let mut newcomer = 0;
        for _ in 0..10 {
            if q.pop_at(now).unwrap().item == 1 {
                newcomer += 1;
            }
        }
        assert!(
            (4..=6).contains(&newcomer),
            "newcomer drew {newcomer} of 10 instead of an equal share"
        );
    }

    #[test]
    fn drain_matching_removes_exactly_the_matches() {
        let mut q = FairQueue::new(DEFAULT_AGING_INTERVAL);
        let now = Instant::now();
        for seq in 0..6 {
            let tenant = if seq % 2 == 0 { "even" } else { "odd" };
            q.push(tenant, 1.0, Priority::Normal, seq, now, seq);
        }
        let drained = q.drain_matching(|item| item % 2 == 0);
        assert_eq!(drained, vec![0, 2, 4]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_depth("even"), 0);
        assert_eq!(q.tenant_depth("odd"), 3);
        assert_eq!(drain_order(&mut q), vec![1, 3, 5]);
    }
}
