//! A hashed timing wheel: the scheduler's clock.
//!
//! Every wait in the event-driven shipping engine — wire occupancy of a
//! paced link, retry backoff, lane contention — becomes a *deadline*
//! filed here instead of a `thread::sleep` burning a worker. The wheel
//! hashes each deadline into a slot by tick; expiry drains the slots the
//! cursor sweeps past and returns the due task ids. Entries more than
//! one rotation out simply stay in their slot until their stored
//! deadline actually passes (the classic hashed-wheel rotation check),
//! so the wheel needs no hierarchy for the occasional multi-second
//! backoff cap.
//!
//! Single-owner by design: the engine mutates the wheel under its state
//! lock, so the wheel itself carries no synchronization.

use std::time::{Duration, Instant};

/// Default tick granularity. Paced waits in the fleet are hundreds of
/// microseconds to low milliseconds; half a millisecond keeps expiry
/// error below the noise of thread wakeup latency.
pub const DEFAULT_TICK: Duration = Duration::from_micros(500);

/// Default slot count: one rotation covers ~512 ms at the default tick,
/// longer waits ride the rotation check.
pub const DEFAULT_SLOTS: usize = 1024;

/// A hashed timing wheel over opaque `u64` task ids.
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<(Instant, u64)>>,
    /// Absolute tick index the cursor last swept to.
    cursor: u64,
    /// The instant tick 0 started.
    epoch: Instant,
    /// Entries currently filed (across all slots).
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> TimerWheel {
        TimerWheel::new(DEFAULT_TICK, DEFAULT_SLOTS)
    }
}

impl TimerWheel {
    /// A wheel with `slots` slots of `tick` granularity each.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        TimerWheel {
            tick: tick.max(Duration::from_micros(1)),
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            cursor: 0,
            epoch: Instant::now(),
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.epoch).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Files `id` to come due at `deadline`. Deadlines in the past land
    /// in the very next expiry sweep. A task parks on at most one
    /// deadline at a time; the wheel does not deduplicate.
    pub fn schedule(&mut self, deadline: Instant, id: u64) {
        // Round the slot *up* one tick so the cursor never sweeps past a
        // slot whose entry is a sub-tick away from due: by the time the
        // sweep reaches tick `t+1`, any deadline hashed there from tick
        // `t` has certainly passed.
        let t = self.tick_of(deadline) + 1;
        let t = t.max(self.cursor);
        let slot = (t % self.slots.len() as u64) as usize;
        self.slots[slot].push((deadline, id));
        self.len += 1;
    }

    /// Sweeps the cursor up to `now` and returns every id whose deadline
    /// passed. Entries hashed into swept slots for a *later* rotation
    /// stay put.
    pub fn expire(&mut self, now: Instant) -> Vec<u64> {
        if self.len == 0 {
            self.cursor = self.tick_of(now);
            return Vec::new();
        }
        let now_tick = self.tick_of(now);
        let mut due = Vec::new();
        // Sweep [cursor, now_tick + 1] — one tick past `now`, because
        // scheduling rounds slots *up* a tick (see [`schedule`]) and an
        // already-due entry may sit there. The per-entry deadline check
        // keeps not-yet-due entries in place. A gap longer than one
        // rotation is clamped to a single full scan.
        let span = (now_tick.saturating_sub(self.cursor) + 2).min(self.slots.len() as u64);
        for i in 0..span {
            let slot = ((self.cursor + i) % self.slots.len() as u64) as usize;
            self.slots[slot].retain(|(deadline, id)| {
                if *deadline <= now {
                    due.push(*id);
                    false
                } else {
                    true
                }
            });
        }
        self.cursor = now_tick;
        self.len -= due.len();
        due
    }

    /// The earliest filed deadline, if any — what an idle driver sleeps
    /// until. Linear in filed entries; the engine only asks when it has
    /// nothing runnable.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flatten()
            .map(|(deadline, _)| *deadline)
            .min()
    }

    /// Entries currently filed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is filed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_in_deadline_order_across_slots() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(5), 5);
        wheel.schedule(now + Duration::from_millis(2), 2);
        wheel.schedule(now + Duration::from_millis(40), 40); // beyond one 16 ms rotation
        assert_eq!(wheel.len(), 3);
        assert!(wheel.expire(now).is_empty(), "nothing due yet");
        let due = wheel.expire(now + Duration::from_millis(3));
        assert_eq!(due, vec![2]);
        let due = wheel.expire(now + Duration::from_millis(10));
        assert_eq!(due, vec![5]);
        // The 40 ms entry shares slots with the first rotation but only
        // comes due on its own deadline.
        assert!(wheel.expire(now + Duration::from_millis(39)).is_empty());
        assert_eq!(wheel.expire(now + Duration::from_millis(41)), vec![40]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_on_next_sweep() {
        let mut wheel = TimerWheel::default();
        let now = Instant::now();
        wheel.schedule(now - Duration::from_millis(5), 1);
        assert_eq!(wheel.expire(now), vec![1]);
    }

    #[test]
    fn long_idle_gap_still_drains_every_slot() {
        let mut wheel = TimerWheel::new(Duration::from_micros(100), 8);
        let now = Instant::now();
        for id in 0..20 {
            wheel.schedule(now + Duration::from_micros(150 * (id + 1)), id);
        }
        // One sweep far past every deadline (many rotations later) must
        // still find all of them despite the clamped scan.
        let due = wheel.expire(now + Duration::from_secs(1));
        assert_eq!(due.len(), 20);
        assert!(wheel.next_deadline().is_none());
    }

    #[test]
    fn next_deadline_is_the_minimum() {
        let mut wheel = TimerWheel::default();
        let now = Instant::now();
        assert!(wheel.next_deadline().is_none());
        wheel.schedule(now + Duration::from_millis(9), 9);
        wheel.schedule(now + Duration::from_millis(3), 3);
        let next = wheel.next_deadline().unwrap();
        assert!(next <= now + Duration::from_millis(3) + Duration::from_micros(1));
    }
}
