//! The multi-tenant exchange-session runtime.
//!
//! One [`Runtime`] hosts many concurrent exchanges against a single
//! agreed-upon schema: requests are admitted into a bounded
//! weighted-fair queue (per-tenant lanes with priority aging — see
//! [`crate::fair`]), a fixed pool of workers plans them (through the
//! shared [`PlanCache`]) and executes them, and every cross-edge
//! shipment rides the per-`(source, target)`-pair link resolved from
//! the [`LinkRegistry`] — the paper's one-path-per-pair deployment.
//! Sessions routed over distinct pairs ship fully in parallel; sessions
//! sharing a pair contend realistically on that pair's link. Each link
//! carries its own fault model, counters and circuit breaker.
//!
//! Under overload the runtime *sheds* instead of degrading: a
//! submission whose deadline the [`crate::admission`] estimator says
//! cannot be met is refused up front; a queued session whose deadline
//! expired, or whose route's breaker opened, is shed at dequeue before
//! burning a planning probe; and an opening breaker drains its route's
//! queued sessions on the spot. Every queue in the system is bounded —
//! admission, the resumable-checkpoint map, the reassembly ledger, the
//! event/span rings, the latency window — so sustained 2× overload
//! holds RSS flat (the `soak` bench mode asserts it).

use crate::admission::AdmissionController;
use crate::breaker::BreakerTransition;
use crate::cache::{plan_key, plan_key_with_fanout, CachedPlan, PlanCache};
use crate::engine::{BatchResult, ShipEngine, ShipRequest};
use crate::events::{Event, EventKind, EventLog, DEFAULT_EVENT_CAPACITY};
use crate::fair::{FairQueue, DEFAULT_AGING_INTERVAL};
use crate::flight::{FlightRecorder, FlightSubsystem, DEFAULT_FLIGHT_CAPACITY};
use crate::introspect::{IntrospectReply, IntrospectServer};
use crate::ledger::{ReassemblyLedger, DEFAULT_LEDGER_CAPACITY};
use crate::registry::{LinkRegistry, LinkSlot, LinkStats};
use crate::session::{
    ExchangeRequest, PublishRequest, SessionHandle, SessionId, SessionMetrics, SessionResult,
    SessionShared, SessionState,
};
use crate::shipper::{FaultTolerantShipper, ShippingPolicy};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xdx_codec::{
    decode_any_ctx, decode_patch_ctx, encode_in_format_with_context_into,
    encode_patch_with_context_into, label_with_context, split_label_context, TraceContext,
};
use xdx_core::exec::{
    commit_and_index, cross_ports_in_consumer_order, direct_write_tables,
    execute_source_phase_streaming, execute_target_phase, execute_with_transport, feed_batches,
    writes_stream_directly, ExecOutcome, LoopbackTransport, OpSample, Transport,
};
use xdx_core::program::PortRef;
use xdx_core::{
    ksite_greedy, ksite_optimal, CostModel, DataExchange, Location, Optimizer, Program, WireFormat,
    PATCH_STEP_FACTOR,
};
use xdx_delta::{db_tables, diff_snapshots, Snapshot, SnapshotStore};
use xdx_net::http::Request;
use xdx_net::{FaultProfile, NetworkProfile};
use xdx_relational::{stage_patch, Counters, Database, Feed};
use xdx_trace::{
    CalibrationConfig, CalibrationReport, CalibrationTracker, Histogram, HistogramSnapshot,
    MetricsRegistry, SpanId, TraceSink, NO_SPAN,
};
use xdx_xml::SchemaTree;

/// Stable label for a placement location in metric names and
/// calibration cells.
fn location_name(loc: Location) -> &'static str {
    match loc {
        Location::Source => "source",
        Location::Target => "target",
        Location::Unassigned => "unassigned",
    }
}

/// Stable label for a wire format in metric names and calibration
/// cells.
fn format_name(format: WireFormat) -> &'static str {
    match format {
        WireFormat::Xml => "xml",
        WireFormat::Columnar => "columnar",
    }
}

/// The distributed trace id a session's spans stitch under: the
/// publish group's span for multicast lanes (so one publish is one
/// tree), the session's own root span otherwise.
fn session_trace_id(shared: &SessionShared) -> u64 {
    if shared.root_parent != NO_SPAN {
        shared.root_parent
    } else {
        shared.root_span
    }
}

/// The trace context a shipment out of `shared` carries on the wire:
/// columnar frames fold it into their header extension, XML-text
/// shipments append it to the chunk label. `None` when tracing is off
/// (frames stay byte-identical to the context-free form).
fn wire_context(shared: &SessionShared, parent_span: SpanId) -> Option<TraceContext> {
    (shared.root_span != NO_SPAN).then(|| TraceContext {
        trace_id: session_trace_id(shared),
        parent_span,
    })
}

/// Trace context off a received SOAP request's `SOAPAction` header (the
/// label channel XML-text shipments use; the header value is quoted on
/// the wire).
fn soap_action_context(request: &Request) -> Option<TraceContext> {
    split_label_context(request.header("SOAPAction")?.trim_matches('"')).1
}

/// Stable identity of a route's versioned feed log: the endpoint pair
/// plus both fragmentation names — a different fragmentation pair over
/// the same endpoints is a different feed history.
fn route_key(src_ep: &str, dst_ep: &str, src_frag: &str, dst_frag: &str) -> String {
    format!("{src_ep}→{dst_ep}:{src_frag}→{dst_frag}")
}

/// Tunables of a runtime instance.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads executing sessions.
    pub workers: usize,
    /// Maximum sessions waiting in the queue; submissions beyond this
    /// are rejected at admission (back-pressure, not unbounded memory).
    pub max_queue_depth: usize,
    /// Bandwidth/latency model for links the registry creates.
    pub network: NetworkProfile,
    /// Default fault model for links the registry creates; override a
    /// single pair afterwards with [`Runtime::set_link_fault_profile`].
    pub fault_profile: FaultProfile,
    /// Real-time pacing of link transmissions: each one blocks its
    /// caller for this fraction of its simulated duration (0 = pure
    /// simulation, 1 = real time). With pacing on, sessions sharing a
    /// pair serialize on that link's wall time while disjoint pairs
    /// overlap — the knob throughput benchmarks use to make multi-link
    /// parallelism observable on a clock.
    pub link_pacing: f64,
    /// Chunking/retry policy of the shipping layer.
    pub shipping: ShippingPolicy,
    /// Optimizer sessions are planned with unless their request carries
    /// an [`ExchangeRequest::with_optimizer`] override.
    pub optimizer: Optimizer,
    /// Communication weight of the cost model.
    pub w_comm: f64,
    /// Wire format every endpoint prefers by default. A pair ships
    /// columnar only when both its endpoints prefer it (override one
    /// endpoint with [`Runtime::set_endpoint_format`]); XML text is the
    /// universal fallback.
    pub wire_format: WireFormat,
    /// Age at which cached plans expire (None = never); expired and
    /// stats-drifted entries are re-planned, so a long-lived runtime
    /// never serves a program optimized for data that no longer exists.
    pub plan_ttl: Option<Duration>,
    /// Consecutive link-failed sessions before a link's circuit breaker
    /// opens and refuses new admissions *on that pair*.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses admissions before letting one
    /// probe session through.
    pub breaker_cooldown: Duration,
    /// Whether structured trace spans are recorded. On by default; the
    /// throughput bench flips it off to measure tracing overhead.
    pub tracing: bool,
    /// Maximum spans the trace ring keeps; the oldest are evicted (and
    /// counted in [`RuntimeStats::dropped_spans`]) beyond this.
    pub trace_capacity: usize,
    /// Maximum events the flight-recorder ring keeps; the oldest are
    /// evicted (and counted in [`RuntimeStats::dropped_events`]) beyond
    /// this.
    pub event_capacity: usize,
    /// Cost-model calibration thresholds (drift factor, streak length,
    /// EWMA smoothing) driving plan-cache drift eviction.
    pub calibration: CalibrationConfig,
    /// Priority-aging interval of the weighted-fair queue: a queued
    /// session gains one priority class per interval waited, so nothing
    /// starves behind a stream of higher-priority arrivals.
    pub aging_interval: Duration,
    /// Maximum shipment buffers the reassembly ledger checkpoints;
    /// beyond it the least-recently-touched checkpoint is shed (the
    /// session re-ships those chunks if resumed).
    pub ledger_capacity: usize,
    /// Maximum failed-session checkpoints kept for [`Runtime::resume`];
    /// beyond it the oldest checkpoint is evicted (each holds a full
    /// source database, so this bound is what keeps failure storms from
    /// growing RSS).
    pub max_resumables: usize,
    /// Whether non-delta sessions run on the event-driven pipelined
    /// path: the source phase streams Dewey-sorted operator batches
    /// through the shipping engine while the worker moves on to other
    /// runnable work, and the target stages each batch as it lands. Off,
    /// every session executes on the classic blocking shipper.
    pub pipeline: bool,
    /// Rows per streamed operator batch on the pipelined path. Feeds
    /// smaller than one batch ship as a single message, so small
    /// exchanges keep their one-message-per-cross-edge shape.
    pub batch_rows: usize,
    /// Batches of one session allowed in flight at once — the bound of
    /// the per-session batch channel between encoder and shipper. Frame
    /// `k+1` is encoded while frame `k` is on the wire; depth caps how
    /// far the encoder may run ahead of the slowest link.
    pub pipeline_depth: usize,
    /// Pipelined sessions each worker may hold in flight beyond the one
    /// it is actively driving. The pool keeps at most `workers ×
    /// pipeline_sessions_per_worker` sessions parked mid-exchange;
    /// arrivals beyond that wait in the admission queue, so overload
    /// still produces a visible backlog (and breaker-open shedding
    /// still finds queued sessions to drain) instead of unbounded
    /// in-flight state.
    pub pipeline_sessions_per_worker: usize,
    /// Whether the always-on flight recorder keeps its per-subsystem
    /// transition rings (engine lanes, timer deadlines, breaker flips,
    /// shed decisions). On by default; the throughput bench flips it
    /// off together with tracing to measure observability overhead.
    pub flight_recorder: bool,
    /// Directory the flight recorder dumps its rings into (as JSONL) on
    /// anomaly — session failure, breaker open, shed-rate spike, or the
    /// stall watchdog. `None` records in memory only
    /// ([`Runtime::flight_jsonl`] still serves the rings).
    pub flight_dump_dir: Option<&'static str>,
    /// How far the shipping engine's nearest wheel deadline may run
    /// overdue (while tasks are parked) before the stall watchdog
    /// declares the engine wedged.
    pub stall_threshold: Duration,
    /// Address the live introspection endpoint listens on (`None` —
    /// the default — serves nothing). Port 0 binds an ephemeral port;
    /// read the bound address back with [`Runtime::introspect_addr`].
    /// The endpoint serves `/metrics`, `/healthz`, `/stats.json`,
    /// `/traces`, `/calibration` and `/flight` over plain HTTP/1.1.
    pub introspect_addr: Option<std::net::SocketAddr>,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: 4,
            max_queue_depth: 64,
            network: NetworkProfile::lan(),
            fault_profile: FaultProfile::healthy(),
            link_pacing: 0.0,
            shipping: ShippingPolicy::default(),
            optimizer: Optimizer::Greedy,
            w_comm: 0.05,
            wire_format: WireFormat::Xml,
            plan_ttl: None,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_secs(5),
            tracing: true,
            trace_capacity: 65_536,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            calibration: CalibrationConfig::default(),
            aging_interval: DEFAULT_AGING_INTERVAL,
            ledger_capacity: DEFAULT_LEDGER_CAPACITY,
            max_resumables: 256,
            pipeline: true,
            batch_rows: 1024,
            pipeline_depth: 4,
            pipeline_sessions_per_worker: 4,
            flight_recorder: true,
            flight_dump_dir: None,
            stall_threshold: Duration::from_millis(250),
            introspect_addr: None,
        }
    }
}

impl RuntimeConfig {
    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> RuntimeConfig {
        self.workers = workers;
        self
    }

    /// Sets the admission bound.
    pub fn with_max_queue_depth(mut self, depth: usize) -> RuntimeConfig {
        self.max_queue_depth = depth;
        self
    }

    /// Sets the link model.
    pub fn with_network(mut self, network: NetworkProfile) -> RuntimeConfig {
        self.network = network;
        self
    }

    /// Sets the default link fault model.
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> RuntimeConfig {
        self.fault_profile = profile;
        self
    }

    /// Sets the real-time link pacing scale.
    pub fn with_link_pacing(mut self, scale: f64) -> RuntimeConfig {
        self.link_pacing = scale;
        self
    }

    /// Sets the shipping policy.
    pub fn with_shipping(mut self, shipping: ShippingPolicy) -> RuntimeConfig {
        self.shipping = shipping;
        self
    }

    /// Sets the optimizer.
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> RuntimeConfig {
        self.optimizer = optimizer;
        self
    }

    /// Sets the default endpoint wire-format preference.
    pub fn with_wire_format(mut self, format: WireFormat) -> RuntimeConfig {
        self.wire_format = format;
        self
    }

    /// Sets the plan-cache TTL.
    pub fn with_plan_ttl(mut self, ttl: Duration) -> RuntimeConfig {
        self.plan_ttl = Some(ttl);
        self
    }

    /// Sets the per-link circuit-breaker policy.
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> RuntimeConfig {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Turns trace-span recording on or off.
    pub fn with_tracing(mut self, enabled: bool) -> RuntimeConfig {
        self.tracing = enabled;
        self
    }

    /// Sets the trace-span ring capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> RuntimeConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Sets the event-log ring capacity.
    pub fn with_event_capacity(mut self, capacity: usize) -> RuntimeConfig {
        self.event_capacity = capacity;
        self
    }

    /// Sets the cost-model calibration thresholds.
    pub fn with_calibration(mut self, calibration: CalibrationConfig) -> RuntimeConfig {
        self.calibration = calibration;
        self
    }

    /// Sets the fair queue's priority-aging interval.
    pub fn with_aging_interval(mut self, interval: Duration) -> RuntimeConfig {
        self.aging_interval = interval;
        self
    }

    /// Sets the reassembly-ledger checkpoint capacity.
    pub fn with_ledger_capacity(mut self, capacity: usize) -> RuntimeConfig {
        self.ledger_capacity = capacity;
        self
    }

    /// Sets the failed-session checkpoint cap.
    pub fn with_max_resumables(mut self, cap: usize) -> RuntimeConfig {
        self.max_resumables = cap;
        self
    }

    /// Turns the event-driven pipelined execution path on or off.
    pub fn with_pipeline(mut self, enabled: bool) -> RuntimeConfig {
        self.pipeline = enabled;
        self
    }

    /// Sets the rows per streamed operator batch (clamped to ≥ 1).
    pub fn with_batch_rows(mut self, rows: usize) -> RuntimeConfig {
        self.batch_rows = rows.max(1);
        self
    }

    /// Sets the per-session in-flight batch bound (clamped to ≥ 1).
    pub fn with_pipeline_depth(mut self, depth: usize) -> RuntimeConfig {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Sets how many pipelined sessions each worker may hold parked
    /// mid-exchange (clamped to ≥ 1).
    pub fn with_pipeline_sessions_per_worker(mut self, sessions: usize) -> RuntimeConfig {
        self.pipeline_sessions_per_worker = sessions.max(1);
        self
    }

    /// Turns the flight recorder on or off.
    pub fn with_flight_recorder(mut self, enabled: bool) -> RuntimeConfig {
        self.flight_recorder = enabled;
        self
    }

    /// Sets the directory flight-recorder anomaly dumps land in.
    pub fn with_flight_dump_dir(mut self, dir: &'static str) -> RuntimeConfig {
        self.flight_dump_dir = Some(dir);
        self
    }

    /// Sets the stall watchdog's overdue-deadline threshold.
    pub fn with_stall_threshold(mut self, threshold: Duration) -> RuntimeConfig {
        self.stall_threshold = threshold;
        self
    }

    /// Enables the live introspection endpoint on `addr`.
    pub fn with_introspect_addr(mut self, addr: std::net::SocketAddr) -> RuntimeConfig {
        self.introspect_addr = Some(addr);
        self
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `max_queue_depth` sessions.
    QueueFull {
        /// The bound that was hit.
        depth: usize,
        /// How long the queue needs to drain a slot at its observed
        /// dequeue rate — the client's back-off hint.
        retry_after: Duration,
    },
    /// The admission estimator concluded the request's deadline cannot
    /// be met at the current queue depth and service rate; running it
    /// would only shed it at dequeue after wasting a queue slot.
    DeadlineUnattainable {
        /// The deadline the request carried.
        deadline: Duration,
        /// The estimated queue-to-completion turnaround.
        estimated: Duration,
        /// Back-off hint derived from the queue drain rate.
        retry_after: Duration,
    },
    /// The circuit breaker of the *request's route* is open: too many
    /// consecutive shipment failures on that `(source, target)` pair.
    /// Other pairs keep admitting. Retry after the hinted cooldown
    /// remainder.
    CircuitOpen {
        /// Time until the breaker half-opens and admits a probe.
        retry_after: Duration,
    },
    /// `resume` was asked for a session the runtime has no checkpoint
    /// for (unknown id, never failed, or already resumed).
    UnknownSession {
        /// The id that did not resolve.
        id: SessionId,
    },
    /// The runtime is shutting down.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { depth, retry_after } => {
                write!(
                    f,
                    "admission refused: queue full ({depth} sessions), retry in {retry_after:?}"
                )
            }
            SubmitError::DeadlineUnattainable {
                deadline,
                estimated,
                retry_after,
            } => write!(
                f,
                "admission refused: deadline {deadline:?} unattainable \
                 (estimated turnaround {estimated:?}), retry in {retry_after:?}"
            ),
            SubmitError::CircuitOpen { retry_after } => write!(
                f,
                "admission refused: link circuit open, retry in {retry_after:?}"
            ),
            SubmitError::UnknownSession { id } => {
                write!(f, "resume refused: no resumable session {id}")
            }
            SubmitError::ShutDown => write!(f, "admission refused: runtime shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Caller-side view of an admitted 1→N publish group: one
/// [`SessionHandle`] per subscriber, index-aligned with
/// `PublishRequest::subscribers`.
pub struct PublishHandle {
    /// Per-subscriber session handles.
    pub handles: Vec<SessionHandle>,
}

impl PublishHandle {
    /// Number of subscriber lanes in the group.
    pub fn fanout(&self) -> usize {
        self.handles.len()
    }

    /// Blocks until every lane settles and returns the per-subscriber
    /// results, in subscriber order.
    pub fn wait(self) -> Vec<SessionResult> {
        self.handles.into_iter().map(SessionHandle::wait).collect()
    }
}

/// Outcome of an N→1 [`Runtime::consolidate`]: the merged target plus
/// per-source dispositions.
#[derive(Debug)]
pub struct ConsolidationOutcome {
    /// The consolidated target database; holds exactly the tables of
    /// the sources that committed (each staged and committed as one
    /// transaction).
    pub target: Database,
    /// Sources whose exchange completed and whose staging committed.
    pub applied: usize,
    /// Sources refused, failed, or rolled back during staging.
    pub failed: usize,
    /// Per-source disposition, in request order: metrics on success, a
    /// diagnostic on refusal/failure.
    pub results: Vec<(String, std::result::Result<SessionMetrics, String>)>,
    /// Key-index rebuild failure over the merged tables (e.g. duplicate
    /// keys across sources); the rows are committed either way.
    pub index_error: Option<String>,
}

/// Aggregate counters across the runtime's lifetime, with per-link
/// rollups in [`RuntimeStats::links`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Sessions admitted to the queue.
    pub admitted: u64,
    /// Submissions refused at admission.
    pub rejected: u64,
    /// Sessions that reached `Done`.
    pub completed: u64,
    /// Sessions that reached `Failed`.
    pub failed: u64,
    /// Sessions that reached `Cancelled`.
    pub cancelled: u64,
    /// Failed sessions re-admitted through [`Runtime::resume`].
    pub resumed: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Cached plans evicted for outliving the TTL.
    pub plan_cache_expired: u64,
    /// Cached plans evicted because the probed statistics drifted.
    pub plan_cache_stats_evicted: u64,
    /// Cached plans evicted because cost-model calibration reported
    /// sustained predicted-vs-observed drift on their shape.
    pub plan_cache_drift_evicted: u64,
    /// Statistics probes run across all sessions (resumed sessions
    /// replaying a checkpointed plan probe zero times).
    pub planning_probes: u64,
    /// Cross-edge messages serialized from feeds (checkpoint replays
    /// not counted).
    pub messages_serialized: u64,
    /// Wire bytes transmitted, including failed attempts.
    pub bytes_shipped: u64,
    /// Encoded message bytes produced across all sessions (logical
    /// payload before chunk framing; checkpoint replays encode nothing,
    /// so resumed sessions add zero here).
    pub bytes_encoded: u64,
    /// Wall nanoseconds spent encoding cross-edge messages.
    pub encode_ns: u64,
    /// Chunks delivered intact.
    pub chunks_shipped: u64,
    /// Chunks resumed sessions found checkpointed and did not re-ship.
    pub chunks_resumed: u64,
    /// Duplicate chunk deliveries dropped idempotently.
    pub chunks_deduped: u64,
    /// Chunk transmissions retried.
    pub chunks_retried: u64,
    /// Per-link counters, sorted by `(source, target)` pair.
    pub links: Vec<LinkStats>,
    /// Most shipment windows ever simultaneously open across all links
    /// — >1 proves disjoint pairs shipped in parallel.
    pub peak_concurrent_shipments: u64,
    /// Per-session submit→done wall latencies of completed sessions.
    pub latencies: Vec<Duration>,
    /// The same latencies as a log-linear histogram snapshot —
    /// mergeable across runs, quantile error ≤ 1/32.
    pub latency_histogram: HistogramSnapshot,
    /// Events evicted from the bounded flight-recorder ring.
    pub dropped_events: u64,
    /// Spans evicted from the bounded trace ring.
    pub dropped_spans: u64,
    /// Encoded Patch-frame bytes shipped by delta sessions.
    pub delta_patch_bytes: u64,
    /// Delta patches applied transactionally at targets.
    pub delta_patches_applied: u64,
    /// Delta-eligible sessions where the cost model chose the full
    /// re-ship (the patch would have cost more than the full feeds).
    pub delta_full_chosen: u64,
    /// Delta-eligible sessions that fell back to a full re-ship for a
    /// non-cost reason (missing snapshot, diff/decode failure, stale
    /// version precondition).
    pub delta_full_fallbacks: u64,
    /// Delta-eligible sessions whose aged-out base snapshot was
    /// reconstructed by composing retained per-step patches (a subset of
    /// the sessions that would otherwise be `delta_full_fallbacks`).
    pub delta_chain_composed: u64,
    /// Subscriber lanes admitted across all 1→N publish groups.
    pub fanout_subscribers: u64,
    /// Multicast frame submissions served from an already-encoded shared
    /// buffer — each one is an encode the fan-out never ran.
    pub multicast_encode_shared: u64,
    /// Subscriber lanes dropped from the shared frame buffer (lag cap
    /// exceeded or lane failure) onto the per-subscriber
    /// re-encode/full-ship fallback.
    pub multicast_encode_fallback: u64,
    /// Acknowledged shipment buffers garbage-collected from the
    /// reassembly ledger after their session committed.
    pub ledger_entries_pruned: u64,
    /// Sessions shed at dequeue because their deadline expired while
    /// queued — failed *before* burning a planning probe.
    pub sessions_shed_expired: u64,
    /// Submissions shed at admission because the estimator found their
    /// deadline unattainable at the current load.
    pub sessions_shed_deadline: u64,
    /// Queued sessions shed because their route's circuit breaker was
    /// open (at dequeue, or drained when the breaker opened).
    pub sessions_shed_breaker: u64,
    /// Failed-session checkpoints evicted by the `max_resumables` cap.
    pub resumables_evicted: u64,
    /// Reassembly-ledger checkpoints evicted by the capacity cap.
    pub ledger_buffers_shed: u64,
    /// Sessions waiting in the admission queue at snapshot time.
    pub queue_depth: usize,
    /// Per-tenant fairness counters, sorted by tenant label.
    pub tenants: Vec<TenantStats>,
}

/// Point-in-time fairness counters of one admission tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant label (explicit tag, or the route pair).
    pub tenant: String,
    /// The weighted-fair share weight (default 1.0).
    pub weight: f64,
    /// Sessions this tenant had admitted.
    pub admitted: u64,
    /// Sessions this tenant completed.
    pub completed: u64,
    /// Sessions of this tenant that load shedding dropped (unattainable
    /// deadline, expired while queued, or breaker feedback).
    pub shed: u64,
}

impl RuntimeStats {
    /// The `p`-th latency percentile (0–100) over completed sessions,
    /// estimated from the shared log-linear histogram (relative error
    /// ≤ 1/32).
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        self.latency_histogram
            .quantile((p / 100.0).clamp(0.0, 1.0))
            .map(Duration::from_nanos)
    }

    /// Completed sessions per second of the given wall-clock window.
    pub fn sessions_per_sec(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / wall.as_secs_f64()
    }

    /// The full counter set as one JSON object — what the introspection
    /// endpoint serves at `/stats.json`. Latencies collapse to their
    /// histogram percentiles; links and tenants nest as arrays.
    pub fn to_json(&self) -> String {
        use crate::events::json_escape;
        let mut out = String::with_capacity(2048);
        out.push('{');
        for (name, value) in [
            ("admitted", self.admitted),
            ("rejected", self.rejected),
            ("completed", self.completed),
            ("failed", self.failed),
            ("cancelled", self.cancelled),
            ("resumed", self.resumed),
            ("sessions_shed_expired", self.sessions_shed_expired),
            ("sessions_shed_deadline", self.sessions_shed_deadline),
            ("sessions_shed_breaker", self.sessions_shed_breaker),
            ("resumables_evicted", self.resumables_evicted),
            ("ledger_buffers_shed", self.ledger_buffers_shed),
            ("plan_cache_hits", self.plan_cache_hits),
            ("plan_cache_misses", self.plan_cache_misses),
            ("plan_cache_expired", self.plan_cache_expired),
            ("plan_cache_stats_evicted", self.plan_cache_stats_evicted),
            ("plan_cache_drift_evicted", self.plan_cache_drift_evicted),
            ("planning_probes", self.planning_probes),
            ("messages_serialized", self.messages_serialized),
            ("bytes_shipped", self.bytes_shipped),
            ("bytes_encoded", self.bytes_encoded),
            ("encode_ns", self.encode_ns),
            ("chunks_shipped", self.chunks_shipped),
            ("chunks_resumed", self.chunks_resumed),
            ("chunks_deduped", self.chunks_deduped),
            ("chunks_retried", self.chunks_retried),
            ("peak_concurrent_shipments", self.peak_concurrent_shipments),
            ("dropped_events", self.dropped_events),
            ("dropped_spans", self.dropped_spans),
            ("delta_patch_bytes", self.delta_patch_bytes),
            ("delta_patches_applied", self.delta_patches_applied),
            ("delta_full_chosen", self.delta_full_chosen),
            ("delta_full_fallbacks", self.delta_full_fallbacks),
            ("delta_chain_composed", self.delta_chain_composed),
            ("fanout_subscribers", self.fanout_subscribers),
            ("multicast_encode_shared", self.multicast_encode_shared),
            ("multicast_encode_fallback", self.multicast_encode_fallback),
            ("ledger_entries_pruned", self.ledger_entries_pruned),
            ("queue_depth", self.queue_depth as u64),
        ] {
            out.push_str(&format!("\"{name}\":{value},"));
        }
        for (name, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
            let ns = self
                .latency_percentile(p)
                .map_or(0, |d| d.as_nanos() as u64);
            out.push_str(&format!("\"latency_{name}_ns\":{ns},"));
        }
        out.push_str("\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"weight\":{},\"admitted\":{},\"completed\":{},\
                 \"shed\":{}}}",
                json_escape(&t.tenant),
                t.weight,
                t.admitted,
                t.completed,
                t.shed
            ));
        }
        out.push_str("],\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"link\":\"{}\",\"wire_format\":\"{}\",\"busy_ns\":{},\
                 \"wire_bytes\":{},\"bytes_encoded\":{},\"encode_ns\":{},\
                 \"chunks_shipped\":{},\"chunks_retried\":{},\
                 \"sessions_completed\":{},\"sessions_failed\":{},\
                 \"sessions_shed\":{},\"breaker_open\":{},\
                 \"peak_concurrent_shipments\":{}}}",
                json_escape(&l.pair()),
                format_name(l.wire_format),
                l.busy.as_nanos(),
                l.wire_bytes,
                l.bytes_encoded,
                l.encode_ns,
                l.chunks_shipped,
                l.chunks_retried,
                l.sessions_completed,
                l.sessions_failed,
                l.sessions_shed,
                l.breaker_open,
                l.peak_concurrent_shipments
            ));
        }
        out.push_str("]}");
        out
    }
}

/// A queued session; ordering lives in the [`FairQueue`] it sits in.
struct QueuedSession {
    enqueued: Instant,
    /// Resumed sessions are the operator's recovery probes: they bypass
    /// breaker-feedback shedding the way `resume` bypasses `try_admit`.
    resumed: bool,
    request: ExchangeRequest,
    /// Present for resumed sessions: the plan the failed run executed,
    /// replayed without probing or re-planning.
    plan: Option<Arc<CachedPlan>>,
    shared: Arc<SessionShared>,
}

struct QueueState {
    fair: FairQueue<QueuedSession>,
    /// Parked pipelined sessions with fresh batch results to service.
    /// Lives *inside* the queue lock so a completion can never slip
    /// between a worker's emptiness check and its condvar wait.
    runnable: VecDeque<SessionId>,
    /// Admitted 1→N publish groups, FIFO. A group occupies one worker
    /// end to end (its paced waits are volunteered to the engine), so
    /// it rides its own lane instead of the per-tenant fair queue.
    publish: VecDeque<PublishJob>,
    open: bool,
}

/// An admitted publish group waiting for (or held by) a worker: the
/// request plus the per-subscriber session cells created at admission.
struct PublishJob {
    enqueued: Instant,
    request: PublishRequest,
    /// One session per subscriber, index-aligned with
    /// `request.subscribers`.
    shareds: Vec<Arc<SessionShared>>,
    /// The group's trace span; every lane's root span is a sibling, and
    /// the span closes when the last lane settles.
    group_span: SpanId,
}

/// One not-yet-submitted operator batch of a pipelined session, encoded
/// lazily at submission so frame `k+1` is produced while frame `k` is on
/// the wire.
struct PendingBatch {
    /// Ledger shipment sequence: port order × batch index, deterministic
    /// across failure and resume.
    seq: u64,
    label: String,
    feed: Feed,
}

/// Shipping tallies folded into [`SessionMetrics`] at settlement — one
/// shape for both the blocking shipper's stats and the pipelined path's
/// per-batch accumulation.
#[derive(Debug, Clone, Copy, Default)]
struct ShipRollup {
    wire_bytes: u64,
    bytes_encoded: u64,
    encode_ns: u64,
    messages_serialized: u64,
    retry_backoff: Duration,
    chunks_shipped: u64,
    chunks_resumed: u64,
    chunks_deduped: u64,
    chunks_retried: u64,
    link_gave_up: bool,
}

/// The shipping window of a pipelined session: exactly the state the
/// pump needs to keep frames flowing. Split from [`PipelinedSession`]
/// so frames can ship *during* the source phase, while the session's
/// request and plan are still borrowed by the executor.
struct ShipWindow {
    shared: Arc<SessionShared>,
    slot: Arc<LinkSlot>,
    wire_format: WireFormat,
    exec_span: SpanId,
    /// Batches not yet handed to the engine, in shipment-seq order.
    pending: VecDeque<PendingBatch>,
    /// `seq → producing port` for every batch of the session.
    port_of: HashMap<u64, PortRef>,
    /// Completed batch results, deposited by engine callbacks; shared so
    /// a result can land while a worker holds the session out of the
    /// map.
    inbox: Arc<Mutex<Vec<BatchResult>>>,
    /// Retry budget shared by every batch of the session.
    budget: Arc<AtomicI64>,
    inflight: usize,
    /// Next shipment seq to assign: cross ports in first-consumer
    /// order × batch index, deterministic across runs and resumes.
    next_seq: u64,
    rollup: ShipRollup,
    /// First failure (diagnostic, link_gave_up); stops the pump, the
    /// session settles once in-flight batches drain.
    failure: Option<String>,
    /// Reused encode buffer, as on the blocking path.
    encode_buf: Vec<u8>,
}

/// A session parked mid-exchange on the pipelined path: its source phase
/// ran (or still runs), its batches flow through the shipping engine,
/// and whichever worker picks it off the runnable queue decodes and
/// stages what landed. No thread blocks on it — the struct *is* the
/// session's resumable state machine.
struct PipelinedSession {
    shared: Arc<SessionShared>,
    enqueued: Instant,
    request: ExchangeRequest,
    plan: Arc<CachedPlan>,
    plan_shape: Option<u64>,
    slot: Arc<LinkSlot>,
    wire_format: WireFormat,
    feed_route: String,
    metrics: SessionMetrics,
    /// Source-phase outcome, growing ship/stage tallies as batches land.
    outcome: ExecOutcome,
    target: Database,
    exec_span: SpanId,
    exec_started: Instant,
    /// The pumpable shipping state (pending batches, in-flight count,
    /// tallies, failure flag).
    window: ShipWindow,
    /// Decoded batches that arrived ahead of the staging cursor.
    decoded: BTreeMap<u64, Feed>,
    /// Next shipment seq to stage — batches apply in order even when
    /// the wire completes them out of order.
    next_stage_seq: u64,
    /// `Some` when every target node is a source-fed `Write`: batches
    /// stage straight into their table as they land (`port → (node,
    /// table)`), and commit+index is the only finalization left.
    stream_tables: Option<HashMap<PortRef, (usize, String)>>,
    /// Per-write-node staging wall, folded into one op sample each at
    /// finalization.
    write_walls: HashMap<usize, (Instant, Duration)>,
    /// General path: delivered feeds accumulate per port until the
    /// target phase runs over them at finalization.
    delivered: HashMap<PortRef, Feed>,
}

/// A failed session's checkpoint: the original request plus the plan it
/// was executing. A resume replays the plan directly — zero statistics
/// probes, zero optimizer calls — and the shipping ledger replays the
/// already-serialized messages.
struct Resumable {
    request: ExchangeRequest,
    plan: Option<Arc<CachedPlan>>,
}

/// One subscriber lane of a running 1→N publish group: the lane's
/// session cell, its own link/ledger/budget, its shipping cursor over
/// the group's shared frame ring, and its target-side staging state.
/// Everything per-subscriber lives here; the only thing lanes share is
/// the ring of already-encoded frames.
struct PublishLane {
    subscriber: String,
    shared: Arc<SessionShared>,
    slot: Arc<LinkSlot>,
    wire_format: WireFormat,
    feed_route: String,
    metrics: SessionMetrics,
    target: Database,
    /// Completed batch results deposited by engine callbacks.
    inbox: Arc<Mutex<Vec<BatchResult>>>,
    /// Per-lane retry budget — one broken subscriber exhausts only its
    /// own budget.
    budget: Arc<AtomicI64>,
    inflight: usize,
    /// Next shared-frame index this lane submits.
    cursor: usize,
    /// Frames fully absorbed (delivered or failed) — the lag metric the
    /// cap compares against the group's fastest lane.
    completed: usize,
    rollup: ShipRollup,
    failure: Option<String>,
    cancelled: bool,
    /// True when the lane fell `lag_cap` frames behind and was dropped
    /// from the shared ring onto the per-subscriber fallback.
    lagged: bool,
    decoded: BTreeMap<u64, Feed>,
    next_stage_seq: u64,
    outcome: ExecOutcome,
    delivered: HashMap<PortRef, Feed>,
    write_walls: HashMap<usize, (Instant, Duration)>,
    settled: bool,
}

/// The independent two-site request a failed publish lane checkpoints
/// as: `Runtime::resume` re-admits it as an ordinary session replaying
/// the group's k-site plan, so its ledger acks line up and only the
/// frames that never landed cross the wire (re-encoded per subscriber —
/// the fallback ladder's last rung).
fn publish_lane_request(request: &PublishRequest, subscriber: &str) -> ExchangeRequest {
    ExchangeRequest {
        name: format!("{}→{subscriber}", request.name),
        source: request.source.clone(),
        source_frag: request.source_frag.clone(),
        target_frag: request.target_frag.clone(),
        priority: request.priority,
        source_profile: request.source_profile,
        target_profile: request.target_profile,
        deadline: None,
        source_endpoint: request.source_endpoint.clone(),
        target_endpoint: subscriber.to_string(),
        tenant: request.tenant.clone(),
        optimizer: request.optimizer,
        wire_format: request.wire_format,
        base_version: None,
    }
}

/// What one format group's source phase cost: the source counters it
/// added on top of whatever earlier groups already ran.
fn counters_delta(now: Counters, before: Counters) -> Counters {
    Counters {
        rows_read: now.rows_read - before.rows_read,
        rows_out: now.rows_out - before.rows_out,
        rows_written: now.rows_written - before.rows_written,
        comparisons: now.comparisons - before.comparisons,
        hash_probes: now.hash_probes - before.hash_probes,
        index_inserts: now.index_inserts - before.index_inserts,
        bytes_out: now.bytes_out - before.bytes_out,
    }
}

/// Applies a lane's decoded batches in shipment-seq order from its
/// staging cursor — the per-lane analog of [`Inner::stage_ready`].
fn stage_publish_lane(
    lane: &mut PublishLane,
    stream_tables: Option<&HashMap<PortRef, (usize, String)>>,
    port_of: &HashMap<u64, PortRef>,
) -> std::result::Result<(), String> {
    while let Some(feed) = lane.decoded.remove(&lane.next_stage_seq) {
        let seq = lane.next_stage_seq;
        lane.next_stage_seq += 1;
        let port = *port_of
            .get(&seq)
            .ok_or_else(|| format!("no port for shipment {seq}"))?;
        if let Some(tables) = stream_tables {
            let (node, table) = tables
                .get(&port)
                .cloned()
                .ok_or_else(|| format!("no write table for port {port:?}"))?;
            let start = Instant::now();
            lane.outcome.rows_loaded += feed.len() as u64;
            lane.target
                .load_staged(&table, feed)
                .map_err(|e| e.to_string())?;
            let wall = start.elapsed();
            lane.outcome.times.loading += wall;
            let slot = lane
                .write_walls
                .entry(node)
                .or_insert((start, Duration::ZERO));
            slot.1 += wall;
        } else if let Some(existing) = lane.delivered.get_mut(&port) {
            existing.rows.extend(feed.rows);
        } else {
            lane.delivered.insert(port, feed);
        }
    }
    Ok(())
}

#[derive(Default)]
struct Aggregate {
    admitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    resumed: u64,
    planning_probes: u64,
    messages_serialized: u64,
    bytes_shipped: u64,
    bytes_encoded: u64,
    encode_ns: u64,
    chunks_shipped: u64,
    chunks_resumed: u64,
    chunks_deduped: u64,
    chunks_retried: u64,
    delta_patch_bytes: u64,
    delta_patches_applied: u64,
    delta_full_chosen: u64,
    delta_full_fallbacks: u64,
    delta_chain_composed: u64,
    fanout_subscribers: u64,
    multicast_encode_shared: u64,
    multicast_encode_fallback: u64,
    shed_expired: u64,
    shed_deadline: u64,
    shed_breaker: u64,
    resumables_evicted: u64,
    /// Completed-session latencies, windowed to [`LATENCY_WINDOW`] so a
    /// soak of millions of sessions cannot grow this unboundedly.
    latencies: VecDeque<Duration>,
    /// Source-side engine counters, merged across finished sessions.
    source_counters: Counters,
    /// Target-side engine counters, merged across finished sessions.
    target_counters: Counters,
}

/// Most recent completed-session latencies retained for
/// `RuntimeStats::latencies` (the histogram keeps the full
/// distribution; this raw window is for tests and tail inspection).
const LATENCY_WINDOW: usize = 65_536;

/// Distinct tenants tracked individually; arrivals beyond this fold
/// into one overflow bucket so a tenant-label flood cannot grow the
/// stats map unboundedly.
const MAX_TRACKED_TENANTS: usize = 1024;

/// Overflow bucket label for tenants beyond [`MAX_TRACKED_TENANTS`].
const TENANT_OVERFLOW: &str = "(other)";

#[derive(Debug, Default)]
struct TenantCounters {
    admitted: u64,
    completed: u64,
    shed: u64,
}

struct Inner {
    config: RuntimeConfig,
    schema: SchemaTree,
    registry: LinkRegistry,
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: PlanCache,
    events: Arc<EventLog>,
    ledger: Arc<ReassemblyLedger>,
    /// The event-driven shipping engine: every pipelined batch, and the
    /// parked deadlines of every paced wait, live here instead of on a
    /// blocked worker thread.
    engine: Arc<ShipEngine>,
    /// Parked pipelined sessions, keyed by id. A worker *removes* the
    /// session while servicing it (no double-service), re-inserting it
    /// if batches remain in flight.
    pipelines: Mutex<HashMap<SessionId, PipelinedSession>>,
    /// Pipelined sessions started and not yet settled — workers refuse
    /// to exit at shutdown while any remain.
    pipelines_outstanding: AtomicUsize,
    /// Workers currently executing or servicing a session — the
    /// occupancy gauge's numerator.
    busy_workers: AtomicUsize,
    /// Checkpoints of failed sessions, kept for [`Runtime::resume`]. An
    /// entry is consumed by the resume (the same request cannot be
    /// resumed twice concurrently) and re-deposited if the retry fails
    /// again. Each value carries its deposit stamp; the map is capped
    /// at `config.max_resumables` and evicts the oldest stamp.
    resumables: Mutex<HashMap<SessionId, (u64, Resumable)>>,
    /// Logical clock stamping resumable deposits for oldest-first
    /// eviction.
    resumable_clock: AtomicU64,
    /// Overload estimator feeding deadline shedding and retry hints.
    admission: AdmissionController,
    /// Weighted-fair share weights by tenant label (absent = 1.0).
    tenant_weights: Mutex<HashMap<String, f64>>,
    /// Per-tenant fairness counters (BTreeMap for sorted stats output);
    /// bounded by [`MAX_TRACKED_TENANTS`].
    tenant_stats: Mutex<BTreeMap<String, TenantCounters>>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    agg: Mutex<Aggregate>,
    /// Span sink; its epoch doubles as the runtime's start instant.
    trace: Arc<TraceSink>,
    /// Named metrics (counters, gauges, histograms) with Prometheus
    /// text exposition via [`Runtime::metrics_text`].
    metrics: MetricsRegistry,
    /// Predicted-vs-observed cost accounting; sustained drift evicts
    /// cached plans.
    calibration: CalibrationTracker,
    /// Versioned feed snapshots per route+fragmentation pair: the
    /// source-side log delta sessions diff against. Every successful
    /// session records its target feeds here, advancing the route's
    /// head version.
    snapshots: SnapshotStore,
    /// Pre-registered hot-path histograms (also reachable by name
    /// through `metrics`).
    queue_wait_hist: Arc<Histogram>,
    planning_hist: Arc<Histogram>,
    latency_hist: Arc<Histogram>,
    encode_hist: Arc<Histogram>,
    /// Bounded last-transitions rings, dumped on anomaly.
    flight: Arc<FlightRecorder>,
}

/// A running multi-session exchange runtime. Dropping (or
/// [`shutdown`](Runtime::shutdown)ting) it drains the queue and joins
/// the workers.
pub struct Runtime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// The engine's dedicated driver thread, joined after the workers so
    /// every parked pipeline settles before the engine drains.
    engine_driver: Option<JoinHandle<()>>,
    /// The live introspection listener, when configured.
    introspect: Option<IntrospectServer>,
}

impl Runtime {
    /// Starts the worker pool for exchanges over `schema`.
    ///
    /// # Panics
    /// If `config.workers` is zero.
    pub fn start(schema: SchemaTree, config: RuntimeConfig) -> Runtime {
        assert!(config.workers > 0, "runtime needs at least one worker");
        let metrics = MetricsRegistry::new();
        let queue_wait_hist = metrics.histogram("xdx_queue_wait_ns");
        let planning_hist = metrics.histogram("xdx_planning_ns");
        let latency_hist = metrics.histogram("xdx_session_latency_ns");
        let encode_hist = metrics.histogram("xdx_encode_ns");
        let events = Arc::new(EventLog::with_capacity(config.event_capacity));
        let ledger = Arc::new(ReassemblyLedger::with_capacity(config.ledger_capacity));
        let trace = Arc::new(TraceSink::new(config.tracing, config.trace_capacity));
        let flight = Arc::new(FlightRecorder::new(
            config.flight_recorder,
            DEFAULT_FLIGHT_CAPACITY,
        ));
        if let Some(dir) = config.flight_dump_dir {
            flight.set_dump_dir(Some(std::path::PathBuf::from(dir)));
        }
        let engine = ShipEngine::new(
            Arc::clone(&events),
            Arc::clone(&ledger),
            Arc::clone(&trace),
            Arc::clone(&flight),
        );
        let inner = Arc::new(Inner {
            config,
            schema,
            registry: LinkRegistry::new(
                config.network,
                config.fault_profile,
                config.link_pacing,
                config.breaker_threshold,
                config.breaker_cooldown,
                config.wire_format,
            ),
            queue: Mutex::new(QueueState {
                fair: FairQueue::new(config.aging_interval),
                runnable: VecDeque::new(),
                publish: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            cache: match config.plan_ttl {
                Some(ttl) => PlanCache::with_ttl(ttl),
                None => PlanCache::new(),
            },
            events,
            ledger,
            engine: Arc::clone(&engine),
            pipelines: Mutex::new(HashMap::new()),
            pipelines_outstanding: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            resumables: Mutex::new(HashMap::new()),
            resumable_clock: AtomicU64::new(0),
            admission: AdmissionController::new(),
            tenant_weights: Mutex::new(HashMap::new()),
            tenant_stats: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            agg: Mutex::new(Aggregate::default()),
            trace,
            metrics,
            calibration: CalibrationTracker::new(config.calibration),
            snapshots: SnapshotStore::new(),
            queue_wait_hist,
            planning_hist,
            latency_hist,
            encode_hist,
            flight,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("xdx-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        let engine_driver = std::thread::Builder::new()
            .name("xdx-ship-engine".into())
            .spawn(move || engine.drive_forever())
            .expect("spawn engine driver");
        let introspect = config.introspect_addr.map(|addr| {
            let inner = Arc::clone(&inner);
            IntrospectServer::start(addr, move |path| inner.introspect_reply(path))
                .expect("bind introspection endpoint")
        });
        Runtime {
            inner,
            workers,
            engine_driver: Some(engine_driver),
            introspect,
        }
    }

    /// The bound address of the live introspection endpoint, when
    /// [`RuntimeConfig::with_introspect_addr`] enabled one. With port 0
    /// this is where the ephemeral port shows up.
    pub fn introspect_addr(&self) -> Option<std::net::SocketAddr> {
        self.introspect.as_ref().map(|s| s.addr())
    }

    /// Admits a request. Returns the session handle, or an error when
    /// the queue is full, the request's route has an open circuit
    /// breaker, or the runtime is shutting down.
    pub fn submit(&self, request: ExchangeRequest) -> Result<SessionHandle, SubmitError> {
        let inner = &*self.inner;
        let (slot, created) = inner
            .registry
            .resolve(&request.source_endpoint, &request.target_endpoint);
        if created {
            inner
                .events
                .push(0, NO_SPAN, EventKind::LinkCreated, slot.pair());
        }
        match slot.breaker.try_admit() {
            Ok(None) => {}
            Ok(Some(BreakerTransition::HalfOpened)) => {
                inner.events.push(
                    0,
                    NO_SPAN,
                    EventKind::CircuitHalfOpened,
                    format!("{}: probe admitted", slot.pair()),
                );
            }
            Ok(Some(_)) => unreachable!("try_admit only half-opens"),
            Err(retry_after) => {
                inner.agg.lock().unwrap().rejected += 1;
                inner.events.push(
                    0,
                    NO_SPAN,
                    EventKind::Rejected,
                    format!("{}: circuit open on {}", request.name, slot.pair()),
                );
                return Err(SubmitError::CircuitOpen { retry_after });
            }
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        inner
            .enqueue(request, id, false, None)
            .map_err(|refused| refused.0)
    }

    /// Re-admits a *failed* session under its original id, replaying the
    /// checkpointed plan and the shipping checkpoint: the resume runs
    /// zero statistics probes, serializes zero messages (they were
    /// persisted in the ledger) and re-ships only the chunks that never
    /// landed. The original deadline is lifted: resume is an explicit
    /// operator decision to finish the exchange, made after the deadline
    /// already had its say.
    ///
    /// Resume is the operator's recovery probe, so it intentionally
    /// bypasses the route's circuit breaker.
    pub fn resume(&self, session_id: SessionId) -> Result<SessionHandle, SubmitError> {
        let inner = &*self.inner;
        let (_, Resumable { mut request, plan }) = inner
            .resumables
            .lock()
            .unwrap()
            .remove(&session_id)
            .ok_or(SubmitError::UnknownSession { id: session_id })?;
        request.deadline = None;
        match inner.enqueue(request, session_id, true, plan.clone()) {
            Ok(handle) => {
                inner.agg.lock().unwrap().resumed += 1;
                Ok(handle)
            }
            Err(refused) => {
                // Not admitted: keep the checkpoint resumable.
                let (e, request) = *refused;
                inner.remember_resumable(session_id, Resumable { request, plan });
                Err(e)
            }
        }
    }

    /// Admits a 1→N publish group: one source shipping the same exchange
    /// to every subscriber endpoint. The runtime plans once per distinct
    /// `(shape, wire format)` with the k-site cost model, executes the
    /// source phase once per format, encodes each operator batch once
    /// per format into a shared refcounted frame, and ships those same
    /// bytes over each subscriber's own link lane — per-subscriber
    /// ledger acks, retry budgets, breakers and resume stay fully
    /// independent, and a slow or broken subscriber never stalls the
    /// others (beyond the request's lag cap it is dropped to the
    /// per-subscriber re-encode/full-ship fallback and left resumable).
    ///
    /// Returns one [`SessionHandle`] per subscriber, wrapped in a
    /// [`PublishHandle`]. An empty subscriber list yields an empty
    /// handle without touching the queue.
    pub fn publish(&self, request: PublishRequest) -> Result<PublishHandle, SubmitError> {
        let inner = &*self.inner;
        if request.subscribers.is_empty() {
            return Ok(PublishHandle {
                handles: Vec::new(),
            });
        }
        let mut queue = inner.queue.lock().unwrap();
        if !queue.open {
            return Err(SubmitError::ShutDown);
        }
        let depth = queue.fair.len() + queue.publish.len();
        if depth >= inner.config.max_queue_depth {
            drop(queue);
            inner.agg.lock().unwrap().rejected += 1;
            inner.events.push(
                0,
                NO_SPAN,
                EventKind::Rejected,
                format!("{}: queue full (publish group)", request.name),
            );
            return Err(SubmitError::QueueFull {
                depth: inner.config.max_queue_depth,
                retry_after: inner.admission.retry_after(depth),
            });
        }
        let group_span = inner.trace.allocate_id();
        let fanout = request.subscribers.len();
        let mut shareds = Vec::with_capacity(fanout);
        let mut handles = Vec::with_capacity(fanout);
        for subscriber in &request.subscribers {
            let id = inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            let root_span = inner.trace.allocate_id();
            // Lane roots stitch under the publish group's span: the
            // group span id doubles as the multicast trace id, so one
            // publish produces one tree no matter how many
            // subscribers fan out.
            let shared = SessionShared::new_with_parent(
                id,
                format!("{}→{subscriber}", request.name),
                None,
                root_span,
                group_span,
            );
            inner.events.push(
                id,
                root_span,
                EventKind::Submitted,
                format!(
                    "{}→{subscriber} ({:?}, publish group of {fanout})",
                    request.name, request.priority
                ),
            );
            inner.tenant_entry(&request.lane_tenant(subscriber), |t| t.admitted += 1);
            handles.push(SessionHandle {
                shared: Arc::clone(&shared),
            });
            shareds.push(shared);
        }
        {
            let mut agg = inner.agg.lock().unwrap();
            agg.admitted += fanout as u64;
            agg.fanout_subscribers += fanout as u64;
        }
        queue.publish.push_back(PublishJob {
            enqueued: Instant::now(),
            request,
            shareds,
            group_span,
        });
        drop(queue);
        inner.available.notify_one();
        Ok(PublishHandle { handles })
    }

    /// N→1 consolidation: runs every request as an ordinary session
    /// (concurrently, across the worker pool), then folds each completed
    /// target into one consolidated database with *transactional
    /// per-source staging* — a source's tables stage together and commit
    /// together, so a failing source leaves zero of its rows behind and
    /// concurrent applies never tear. Blocks until every source settled.
    ///
    /// Sources refused at admission (queue full, open breaker, shutdown)
    /// are reported in the outcome rather than failing the whole
    /// consolidation.
    pub fn consolidate(
        &self,
        name: impl Into<String>,
        requests: Vec<ExchangeRequest>,
    ) -> ConsolidationOutcome {
        let name = name.into();
        let mut pending: Vec<(String, std::result::Result<SessionHandle, SubmitError>)> = requests
            .into_iter()
            .map(|request| {
                let source = request.name.clone();
                (source, self.submit(request))
            })
            .collect();
        let mut target = Database::new(format!("{name}-consolidated"));
        let mut outcome = ConsolidationOutcome {
            target: Database::default(),
            applied: 0,
            failed: 0,
            results: Vec::with_capacity(pending.len()),
            index_error: None,
        };
        for (source, admitted) in pending.drain(..) {
            let result = match admitted {
                Ok(handle) => handle.wait(),
                Err(e) => {
                    outcome.failed += 1;
                    outcome
                        .results
                        .push((source, Err(format!("not admitted: {e}"))));
                    continue;
                }
            };
            match (result.state, &result.target) {
                (SessionState::Done, Some(db)) => {
                    // Stage the whole source, then commit it as one
                    // transaction: either every table of this source
                    // lands, or none do.
                    let mut staged = Ok(());
                    for (table, feed) in db_tables(db) {
                        if let Err(e) = target.load_staged(&table, feed) {
                            staged = Err(e.to_string());
                            break;
                        }
                    }
                    match staged {
                        Ok(()) => {
                            target.commit_staged();
                            outcome.applied += 1;
                            outcome.results.push((source, Ok(result.metrics)));
                        }
                        Err(e) => {
                            target.rollback_staged();
                            outcome.failed += 1;
                            outcome
                                .results
                                .push((source, Err(format!("staging failed: {e}"))));
                        }
                    }
                }
                _ => {
                    outcome.failed += 1;
                    let diag = result
                        .diagnostic
                        .unwrap_or_else(|| format!("{:?}", result.state));
                    outcome.results.push((source, Err(diag)));
                }
            }
        }
        if outcome.applied > 0 {
            if let Err(e) = target.build_all_key_indexes() {
                outcome.index_error = Some(e.to_string());
            }
        }
        outcome.target = target;
        outcome
    }

    /// Sets a tenant's weighted-fair share (default 1.0, clamped above
    /// zero). Weights are relative: a backlogged tenant with weight 2
    /// drains twice as often as one with weight 1. Applies from the
    /// tenant's next admitted session.
    pub fn set_tenant_weight(&self, tenant: &str, weight: f64) {
        self.inner
            .tenant_weights
            .lock()
            .unwrap()
            .insert(tenant.to_string(), weight.max(0.01));
    }

    /// Swaps the fault model of *every* link — live and future — at
    /// runtime: the fleet-wide "the network was repaired / degraded"
    /// knob. In-flight chunk transmissions finish under the old model;
    /// subsequent ones use the new one. For a single pair, use
    /// [`Runtime::set_link_fault_profile`].
    pub fn set_fault_profile(&self, profile: FaultProfile) {
        self.inner.registry.set_fault_profile_all(profile);
    }

    /// Swaps the fault model of one `(source, target)` pair's link
    /// (created if it does not exist yet), leaving every other link
    /// untouched.
    pub fn set_link_fault_profile(&self, source: &str, target: &str, profile: FaultProfile) {
        self.inner
            .registry
            .set_fault_profile(source, target, profile);
    }

    /// Declares one endpoint's preferred wire format and re-negotiates
    /// every live link touching it: a pair ships columnar only when both
    /// its endpoints prefer columnar, and falls back to XML text — the
    /// format every endpoint speaks — on any disagreement. In-flight
    /// shipments finish in their starting format (receivers sniff each
    /// frame); sessions planned afterwards use the new negotiation.
    pub fn set_endpoint_format(&self, endpoint: &str, format: WireFormat) {
        self.inner.registry.set_endpoint_format(endpoint, format);
    }

    /// A snapshot of the aggregate statistics so far, including the
    /// per-link rollups.
    pub fn stats(&self) -> RuntimeStats {
        self.inner.stats()
    }

    /// A copy of the structured event log so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.snapshot()
    }

    /// The surviving event window as JSONL, one object per line,
    /// joinable against [`Runtime::trace_jsonl`] by span/session id.
    pub fn events_jsonl(&self) -> String {
        self.inner.events.to_jsonl()
    }

    /// The surviving trace spans as chrome://tracing JSONL (one
    /// complete "X" event per line; load in a tracing viewer or join
    /// offline by the `args.span`/`args.parent` ids).
    pub fn trace_jsonl(&self) -> String {
        self.inner.trace.to_jsonl()
    }

    /// Every registered metric — counters, gauges, and the per-operator
    /// / per-link histograms — as Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        self.inner.refresh_metrics();
        self.inner.metrics.render()
    }

    /// Predicted-vs-observed cost-model calibration so far: per-operator
    /// ns-per-unit ratios with drift scores, plus per-format
    /// communication byte ratios.
    pub fn calibration_report(&self) -> CalibrationReport {
        self.inner.calibration.report()
    }

    /// The flight recorder's retained transition rings as JSONL, merged
    /// in time order — what the engine, timers, breakers and shedder
    /// were doing most recently.
    pub fn flight_jsonl(&self) -> String {
        self.inner.flight.to_jsonl()
    }

    /// Anomalies the flight recorder registered (session failures,
    /// breaker opens, shed-rate spikes, stall-watchdog fires) and the
    /// dump files it wrote.
    pub fn flight_anomalies(&self) -> (u64, u64) {
        (self.inner.flight.anomalies(), self.inner.flight.dumps())
    }

    /// Critical-path extraction over the finished span tree: for each
    /// session, where its wall time went across the named stages
    /// (queue → plan → compute → encode → wire → decode → stage →
    /// settle), plus per-route dominant-stage rollups.
    pub fn critical_path(&self) -> xdx_trace::CriticalPathReport {
        xdx_trace::critical_path(&self.inner.trace.snapshot())
    }

    /// Head version of the snapshot log for an endpoint + fragmentation
    /// pair — the feed version a target that just completed a session
    /// on this route holds, i.e. the `with_base_version` a follow-up
    /// delta session should declare. 0 means the route never completed
    /// a session.
    pub fn feed_version(
        &self,
        source_endpoint: &str,
        target_endpoint: &str,
        source_frag: &str,
        target_frag: &str,
    ) -> u64 {
        self.inner.snapshots.head(&route_key(
            source_endpoint,
            target_endpoint,
            source_frag,
            target_frag,
        ))
    }

    /// Stops admitting, drains the queue, joins the workers and returns
    /// the final statistics.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.close_and_join();
        self.inner.stats()
    }

    fn close_and_join(&mut self) {
        self.inner.queue.lock().unwrap().open = false;
        self.inner.available.notify_all();
        // Workers drain the fair queue *and* settle every parked
        // pipeline before exiting, so by the time they are joined the
        // engine holds no tasks and its driver exits on shutdown.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.inner.engine.shutdown();
        if let Some(driver) = self.engine_driver.take() {
            let _ = driver.join();
        }
        if let Some(mut server) = self.introspect.take() {
            server.shutdown();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// What a worker picked up: a fresh session off the fair queue, or a
/// parked pipelined session with batch results to service. Runnable
/// work drains first — finishing in-flight exchanges beats starting new
/// ones, and it is what bounds the pipelines map.
enum WorkItem {
    Job(Box<QueuedSession>),
    Service(SessionId),
    Publish(Box<PublishJob>),
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let work = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(sid) = queue.runnable.pop_front() {
                    break Some(WorkItem::Service(sid));
                }
                if let Some(job) = queue.publish.pop_front() {
                    break Some(WorkItem::Publish(Box::new(job)));
                }
                // New work only while the parked-session pool has room:
                // beyond the cap, arrivals wait in the admission queue,
                // so overload stays a visible backlog (sheddable when a
                // breaker opens) instead of unbounded in-flight state.
                let session_cap = inner.config.workers * inner.config.pipeline_sessions_per_worker;
                if inner.pipelines_outstanding.load(Ordering::SeqCst) < session_cap {
                    if let Some(popped) = queue.fair.pop() {
                        break Some(WorkItem::Job(Box::new(popped.item)));
                    }
                }
                if !queue.open && inner.pipelines_outstanding.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                queue = inner.available.wait(queue).unwrap();
            }
        };
        let Some(work) = work else { return };
        inner.busy_workers.fetch_add(1, Ordering::Relaxed);
        match work {
            WorkItem::Job(job) => {
                inner.admission.record_dequeue();
                inner.run_session(inner, *job);
            }
            WorkItem::Service(sid) => inner.service_pipeline(inner, sid),
            WorkItem::Publish(job) => {
                inner.admission.record_dequeue();
                inner.run_publish(*job);
            }
        }
        inner.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Inner {
    /// Queues `request` as session `id` (fresh or resumed), or hands the
    /// request back with the refusal (boxed: the request embeds a whole
    /// source database, too big for an inline `Err`).
    fn enqueue(
        &self,
        request: ExchangeRequest,
        id: SessionId,
        resumed: bool,
        plan: Option<Arc<CachedPlan>>,
    ) -> Result<SessionHandle, Box<(SubmitError, ExchangeRequest)>> {
        let tenant = request.tenant_label();
        let mut queue = self.queue.lock().unwrap();
        if !queue.open {
            return Err(Box::new((SubmitError::ShutDown, request)));
        }
        let depth = queue.fair.len();
        if depth >= self.config.max_queue_depth {
            drop(queue);
            self.agg.lock().unwrap().rejected += 1;
            self.events.push(
                id,
                NO_SPAN,
                EventKind::Rejected,
                format!("{}: queue full", request.name),
            );
            return Err(Box::new((
                SubmitError::QueueFull {
                    depth: self.config.max_queue_depth,
                    retry_after: self.admission.retry_after(depth),
                },
                request,
            )));
        }
        // Deadline shedding at admission: when the estimator already
        // knows the turnaround cannot beat the deadline, refuse now —
        // the session would only be shed at dequeue after occupying a
        // queue slot. A cold estimator returns None and we admit
        // optimistically. Resumed sessions carry no deadline, so they
        // are never shed here.
        if let Some(deadline) = request.deadline {
            let estimated = self.admission.estimated_turnaround(
                depth,
                self.config.workers,
                self.calibration.global_ns_per_unit(),
            );
            if let Some(estimated) = estimated.filter(|est| *est > deadline) {
                drop(queue);
                {
                    let mut agg = self.agg.lock().unwrap();
                    agg.rejected += 1;
                    agg.shed_deadline += 1;
                }
                self.tenant_entry(&tenant, |t| t.shed += 1);
                self.flight.shed(|| {
                    format!(
                        "{}: deadline {deadline:?} unattainable (estimated {estimated:?})",
                        request.name
                    )
                });
                self.events.push(
                    id,
                    NO_SPAN,
                    EventKind::Shed,
                    format!(
                        "{}: deadline {deadline:?} unattainable (estimated {estimated:?})",
                        request.name
                    ),
                );
                return Err(Box::new((
                    SubmitError::DeadlineUnattainable {
                        deadline,
                        estimated,
                        retry_after: self.admission.retry_after(depth),
                    },
                    request,
                )));
            }
        }
        // The root span is allocated at admission so every child span
        // and correlated event can point at it; it is recorded (with
        // its true duration) when the session reaches a terminal state.
        let root_span = self.trace.allocate_id();
        let shared = SessionShared::new(id, request.name.clone(), request.deadline, root_span);
        let kind = if resumed {
            EventKind::Resumed
        } else {
            EventKind::Submitted
        };
        self.events.push(
            id,
            root_span,
            kind,
            format!("{} ({:?})", request.name, request.priority),
        );
        self.agg.lock().unwrap().admitted += 1;
        self.tenant_entry(&tenant, |t| t.admitted += 1);
        let weight = self.tenant_weight(&tenant);
        let now = Instant::now();
        queue.fair.push(
            &tenant,
            weight,
            request.priority,
            self.next_seq.fetch_add(1, Ordering::Relaxed),
            now,
            QueuedSession {
                enqueued: now,
                resumed,
                request,
                plan,
                shared: Arc::clone(&shared),
            },
        );
        drop(queue);
        self.available.notify_one();
        Ok(SessionHandle { shared })
    }

    /// The weighted-fair share weight of `tenant` (1.0 unless set).
    fn tenant_weight(&self, tenant: &str) -> f64 {
        self.tenant_weights
            .lock()
            .unwrap()
            .get(tenant)
            .copied()
            .unwrap_or(1.0)
    }

    /// Applies `update` to `tenant`'s fairness counters, folding
    /// arrivals beyond [`MAX_TRACKED_TENANTS`] into the overflow bucket.
    fn tenant_entry(&self, tenant: &str, update: impl FnOnce(&mut TenantCounters)) {
        let mut map = self.tenant_stats.lock().unwrap();
        let key = if map.contains_key(tenant) || map.len() < MAX_TRACKED_TENANTS {
            tenant
        } else {
            TENANT_OVERFLOW
        };
        update(map.entry(key.to_string()).or_default());
    }

    /// Deposits a failed session's checkpoint, evicting the oldest
    /// deposits beyond `max_resumables` — each checkpoint holds a full
    /// source database, so an unbounded map would defeat the soak's
    /// flat-RSS guarantee.
    fn remember_resumable(&self, id: SessionId, resumable: Resumable) {
        let mut evicted = 0u64;
        {
            let mut map = self.resumables.lock().unwrap();
            let stamp = self.resumable_clock.fetch_add(1, Ordering::Relaxed);
            map.insert(id, (stamp, resumable));
            while map.len() > self.config.max_resumables.max(1) {
                let oldest = map
                    .iter()
                    .min_by_key(|(_, (s, _))| *s)
                    .map(|(k, _)| *k)
                    .expect("non-empty over-cap map has an oldest entry");
                map.remove(&oldest);
                evicted += 1;
                self.events.push(
                    oldest,
                    NO_SPAN,
                    EventKind::Shed,
                    "resumable checkpoint evicted (cap reached)",
                );
            }
        }
        if evicted > 0 {
            self.agg.lock().unwrap().resumables_evicted += evicted;
        }
    }

    /// Breaker feedback into the queue: when a route's breaker opens,
    /// its queued (non-resumed) sessions would only burn planning
    /// probes and retry budgets to learn what the breaker already
    /// knows — drain and shed them now. Resumed sessions stay queued:
    /// resume is the operator's probe and intentionally bypasses the
    /// breaker.
    fn shed_queued_route(&self, slot: &LinkSlot) {
        let pair = slot.pair();
        let drained = {
            let mut queue = self.queue.lock().unwrap();
            queue.fair.drain_matching(|qs: &QueuedSession| {
                !qs.resumed
                    && qs.request.source_endpoint == slot.source()
                    && qs.request.target_endpoint == slot.target()
            })
        };
        if drained.is_empty() {
            return;
        }
        let retry = slot
            .breaker
            .cooldown_remaining()
            .unwrap_or(self.config.breaker_cooldown);
        for qs in drained {
            let QueuedSession {
                enqueued,
                request,
                plan,
                shared,
                ..
            } = qs;
            let tenant = request.tenant_label();
            let metrics = SessionMetrics {
                queue_wait: enqueued.elapsed(),
                route: pair.clone(),
                tenant: tenant.clone(),
                ..SessionMetrics::default()
            };
            slot.counters.sessions_shed.fetch_add(1, Ordering::Relaxed);
            self.agg.lock().unwrap().shed_breaker += 1;
            self.tenant_entry(&tenant, |t| t.shed += 1);
            self.flight.shed(|| {
                format!(
                    "{}: drained from queue, circuit open on {pair}",
                    shared.name
                )
            });
            self.events.push(
                shared.id,
                shared.root_span,
                EventKind::Shed,
                format!(
                    "{}: drained from queue, circuit open on {pair}, retry in {retry:?}",
                    shared.name
                ),
            );
            self.remember_resumable(shared.id, Resumable { request, plan });
            self.finish(
                &shared,
                enqueued,
                SessionState::Failed,
                metrics,
                None,
                Some(format!("shed: circuit open on {pair}")),
            );
        }
    }

    fn stats(&self) -> RuntimeStats {
        // Lock order is queue → agg (enqueue holds the queue lock while
        // touching aggregates), so the queue depth and tenant tables are
        // read *before* taking the aggregate lock.
        let queue_depth = self.queue.lock().unwrap().fair.len();
        let tenants: Vec<TenantStats> = {
            let stats = self.tenant_stats.lock().unwrap();
            let weights = self.tenant_weights.lock().unwrap();
            stats
                .iter()
                .map(|(tenant, c)| TenantStats {
                    tenant: tenant.clone(),
                    weight: weights.get(tenant).copied().unwrap_or(1.0),
                    admitted: c.admitted,
                    completed: c.completed,
                    shed: c.shed,
                })
                .collect()
        };
        let agg = self.agg.lock().unwrap();
        RuntimeStats {
            admitted: agg.admitted,
            rejected: agg.rejected,
            completed: agg.completed,
            failed: agg.failed,
            cancelled: agg.cancelled,
            resumed: agg.resumed,
            sessions_shed_expired: agg.shed_expired,
            sessions_shed_deadline: agg.shed_deadline,
            sessions_shed_breaker: agg.shed_breaker,
            resumables_evicted: agg.resumables_evicted,
            ledger_buffers_shed: self.ledger.buffers_shed(),
            queue_depth,
            tenants,
            plan_cache_hits: self.cache.hits(),
            plan_cache_misses: self.cache.misses(),
            plan_cache_expired: self.cache.expired(),
            plan_cache_stats_evicted: self.cache.stats_evicted(),
            plan_cache_drift_evicted: self.cache.drift_evicted(),
            planning_probes: agg.planning_probes,
            messages_serialized: agg.messages_serialized,
            bytes_shipped: agg.bytes_shipped,
            bytes_encoded: agg.bytes_encoded,
            encode_ns: agg.encode_ns,
            chunks_shipped: agg.chunks_shipped,
            chunks_resumed: agg.chunks_resumed,
            chunks_deduped: agg.chunks_deduped,
            chunks_retried: agg.chunks_retried,
            links: self.registry.snapshot(),
            peak_concurrent_shipments: self.registry.peak_concurrent_shipments(),
            latencies: agg.latencies.iter().copied().collect(),
            latency_histogram: self.latency_hist.snapshot(),
            dropped_events: self.events.dropped(),
            dropped_spans: self.trace.dropped(),
            delta_patch_bytes: agg.delta_patch_bytes,
            delta_patches_applied: agg.delta_patches_applied,
            delta_full_chosen: agg.delta_full_chosen,
            delta_full_fallbacks: agg.delta_full_fallbacks,
            delta_chain_composed: agg.delta_chain_composed,
            fanout_subscribers: agg.fanout_subscribers,
            multicast_encode_shared: agg.multicast_encode_shared,
            multicast_encode_fallback: agg.multicast_encode_fallback,
            ledger_entries_pruned: self.ledger.entries_pruned(),
        }
    }

    /// Re-emits every aggregate counter, per-link rollup and engine
    /// counter through the metrics registry, so one render carries the
    /// runtime's full state. Histograms are recorded live on the hot
    /// path; only the monotone counters and gauges are refreshed here.
    fn refresh_metrics(&self) {
        let stats = self.stats();
        let m = &self.metrics;
        for (name, value) in [
            ("xdx_sessions_admitted_total", stats.admitted),
            ("xdx_sessions_rejected_total", stats.rejected),
            ("xdx_sessions_completed_total", stats.completed),
            ("xdx_sessions_failed_total", stats.failed),
            ("xdx_sessions_cancelled_total", stats.cancelled),
            ("xdx_sessions_resumed_total", stats.resumed),
            (
                "xdx_sessions_shed_expired_total",
                stats.sessions_shed_expired,
            ),
            (
                "xdx_sessions_shed_deadline_total",
                stats.sessions_shed_deadline,
            ),
            (
                "xdx_sessions_shed_breaker_total",
                stats.sessions_shed_breaker,
            ),
            ("xdx_resumables_evicted_total", stats.resumables_evicted),
            ("xdx_ledger_buffers_shed_total", stats.ledger_buffers_shed),
            ("xdx_plan_cache_hits_total", stats.plan_cache_hits),
            ("xdx_plan_cache_misses_total", stats.plan_cache_misses),
            ("xdx_plan_cache_expired_total", stats.plan_cache_expired),
            (
                "xdx_plan_cache_stats_evicted_total",
                stats.plan_cache_stats_evicted,
            ),
            (
                "xdx_plan_cache_drift_evicted_total",
                stats.plan_cache_drift_evicted,
            ),
            ("xdx_planning_probes_total", stats.planning_probes),
            ("xdx_messages_serialized_total", stats.messages_serialized),
            ("xdx_bytes_shipped_total", stats.bytes_shipped),
            ("xdx_bytes_encoded_total", stats.bytes_encoded),
            ("xdx_encode_ns_total", stats.encode_ns),
            ("xdx_chunks_shipped_total", stats.chunks_shipped),
            ("xdx_chunks_resumed_total", stats.chunks_resumed),
            ("xdx_chunks_deduped_total", stats.chunks_deduped),
            ("xdx_chunks_retried_total", stats.chunks_retried),
            ("xdx_events_dropped_total", stats.dropped_events),
            ("xdx_spans_dropped_total", stats.dropped_spans),
            ("xdx_delta_patch_bytes_total", stats.delta_patch_bytes),
            (
                "xdx_delta_patches_applied_total",
                stats.delta_patches_applied,
            ),
            ("xdx_delta_full_chosen_total", stats.delta_full_chosen),
            ("xdx_delta_full_fallbacks_total", stats.delta_full_fallbacks),
            ("xdx_delta_chain_composed_total", stats.delta_chain_composed),
            ("xdx_fanout_subscribers", stats.fanout_subscribers),
            ("xdx_multicast_encode_shared", stats.multicast_encode_shared),
            (
                "xdx_multicast_encode_fallback",
                stats.multicast_encode_fallback,
            ),
            (
                "xdx_ledger_entries_pruned_total",
                stats.ledger_entries_pruned,
            ),
        ] {
            m.counter(name).set(value);
        }
        m.gauge("xdx_queue_depth").set(stats.queue_depth as f64);
        // Batches in flight through the shipping engine right now — how
        // deep the pipeline actually runs.
        m.gauge("xdx_pipeline_depth")
            .set(self.engine.inflight() as f64);
        // Fraction of the worker pool currently executing or servicing a
        // session (the rest are waiting on the queue).
        m.gauge("xdx_worker_occupancy").set(
            self.busy_workers.load(Ordering::Relaxed) as f64 / self.config.workers.max(1) as f64,
        );
        // Per-tenant fairness rollups, labelled by tenant.
        for t in &stats.tenants {
            let label = |base: &str| format!("{base}{{tenant=\"{}\"}}", t.tenant);
            m.counter(&label("xdx_tenant_admitted_total"))
                .set(t.admitted);
            m.counter(&label("xdx_tenant_completed_total"))
                .set(t.completed);
            m.counter(&label("xdx_tenant_shed_total")).set(t.shed);
            m.gauge(&label("xdx_tenant_weight")).set(t.weight);
        }
        m.gauge("xdx_peak_concurrent_shipments")
            .set(stats.peak_concurrent_shipments as f64);
        // The relational engines' own counters, re-emitted per side.
        {
            let agg = self.agg.lock().unwrap();
            for (side, c) in [
                ("source", agg.source_counters),
                ("target", agg.target_counters),
            ] {
                for (name, value) in [
                    ("rows_read", c.rows_read),
                    ("rows_out", c.rows_out),
                    ("rows_written", c.rows_written),
                    ("comparisons", c.comparisons),
                    ("hash_probes", c.hash_probes),
                    ("index_inserts", c.index_inserts),
                    ("bytes_out", c.bytes_out),
                ] {
                    m.counter(&format!("xdx_db_{name}_total{{side=\"{side}\"}}"))
                        .set(value);
                }
            }
        }
        // Per-link rollups: counters plus a utilization gauge (simulated
        // busy time over runtime uptime) and the breaker state.
        let uptime = self.trace.epoch().elapsed().as_secs_f64();
        for link in &stats.links {
            let pair = link.pair();
            let label = |base: &str| format!("{base}{{link=\"{pair}\"}}");
            m.counter(&label("xdx_link_wire_bytes_total"))
                .set(link.wire_bytes);
            m.counter(&label("xdx_link_bytes_encoded_total"))
                .set(link.bytes_encoded);
            m.counter(&label("xdx_link_encode_ns_total"))
                .set(link.encode_ns);
            m.counter(&label("xdx_link_chunks_shipped_total"))
                .set(link.chunks_shipped);
            m.counter(&label("xdx_link_chunks_retried_total"))
                .set(link.chunks_retried);
            m.counter(&label("xdx_link_sessions_completed_total"))
                .set(link.sessions_completed);
            m.counter(&label("xdx_link_sessions_failed_total"))
                .set(link.sessions_failed);
            m.counter(&label("xdx_link_sessions_shed_total"))
                .set(link.sessions_shed);
            m.counter(&label("xdx_link_busy_ns_total"))
                .set(link.busy.as_nanos() as u64);
            m.gauge(&label("xdx_link_utilization"))
                .set(if uptime > 0.0 {
                    link.busy.as_secs_f64() / uptime
                } else {
                    0.0
                });
            m.gauge(&label("xdx_link_breaker_open"))
                .set(if link.breaker_open { 1.0 } else { 0.0 });
            m.gauge(&label("xdx_link_peak_concurrent_shipments"))
                .set(link.peak_concurrent_shipments as f64);
            // Info-style gauge: which wire format the pair negotiated.
            m.gauge(&format!(
                "xdx_link_wire_format{{link=\"{pair}\",format=\"{}\"}}",
                format_name(link.wire_format)
            ))
            .set(1.0);
        }
        // Observability self-accounting: ring drops, flight-recorder
        // anomalies/dumps, and the engine stall watchdog. The watchdog
        // rides the metrics refresh (every scrape / stats call checks
        // it), so a wedged engine surfaces without a dedicated thread.
        m.gauge("xdx_dropped_spans").set(stats.dropped_spans as f64);
        m.gauge("xdx_dropped_events")
            .set(stats.dropped_events as f64);
        m.counter("xdx_flight_anomalies_total")
            .set(self.flight.anomalies());
        m.counter("xdx_flight_dumps_total").set(self.flight.dumps());
        let stalled = self.engine.stall_check(self.config.stall_threshold);
        m.gauge("xdx_engine_stalled")
            .set(if stalled.is_some() { 1.0 } else { 0.0 });
        if let Some(overdue) = stalled {
            self.flight.anomaly(&format!(
                "engine stall: next deadline overdue by {overdue:?}"
            ));
        }
    }

    /// Routes one introspection-endpoint request. Every surface the
    /// programmatic accessors expose is served here read-only; the
    /// handler runs on the listener thread, so it takes the same locks
    /// any other observer thread would.
    fn introspect_reply(&self, path: &str) -> IntrospectReply {
        let ok = |content_type: &'static str, body: String| IntrospectReply {
            status: 200,
            content_type,
            body,
        };
        match path {
            "/" => ok(
                "text/plain",
                "/healthz\n/metrics\n/stats.json\n/traces\n/critical-path\n/calibration\n/flight\n"
                    .into(),
            ),
            "/metrics" => {
                self.refresh_metrics();
                ok("text/plain; version=0.0.4", self.metrics.render())
            }
            "/healthz" => {
                let (healthy, body) = self.health_json();
                IntrospectReply {
                    status: if healthy { 200 } else { 503 },
                    content_type: "application/json",
                    body,
                }
            }
            "/stats.json" => ok("application/json", self.stats().to_json()),
            "/traces" => ok("application/x-ndjson", self.trace.to_jsonl()),
            "/critical-path" => ok(
                "application/json",
                xdx_trace::critical_path(&self.trace.snapshot()).to_json(),
            ),
            "/calibration" => ok("application/json", self.calibration.report().to_json()),
            "/flight" => ok("application/x-ndjson", self.flight.to_jsonl()),
            _ => IntrospectReply {
                status: 404,
                content_type: "text/plain",
                body: "not found\n".into(),
            },
        }
    }

    /// Liveness verdict plus the evidence: the stall watchdog's reading,
    /// open breakers, queue depth and the flight recorder's anomaly
    /// tally. Unhealthy (HTTP 503) means the engine sits on an overdue
    /// deadline nobody is driving — sheds and breaker opens are load
    /// conditions, reported but not fatal.
    fn health_json(&self) -> (bool, String) {
        use crate::events::json_escape;
        let stalled = self.engine.stall_check(self.config.stall_threshold);
        let open_breakers: Vec<String> = self
            .registry
            .snapshot()
            .iter()
            .filter(|l| l.breaker_open)
            .map(|l| l.pair())
            .collect();
        let queue_depth = self.queue.lock().unwrap().fair.len();
        let healthy = stalled.is_none();
        let body = format!(
            "{{\"healthy\":{healthy},\"stalled_overdue_ms\":{},\"open_breakers\":[{}],\
             \"queue_depth\":{queue_depth},\"flight_anomalies\":{},\"flight_dumps\":{}}}",
            stalled.map_or(0, |d| d.as_millis()),
            open_breakers
                .iter()
                .map(|p| format!("\"{}\"", json_escape(p)))
                .collect::<Vec<_>>()
                .join(","),
            self.flight.anomalies(),
            self.flight.dumps()
        );
        (healthy, body)
    }

    /// Runs one session on the calling worker thread: start to finish on
    /// the blocking path, start to *park* on the pipelined path (`arc`
    /// is this same `Inner`, threaded through for the engine callbacks a
    /// parked session leaves behind).
    fn run_session(&self, arc: &Arc<Inner>, job: QueuedSession) {
        let QueuedSession {
            enqueued,
            resumed,
            mut request,
            plan: stored_plan,
            shared,
        } = job;
        let tenant = request.tenant_label();
        // Resolve the route's link up front: its negotiated wire format
        // feeds the cost model (and the plan-cache key), so placement
        // decisions see the bytes the link will actually carry.
        let (slot, created) = self
            .registry
            .resolve(&request.source_endpoint, &request.target_endpoint);
        if created {
            self.events.push(
                shared.id,
                shared.root_span,
                EventKind::LinkCreated,
                slot.pair(),
            );
        }
        let wire_format = request.wire_format.unwrap_or_else(|| slot.wire_format());
        let mut metrics = SessionMetrics {
            queue_wait: enqueued.elapsed(),
            route: format!("{}→{}", request.source_endpoint, request.target_endpoint),
            tenant: tenant.clone(),
            wire_format,
            ..SessionMetrics::default()
        };
        self.queue_wait_hist.record_duration_ns(metrics.queue_wait);
        self.trace.record(
            "queued",
            shared.id,
            shared.root_span,
            enqueued,
            metrics.queue_wait,
            format!("priority {:?}", request.priority),
        );
        if shared.is_cancelled() {
            self.finish(
                &shared,
                enqueued,
                SessionState::Cancelled,
                metrics,
                None,
                Some("cancelled while queued".into()),
            );
            return;
        }
        // Fast-fail: a deadline that expired while the session sat in
        // the queue is shed *before* planning — it never burns a
        // statistics probe or an optimizer call on work that is already
        // lost. The breaker is untouched (an expired deadline says
        // nothing about link health).
        if shared.deadline_exceeded() {
            self.events.push(
                shared.id,
                shared.root_span,
                EventKind::DeadlineExceeded,
                "while queued",
            );
            self.events.push(
                shared.id,
                shared.root_span,
                EventKind::Shed,
                "expired while queued: shed before planning",
            );
            self.agg.lock().unwrap().shed_expired += 1;
            self.tenant_entry(&tenant, |t| t.shed += 1);
            self.flight
                .shed(|| format!("{}: expired while queued", shared.name));
            self.remember_resumable(
                shared.id,
                Resumable {
                    request,
                    plan: stored_plan,
                },
            );
            self.finish(
                &shared,
                enqueued,
                SessionState::Failed,
                metrics,
                None,
                Some("deadline exceeded while queued: shed before planning".into()),
            );
            return;
        }
        // Breaker feedback at dequeue: a session whose route's breaker
        // is open would only fail after burning a planning probe and a
        // full retry budget — shed it now, keeping it resumable.
        // Resumed sessions pass: resume is the operator's explicit
        // probe and deliberately bypasses the breaker.
        if !resumed && slot.breaker.is_open() {
            let pair = slot.pair();
            let retry = slot
                .breaker
                .cooldown_remaining()
                .unwrap_or(self.config.breaker_cooldown);
            self.events.push(
                shared.id,
                shared.root_span,
                EventKind::Shed,
                format!("circuit open on {pair}, retry in {retry:?}"),
            );
            slot.counters.sessions_shed.fetch_add(1, Ordering::Relaxed);
            self.agg.lock().unwrap().shed_breaker += 1;
            self.tenant_entry(&tenant, |t| t.shed += 1);
            self.flight
                .shed(|| format!("{}: circuit open on {pair} at dequeue", shared.name));
            self.remember_resumable(
                shared.id,
                Resumable {
                    request,
                    plan: stored_plan,
                },
            );
            self.finish(
                &shared,
                enqueued,
                SessionState::Failed,
                metrics,
                None,
                Some(format!("shed: circuit open on {pair}")),
            );
            return;
        }

        // Delta eligibility: resolve the base snapshot for the
        // request's declared target version. A missing (or aged-out)
        // snapshot falls back to a full re-ship before planning, so the
        // plan-cache key never embeds a version pair we cannot serve.
        let feed_route = route_key(
            &request.source_endpoint,
            &request.target_endpoint,
            &request.source_frag.name,
            &request.target_frag.name,
        );
        let mut delta_base: Option<(u64, u64, Snapshot, bool)> = None;
        if let Some(base) = request.base_version {
            // `reconstruct` serves a retained snapshot directly, or — when
            // the base aged out of the retention window — composes the
            // retained per-step patches v(i)→v(i+1) back up to it, so an
            // old subscriber still gets a delta instead of a full re-ship.
            match self.snapshots.reconstruct(&feed_route, base) {
                Some((snap, composed)) => {
                    let head = self.snapshots.head(&feed_route) + 1;
                    delta_base = Some((base, head, snap, composed));
                    if composed {
                        metrics.delta_chain_composed += 1;
                        self.events.push(
                            shared.id,
                            shared.root_span,
                            EventKind::DeltaChainComposed,
                            format!(
                                "base v{base} aged out: composed from retained step patches \
                                 for {feed_route}"
                            ),
                        );
                    }
                }
                None => {
                    metrics.delta_full_fallbacks += 1;
                    self.events.push(
                        shared.id,
                        shared.root_span,
                        EventKind::DeltaFellBack,
                        format!("no snapshot v{base} for {feed_route}: full re-ship"),
                    );
                }
            }
        }
        let versions = delta_base.as_ref().map(|&(b, h, _, _)| (b, h));

        // Plan (Figure 2, Steps 2–3), consulting the shared cache — or,
        // for a resumed session, replaying the checkpointed plan with
        // zero probes and zero optimizer calls.
        shared.set_state(SessionState::Planning);
        let plan_span = self.trace.allocate_id();
        self.events.push(
            shared.id,
            plan_span,
            EventKind::PlanningStarted,
            &shared.name,
        );
        let planning_started = Instant::now();
        let optimizer = request.optimizer.unwrap_or(self.config.optimizer);
        // The shape half of the plan-cache key, kept for calibration:
        // drift observations are accounted per shape, and a drifted
        // shape's cached plan is evicted. `None` for resumed sessions
        // (they replay a checkpointed plan without probing).
        let mut plan_shape: Option<u64> = None;
        let plan = if let Some(plan) = stored_plan {
            metrics.plan_cache_hit = true;
            self.events.push(
                shared.id,
                plan_span,
                EventKind::PlanCacheHit,
                "checkpointed plan replayed: zero probes",
            );
            plan
        } else {
            let mut exchange = DataExchange::new(
                &self.schema,
                request.source_frag.clone(),
                request.target_frag.clone(),
            )
            .with_optimizer(optimizer)
            .with_profiles(request.source_profile, request.target_profile)
            .with_wire_format(wire_format);
            exchange.w_comm = self.config.w_comm;
            metrics.planning_probes += 1;
            let model = match exchange.probe(&request.source) {
                Ok(model) => model,
                Err(e) => {
                    metrics.planning = planning_started.elapsed();
                    // The plan span is recorded even on failure, so the
                    // trace tree accounts for where the wall time of a
                    // failed session went.
                    self.trace.record_with_id(
                        plan_span,
                        "plan",
                        shared.id,
                        shared.root_span,
                        planning_started,
                        metrics.planning,
                        format!("statistics probe failed: {e}"),
                    );
                    self.finish(
                        &shared,
                        enqueued,
                        SessionState::Failed,
                        metrics,
                        None,
                        Some(format!("statistics probe failed: {e}")),
                    );
                    return;
                }
            };
            let key = plan_key(
                &request.source_frag,
                &request.target_frag,
                &model,
                optimizer,
                versions,
            );
            plan_shape = Some(key.shape);
            match self.cache.lookup(key) {
                Some(cached) => {
                    metrics.plan_cache_hit = true;
                    self.events.push(
                        shared.id,
                        plan_span,
                        EventKind::PlanCacheHit,
                        format!("key {:016x}/{:016x}", key.shape, key.stats),
                    );
                    cached
                }
                None => {
                    self.events.push(
                        shared.id,
                        plan_span,
                        EventKind::PlanCacheMiss,
                        format!("key {:016x}/{:016x}", key.shape, key.stats),
                    );
                    match exchange.plan(&model) {
                        Ok((program, cost)) => {
                            // Remember what the model predicted for each
                            // node (and for the wire), so execution can
                            // be compared against it by calibration.
                            let op_costs: Vec<f64> = (0..program.nodes.len())
                                .map(|i| model.comp_cost(&program, i, program.nodes[i].location))
                                .collect();
                            let mut comm_bytes = 0.0;
                            for (i, node) in program.nodes.iter().enumerate() {
                                for port in &node.inputs {
                                    comm_bytes += model.comm_cost(&self.schema, &program, *port, i);
                                }
                            }
                            self.cache.insert(
                                key,
                                CachedPlan {
                                    program,
                                    cost,
                                    op_costs,
                                    comm_bytes: comm_bytes as u64,
                                },
                            )
                        }
                        Err(e) => {
                            metrics.planning = planning_started.elapsed();
                            self.trace.record_with_id(
                                plan_span,
                                "plan",
                                shared.id,
                                shared.root_span,
                                planning_started,
                                metrics.planning,
                                format!("planning failed: {e}"),
                            );
                            self.finish(
                                &shared,
                                enqueued,
                                SessionState::Failed,
                                metrics,
                                None,
                                Some(format!("planning failed: {e}")),
                            );
                            return;
                        }
                    }
                }
            }
        };
        metrics.planning = planning_started.elapsed();
        // Feed the admission estimator: the plan's predicted cost units,
        // scaled by calibration's ns-per-unit, is one of its two
        // turnaround estimators.
        self.admission.record_plan_cost(plan.cost);
        self.planning_hist.record_duration_ns(metrics.planning);
        self.trace.record_with_id(
            plan_span,
            "plan",
            shared.id,
            shared.root_span,
            planning_started,
            metrics.planning,
            format!(
                "{}, cost {:.1}",
                if metrics.plan_cache_hit {
                    "cache hit"
                } else {
                    "cache miss"
                },
                plan.cost
            ),
        );
        if shared.is_cancelled() {
            self.finish(
                &shared,
                enqueued,
                SessionState::Cancelled,
                metrics,
                None,
                Some("cancelled after planning".into()),
            );
            return;
        }
        if shared.deadline_exceeded() {
            self.events.push(
                shared.id,
                shared.root_span,
                EventKind::DeadlineExceeded,
                "after planning",
            );
            self.remember_resumable(
                shared.id,
                Resumable {
                    request,
                    plan: Some(Arc::clone(&plan)),
                },
            );
            self.finish(
                &shared,
                enqueued,
                SessionState::Failed,
                metrics,
                None,
                Some("deadline exceeded after planning".into()),
            );
            return;
        }

        // Execute (Step 4) over the fault-tolerant shipper, on the
        // session's per-pair link. Writes are staged: a run that dies
        // mid-exchange rolls the target back.
        shared.set_state(SessionState::Executing);
        let exec_span = self.trace.allocate_id();
        let exec_started = Instant::now();
        self.events.push(
            shared.id,
            exec_span,
            EventKind::ExecutionStarted,
            format!("estimated cost {:.1} via {}", plan.cost, metrics.route),
        );
        let mut target = Database::new(format!("{}-target", shared.name));
        // Non-delta sessions take the pipelined path: run the source
        // phase here, hand the batches to the shipping engine, park.
        // Delta sessions keep the blocking path — a patch is one small
        // message, and its fallback ladder needs the full feeds anyway.
        if self.config.pipeline && delta_base.is_none() {
            self.start_pipeline(
                arc,
                shared,
                enqueued,
                request,
                plan,
                plan_shape,
                slot,
                wire_format,
                feed_route,
                metrics,
                target,
                exec_span,
                exec_started,
            );
            return;
        }
        let mut shipper = FaultTolerantShipper::with_wire_format(
            Arc::clone(&slot),
            self.config.shipping,
            &shared,
            &self.events,
            &self.ledger,
            wire_format,
        )
        .with_telemetry(&self.trace, exec_span, Arc::clone(&self.encode_hist))
        .with_engine(Arc::clone(&self.engine));
        // Delta path first, when eligible: compute the head feeds
        // locally over a loopback transport, diff them against the base
        // snapshot in one Dewey merge pass, and ship the checksummed
        // patch when the cost model prefers it over the full feeds. Any
        // post-delivery failure (corrupt frame, stale version
        // precondition, malformed steps) rolls the staged patch back
        // and falls through to the full re-ship — the fallback ladder.
        let outcome = 'exec: {
            if let Some((base_ver, head_ver, snapshot, chain_composed)) = delta_base.as_ref() {
                let mut loopback = LoopbackTransport::new(wire_format);
                let mut head_db = Database::new(format!("{}-head", shared.name));
                let mut head_outcome = match execute_with_transport(
                    &self.schema,
                    &request.source_frag,
                    &request.target_frag,
                    &plan.program,
                    &mut request.source,
                    &mut head_db,
                    &mut loopback,
                    None,
                ) {
                    Ok(out) => out,
                    Err(e) => break 'exec Err(e),
                };
                match diff_snapshots(snapshot, &db_tables(&head_db), *base_ver, *head_ver) {
                    Ok(patch) => {
                        let steps = patch.step_count();
                        let mut bytes = Vec::new();
                        encode_patch_with_context_into(
                            &mut bytes,
                            &patch,
                            wire_format,
                            wire_context(&shared, exec_span),
                        );
                        // A resumed patch session must re-ship frames
                        // byte-identical to the failed run's — the
                        // ledger checkpoint hashes the message, and a
                        // fresh encode embeds *this* run's trace
                        // context. Replay the persisted bytes instead,
                        // exactly as the full path replays
                        // `checkpointed_message`. The patch ship is
                        // always the shipper's first shipment (seq 0).
                        let bytes = self.ledger.stored_message(shared.id, 0).unwrap_or(bytes);
                        let patch_cost = self.config.w_comm * bytes.len() as f64
                            + PATCH_STEP_FACTOR * steps as f64 / request.target_profile.speed;
                        let full_cost = self.config.w_comm * plan.comm_bytes as f64;
                        if plan.comm_bytes > 0 && patch_cost >= full_cost {
                            metrics.delta_full_chosen += 1;
                            self.events.push(
                                shared.id,
                                exec_span,
                                EventKind::DeltaFellBack,
                                format!(
                                    "patch cost {patch_cost:.1} ≥ full {full_cost:.1}: full ship"
                                ),
                            );
                        } else {
                            match shipper.ship("delta-patch", &bytes) {
                                Ok((wire, delivered)) => {
                                    let decode_started = Instant::now();
                                    let staged =
                                        decode_patch_ctx(&delivered).and_then(|(decoded, rctx)| {
                                            if let Some(ctx) = rctx {
                                                // Receiver-side decode span,
                                                // stitched from the frame's
                                                // propagated context.
                                                self.trace.record_with_context(
                                                    self.trace.allocate_id(),
                                                    "decode",
                                                    shared.id,
                                                    ctx.parent_span,
                                                    ctx.trace_id,
                                                    decode_started,
                                                    decode_started.elapsed(),
                                                    format!(
                                                        "patch v{}→v{}",
                                                        decoded.base_version, decoded.head_version
                                                    ),
                                                );
                                            }
                                            // An ordinary patch must be based on the route
                                            // head (a non-head base means the subscriber's
                                            // precondition is stale). A chain-composed
                                            // patch is *deliberately* based below the head;
                                            // for it the precondition is that no concurrent
                                            // session advanced the route since planning.
                                            let head_now = self.snapshots.head(&feed_route);
                                            let expected_head = if *chain_composed {
                                                *head_ver - 1
                                            } else {
                                                decoded.base_version
                                            };
                                            if head_now != expected_head {
                                                return Err(
                                                    xdx_relational::Error::SchemaMismatch {
                                                        detail: format!(
                                                    "stale patch: route head v{head_now} ≠ \
                                                     expected v{expected_head} (patch base v{})",
                                                    decoded.base_version
                                                ),
                                                    },
                                                );
                                            }
                                            stage_patch(snapshot, &decoded, &mut target)?;
                                            Ok(())
                                        });
                                    match staged {
                                        Ok(()) => {
                                            let rows = target.commit_staged();
                                            if let Err(e) = target.build_all_key_indexes() {
                                                break 'exec Err(e.into());
                                            }
                                            metrics.delta_patch_bytes += bytes.len() as u64;
                                            metrics.delta_patches_applied += 1;
                                            self.events.push(
                                                shared.id,
                                                exec_span,
                                                EventKind::DeltaApplied,
                                                format!(
                                                    "v{base_ver}→v{head_ver}: {steps} steps, \
                                                     {} bytes, {rows} rows",
                                                    bytes.len()
                                                ),
                                            );
                                            head_outcome.times.communication = wire;
                                            head_outcome.messages = 1;
                                            head_outcome.rows_loaded = rows;
                                            break 'exec Ok(head_outcome);
                                        }
                                        Err(e) => {
                                            target.rollback_staged();
                                            metrics.delta_full_fallbacks += 1;
                                            self.events.push(
                                                shared.id,
                                                exec_span,
                                                EventKind::DeltaFellBack,
                                                format!("patch rejected: {e}; full re-ship"),
                                            );
                                        }
                                    }
                                }
                                // The link gave up on the patch: fail
                                // the session. The checkpoint ledger
                                // holds the acknowledged patch chunks,
                                // and a resume recomputes the identical
                                // patch, so only unacked chunks cross
                                // the link again.
                                Err(e) => break 'exec Err(e),
                            }
                        }
                    }
                    Err(e) => {
                        metrics.delta_full_fallbacks += 1;
                        self.events.push(
                            shared.id,
                            exec_span,
                            EventKind::DeltaFellBack,
                            format!("diff failed: {e}; full re-ship"),
                        );
                    }
                }
            }
            execute_with_transport(
                &self.schema,
                &request.source_frag,
                &request.target_frag,
                &plan.program,
                &mut request.source,
                &mut target,
                &mut shipper,
                None,
            )
        };
        let ship = shipper.stats;
        let rollup = ShipRollup {
            wire_bytes: ship.wire_bytes,
            bytes_encoded: ship.bytes_encoded,
            encode_ns: ship.encode_ns,
            messages_serialized: ship.messages_serialized,
            retry_backoff: ship.retry_backoff,
            chunks_shipped: ship.chunks_shipped,
            chunks_resumed: ship.chunks_resumed,
            chunks_deduped: ship.chunks_deduped,
            chunks_retried: ship.chunks_retried,
            link_gave_up: ship.link_gave_up,
        };
        drop(shipper);
        self.settle_exec(
            &shared,
            enqueued,
            request,
            &plan,
            plan_shape,
            &slot,
            wire_format,
            &feed_route,
            exec_span,
            exec_started,
            metrics,
            target,
            outcome.map_err(|e| e.to_string()),
            rollup,
        );
    }

    /// Folds the shipping rollup into the session's metrics and settles
    /// the exchange into its terminal state — shared verbatim by the
    /// blocking path and the pipelined finalization, so both report
    /// identical accounting, calibration, snapshots and resumability.
    #[allow(clippy::too_many_arguments)]
    fn settle_exec(
        &self,
        shared: &Arc<SessionShared>,
        enqueued: Instant,
        request: ExchangeRequest,
        plan: &Arc<CachedPlan>,
        plan_shape: Option<u64>,
        slot: &Arc<LinkSlot>,
        wire_format: WireFormat,
        feed_route: &str,
        exec_span: SpanId,
        exec_started: Instant,
        mut metrics: SessionMetrics,
        target: Database,
        outcome: std::result::Result<ExecOutcome, String>,
        ship: ShipRollup,
    ) {
        let settle_started = Instant::now();
        metrics.communication = match &outcome {
            Ok(out) => out.times.communication,
            Err(_) => Duration::ZERO,
        };
        metrics.retry_backoff = ship.retry_backoff;
        metrics.messages_serialized = ship.messages_serialized as usize;
        metrics.bytes_shipped = ship.wire_bytes;
        metrics.bytes_encoded = ship.bytes_encoded;
        metrics.encode_ns = ship.encode_ns;
        metrics.chunks_shipped = ship.chunks_shipped;
        metrics.chunks_resumed = ship.chunks_resumed;
        metrics.chunks_deduped = ship.chunks_deduped;
        metrics.chunks_retried = ship.chunks_retried;
        metrics.source_counters = request.source.counters;
        metrics.target_counters = target.counters;
        self.trace.record_with_context(
            exec_span,
            "exec",
            shared.id,
            shared.root_span,
            session_trace_id(shared),
            exec_started,
            exec_started.elapsed(),
            format!(
                "{} via {} [{}]",
                if outcome.is_ok() { "ok" } else { "failed" },
                metrics.route,
                format_name(wire_format)
            ),
        );
        match outcome {
            Ok(out) => {
                metrics.messages = out.messages;
                metrics.rows_loaded = out.rows_loaded;
                // Per-operator telemetry: each timed operator becomes a
                // child span of the exec span, lands in its
                // `(op, location)` histogram, and — when the plan
                // carries the model's per-node predictions — feeds the
                // predicted-vs-observed calibration cells.
                let fmt = format_name(wire_format);
                let mut observed_ns: u64 = 0;
                for s in &out.op_samples {
                    let loc = location_name(s.location);
                    observed_ns += s.wall.as_nanos() as u64;
                    self.trace.record(
                        s.op,
                        shared.id,
                        exec_span,
                        s.started,
                        s.wall,
                        format!("node {} @{loc}", s.node),
                    );
                    self.metrics
                        .histogram(&format!(
                            "xdx_op_wall_ns{{op=\"{}\",location=\"{loc}\"}}",
                            s.op
                        ))
                        .record_duration_ns(s.wall);
                    if let Some(&predicted) = plan.op_costs.get(s.node) {
                        self.calibration.record_op(
                            s.op,
                            loc,
                            fmt,
                            predicted,
                            s.wall.as_nanos() as u64,
                        );
                    }
                }
                if plan.comm_bytes > 0 || ship.bytes_encoded > 0 {
                    self.calibration.record_comm(
                        fmt,
                        plan.comm_bytes,
                        ship.bytes_encoded,
                        metrics.communication.as_nanos() as u64,
                    );
                }
                // Session-level drift: observed time (operators plus the
                // simulated wire, which inflates under link faults)
                // against the plan's total predicted cost. A sustained
                // excursion evicts the shape's cached plan so the next
                // session re-plans under fresh statistics.
                observed_ns += metrics.communication.as_nanos() as u64;
                if let Some(shape) = plan_shape {
                    if self
                        .calibration
                        .observe_session(shape, plan.cost, observed_ns)
                    {
                        let evicted = self.cache.evict_drifted(shape);
                        self.events.push(
                            shared.id,
                            shared.root_span,
                            EventKind::PlanDriftEvicted,
                            format!(
                                "shape {shape:016x}: sustained cost-model drift{}",
                                if evicted {
                                    ", cached plan evicted"
                                } else {
                                    " (no cached plan)"
                                }
                            ),
                        );
                    }
                }
                // Advance the route's versioned feed log: the committed
                // target feeds become the snapshot the next delta
                // session diffs against.
                let snapshot_started = Instant::now();
                self.snapshots.record(feed_route, db_tables(&target));
                self.trace.record_with_context(
                    self.trace.allocate_id(),
                    "snapshot",
                    shared.id,
                    exec_span,
                    session_trace_id(shared),
                    snapshot_started,
                    snapshot_started.elapsed(),
                    format!("route {feed_route} advanced"),
                );
                // The checkpoint served its purpose; drop it.
                self.ledger.forget_session(shared.id);
                slot.counters
                    .sessions_completed
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(BreakerTransition::Closed) = slot.breaker.record_success() {
                    self.flight.record(FlightSubsystem::Breaker, || {
                        format!("{}: closed (probe succeeded)", slot.pair())
                    });
                    self.events.push(
                        shared.id,
                        shared.root_span,
                        EventKind::CircuitClosed,
                        format!("{}: probe succeeded", slot.pair()),
                    );
                }
                self.trace.record_with_context(
                    self.trace.allocate_id(),
                    "settle",
                    shared.id,
                    exec_span,
                    session_trace_id(shared),
                    settle_started,
                    settle_started.elapsed(),
                    "committed".to_string(),
                );
                self.finish(
                    shared,
                    enqueued,
                    SessionState::Done,
                    metrics,
                    Some(target),
                    None,
                );
            }
            Err(e) => {
                let diagnostic = e.to_string();
                if shared.is_cancelled() {
                    self.finish(
                        shared,
                        enqueued,
                        SessionState::Cancelled,
                        metrics,
                        None,
                        Some(diagnostic),
                    );
                    return;
                }
                if shared.deadline_exceeded() {
                    self.events.push(
                        shared.id,
                        shared.root_span,
                        EventKind::DeadlineExceeded,
                        &diagnostic,
                    );
                }
                slot.counters
                    .sessions_failed
                    .fetch_add(1, Ordering::Relaxed);
                if ship.link_gave_up {
                    if let Some(BreakerTransition::Opened) = slot.breaker.record_failure() {
                        self.flight.record(FlightSubsystem::Breaker, || {
                            format!(
                                "{}: opened, cooldown {:?}",
                                slot.pair(),
                                self.config.breaker_cooldown
                            )
                        });
                        self.events.push(
                            shared.id,
                            shared.root_span,
                            EventKind::CircuitOpened,
                            format!(
                                "{}: cooldown {:?}",
                                slot.pair(),
                                self.config.breaker_cooldown
                            ),
                        );
                        // The breaker just opened: everything queued for
                        // this route would fail the same way. Drain and
                        // shed it now instead of one session at a time.
                        self.shed_queued_route(slot);
                        self.flight
                            .anomaly(&format!("breaker open on {}", slot.pair()));
                    }
                }
                // Keep the session resumable: the checkpointed plan and
                // the shipping ledger (with its persisted serialized
                // messages) make the retry probe-free and
                // serialization-free.
                self.remember_resumable(
                    shared.id,
                    Resumable {
                        request,
                        plan: Some(Arc::clone(plan)),
                    },
                );
                self.trace.record_with_context(
                    self.trace.allocate_id(),
                    "settle",
                    shared.id,
                    exec_span,
                    session_trace_id(shared),
                    settle_started,
                    settle_started.elapsed(),
                    "rolled back".to_string(),
                );
                // The rolled-back target travels with the result as
                // observable proof that no partial tables survived.
                self.finish(
                    shared,
                    enqueued,
                    SessionState::Failed,
                    metrics,
                    Some(target),
                    Some(diagnostic),
                );
            }
        }
    }

    /// The pipelined execution path: run the source phase on this
    /// worker, streaming each cross-edge feed into the shipping engine
    /// *the moment its producing operator completes* — frame `k` rides
    /// the wire while later source operators still compute — then
    /// *park*: the worker returns to the queue while the remaining
    /// frames drain. Batch completions wake whichever worker is free
    /// next via the runnable queue.
    #[allow(clippy::too_many_arguments)]
    fn start_pipeline(
        &self,
        arc: &Arc<Inner>,
        shared: Arc<SessionShared>,
        enqueued: Instant,
        mut request: ExchangeRequest,
        plan: Arc<CachedPlan>,
        plan_shape: Option<u64>,
        slot: Arc<LinkSlot>,
        wire_format: WireFormat,
        feed_route: String,
        metrics: SessionMetrics,
        target: Database,
        exec_span: SpanId,
        exec_started: Instant,
    ) {
        // Deterministic shipment numbering: cross ports in first-consumer
        // order (the blocking path's shipping order), each feed split
        // into batches in Dewey order. The same seq names the same bytes
        // across failed runs and resumes, so the ledger's checkpoints
        // line up — overlapping the wire with the source phase changes
        // *when* a frame ships, never its seq or its bytes.
        let cross = cross_ports_in_consumer_order(&self.schema, &plan.program);
        let mut window = ShipWindow {
            shared: Arc::clone(&shared),
            slot: Arc::clone(&slot),
            wire_format,
            exec_span,
            pending: VecDeque::new(),
            port_of: HashMap::new(),
            inbox: Arc::new(Mutex::new(Vec::new())),
            budget: Arc::new(AtomicI64::new(i64::from(self.config.shipping.retry_budget))),
            inflight: 0,
            next_seq: 0,
            rollup: ShipRollup::default(),
            failure: None,
            encode_buf: Vec::new(),
        };
        // Leading cross ports (consumer order) already batched into the
        // window by the streaming hook.
        let mut streamed = 0usize;
        let batch_rows = self.config.batch_rows;
        let source = execute_source_phase_streaming(
            &self.schema,
            &request.source_frag,
            &request.target_frag,
            &plan.program,
            &mut request.source,
            None,
            &mut |feeds| {
                // A cross feed is final the instant its producer runs —
                // downstream source operators only read it. Flush the
                // maximal *ready prefix* so seqs stay in consumer order,
                // then top the engine up: the wire carries these frames
                // while the rest of the source phase computes.
                while let Some(c) = cross.get(streamed) {
                    let Some(feed) = feeds.get(&c.port) else {
                        break;
                    };
                    for batch in feed_batches(feed, batch_rows) {
                        window.port_of.insert(window.next_seq, c.port);
                        window.pending.push_back(PendingBatch {
                            seq: window.next_seq,
                            label: c.label.clone(),
                            feed: batch,
                        });
                        window.next_seq += 1;
                    }
                    streamed += 1;
                }
                self.pump_pipeline(arc, &mut window);
            },
        );
        let settled = match source {
            Ok((phase, outcome)) => {
                // Stragglers the prefix rule held back (a port whose
                // producer finished after a still-pending predecessor)
                // batch now, with the seqs the blocking path would have
                // assigned.
                let mut missing = None;
                for c in cross.iter().skip(streamed) {
                    let Some(feed) = phase.feeds.get(&c.port) else {
                        missing = Some(format!("missing feed for port {:?}", c.port));
                        break;
                    };
                    for batch in feed_batches(feed, batch_rows) {
                        window.port_of.insert(window.next_seq, c.port);
                        window.pending.push_back(PendingBatch {
                            seq: window.next_seq,
                            label: c.label.clone(),
                            feed: batch,
                        });
                        window.next_seq += 1;
                    }
                }
                match missing {
                    None => Ok(outcome),
                    Some(e) => Err(e),
                }
            }
            Err(e) => Err(e.to_string()),
        };
        let outcome = match settled {
            Ok(outcome) => outcome,
            Err(e) => {
                if window.next_seq == 0 {
                    // Nothing reached the wire: settle directly, exactly
                    // as the blocking path would.
                    self.settle_exec(
                        &shared,
                        enqueued,
                        request,
                        &plan,
                        plan_shape,
                        &slot,
                        wire_format,
                        &feed_route,
                        exec_span,
                        exec_started,
                        metrics,
                        target,
                        Err(e),
                        window.rollup,
                    );
                    return;
                }
                // Frames already shipped (and may have staged rows):
                // record the failure and fall through — the session
                // parks until in-flight results drain, then
                // `finalize_pipeline` rolls every staged batch back.
                window.failure.get_or_insert(e);
                ExecOutcome::default()
            }
        };
        let stream_tables = writes_stream_directly(&plan.program)
            .then(|| direct_write_tables(&plan.program, &request.target_frag));
        let mut ps = PipelinedSession {
            shared,
            enqueued,
            request,
            plan,
            plan_shape,
            slot,
            wire_format,
            feed_route,
            metrics,
            outcome,
            target,
            exec_span,
            exec_started,
            window,
            decoded: BTreeMap::new(),
            next_stage_seq: 0,
            stream_tables,
            write_walls: HashMap::new(),
            delivered: HashMap::new(),
        };
        self.pipelines_outstanding.fetch_add(1, Ordering::SeqCst);
        if ps.window.failure.is_none() && !(ps.window.pending.is_empty() && ps.window.inflight == 0)
        {
            ps.shared.set_state(SessionState::Shipping);
            self.pump_pipeline(arc, &mut ps.window);
        }
        if ps.window.inflight == 0 && (ps.window.pending.is_empty() || ps.window.failure.is_some())
        {
            // No cross edges, or a failed exec with nothing left on the
            // wire: finalize on this worker.
            self.finalize_pipeline(ps);
            return;
        }
        let sid = ps.shared.id;
        let inbox = Arc::clone(&ps.window.inbox);
        self.pipelines.lock().unwrap().insert(sid, ps);
        // A batch that completed before the session reached the map had
        // its runnable wakeup consumed as a no-op — re-arm it.
        if !inbox.lock().unwrap().is_empty() {
            self.queue.lock().unwrap().runnable.push_back(sid);
            self.available.notify_all();
        }
    }

    /// Keeps the session's submission window full: encodes and submits
    /// pending batches until `pipeline_depth` are in flight. Frame `k+1`
    /// is encoded here while frame `k` rides the wire — and, via the
    /// streaming hook in [`Inner::start_pipeline`], while the source
    /// phase is still producing frame `k+2`.
    fn pump_pipeline(&self, arc: &Arc<Inner>, w: &mut ShipWindow) {
        while w.failure.is_none() && w.inflight < self.config.pipeline_depth {
            let Some(batch) = w.pending.pop_front() else {
                break;
            };
            // Checkpoint replay first: a resumed session re-ships the
            // exact bytes the failed run built; only a ledger miss
            // serializes (mirrors the blocking transport's
            // `checkpointed_message` contract).
            let message = Arc::new(match self.ledger.stored_message(w.shared.id, batch.seq) {
                Some(stored) => stored,
                None => {
                    let start = Instant::now();
                    // Trace context rides the shipment: columnar frames
                    // carry it in their header extension, XML text in
                    // the SOAPAction label — either way the receiver
                    // stitches its decode/stage spans under this
                    // session's exec span.
                    let ctx = wire_context(&w.shared, w.exec_span);
                    let len = encode_in_format_with_context_into(
                        &mut w.encode_buf,
                        &batch.feed,
                        w.wire_format,
                        ctx,
                    );
                    let ns = start.elapsed().as_nanos() as u64;
                    w.rollup.messages_serialized += 1;
                    w.rollup.bytes_encoded += len as u64;
                    w.rollup.encode_ns += ns;
                    w.slot
                        .counters
                        .bytes_encoded
                        .fetch_add(len as u64, Ordering::Relaxed);
                    w.slot.counters.encode_ns.fetch_add(ns, Ordering::Relaxed);
                    self.encode_hist.record(ns);
                    self.trace.record(
                        "encode",
                        w.shared.id,
                        w.exec_span,
                        start,
                        Duration::from_nanos(ns),
                        format!("{len} bytes"),
                    );
                    let soap_label = match (w.wire_format, ctx) {
                        (WireFormat::Xml, Some(ctx)) => label_with_context(&batch.label, ctx),
                        _ => batch.label.clone(),
                    };
                    Request::soap_post("/exchange", &soap_label, w.encode_buf.clone()).to_bytes()
                }
            });
            w.inflight += 1;
            let sid = w.shared.id;
            let inbox = Arc::clone(&w.inbox);
            let waker = Arc::clone(arc);
            self.engine.submit(ShipRequest {
                session: Arc::clone(&w.shared),
                slot: Arc::clone(&w.slot),
                seq: batch.seq,
                label: batch.label,
                message,
                policy: self.config.shipping,
                budget: Arc::clone(&w.budget),
                parent_span: w.exec_span,
                on_done: Box::new(move |result| {
                    // Deposit the result, then make the session runnable
                    // — strictly in that order, and the runnable queue
                    // lives inside the queue lock, so a worker that saw
                    // the wakeup always finds the result.
                    inbox.lock().unwrap().push(result);
                    waker.queue.lock().unwrap().runnable.push_back(sid);
                    waker.available.notify_all();
                }),
            });
        }
    }

    /// Services a parked pipelined session: absorbs every deposited
    /// batch result, refills the submission window, and either re-parks
    /// the session or finalizes it. The session is *removed* from the
    /// map while serviced, so two workers can never service it at once;
    /// stale runnable entries for an absent session are no-ops.
    fn service_pipeline(&self, arc: &Arc<Inner>, sid: SessionId) {
        loop {
            let Some(mut ps) = self.pipelines.lock().unwrap().remove(&sid) else {
                return;
            };
            let results = std::mem::take(&mut *ps.window.inbox.lock().unwrap());
            for result in results {
                self.absorb_batch(&mut ps, result);
            }
            self.pump_pipeline(arc, &mut ps.window);
            if ps.window.inflight == 0
                && (ps.window.pending.is_empty() || ps.window.failure.is_some())
            {
                self.finalize_pipeline(ps);
                return;
            }
            let inbox = Arc::clone(&ps.window.inbox);
            self.pipelines.lock().unwrap().insert(sid, ps);
            // A result deposited while the session was out of the map
            // consumed its wakeup against the empty map — service it now
            // instead of stranding a parked session. (Batches remain in
            // flight here, so the session cannot have been finalized.)
            if inbox.lock().unwrap().is_empty() {
                return;
            }
        }
    }

    /// Folds one completed batch into the parked session: shipping
    /// tallies always; on delivery, decode and stage in shipment order;
    /// on failure, record the first diagnostic and stop the pump.
    fn absorb_batch(&self, ps: &mut PipelinedSession, result: BatchResult) {
        ps.window.inflight -= 1;
        let stats = result.stats;
        ps.window.rollup.wire_bytes += stats.wire_bytes;
        ps.window.rollup.chunks_shipped += stats.chunks_shipped;
        ps.window.rollup.chunks_resumed += stats.chunks_resumed;
        ps.window.rollup.chunks_deduped += stats.chunks_deduped;
        ps.window.rollup.chunks_retried += stats.chunks_retried;
        ps.window.rollup.retry_backoff += stats.retry_backoff;
        match result.outcome {
            Ok(delivered) => {
                ps.outcome.times.communication += result.elapsed;
                ps.outcome.messages += 1;
                // Decode what actually arrived — link damage surfaces as
                // an explicit error here, exactly as on the blocking
                // path. The frame (or the SOAPAction label, for XML
                // text) carries the sender's trace context; the decode
                // span stitches under it.
                let decode_started = Instant::now();
                let decoded = Request::parse(&delivered)
                    .map_err(|e| e.to_string())
                    .and_then(|arrived| {
                        let (feed, ctx) =
                            decode_any_ctx(&arrived.body).map_err(|e| e.to_string())?;
                        Ok((feed, ctx.or_else(|| soap_action_context(&arrived))))
                    });
                match decoded {
                    Ok((feed, ctx)) => {
                        let (parent, trace_id) = ctx
                            .map_or((ps.exec_span, session_trace_id(&ps.shared)), |c| {
                                (c.parent_span, c.trace_id)
                            });
                        self.trace.record_with_context(
                            self.trace.allocate_id(),
                            "decode",
                            ps.shared.id,
                            parent,
                            trace_id,
                            decode_started,
                            decode_started.elapsed(),
                            format!("batch {}", result.seq),
                        );
                        ps.decoded.insert(result.seq, feed);
                        let stage_started = Instant::now();
                        let staged_from = ps.next_stage_seq;
                        if let Err(e) = self.stage_ready(ps) {
                            ps.window.failure.get_or_insert(e);
                        }
                        let staged = ps.next_stage_seq - staged_from;
                        if staged > 0 {
                            self.trace.record_with_context(
                                self.trace.allocate_id(),
                                "stage",
                                ps.shared.id,
                                parent,
                                trace_id,
                                stage_started,
                                stage_started.elapsed(),
                                format!("{staged} batch(es) from seq {staged_from}"),
                            );
                        }
                    }
                    Err(e) => {
                        ps.window
                            .failure
                            .get_or_insert(format!("batch {} corrupt: {e}", result.seq));
                    }
                }
            }
            Err(e) => {
                ps.window.rollup.link_gave_up |= result.link_gave_up;
                ps.window.failure.get_or_insert(e);
            }
        }
    }

    /// Applies decoded batches in shipment-seq order from the staging
    /// cursor: direct-write programs stage rows into their target table
    /// *now* — transactional loading starts before the source finishes
    /// producing — while general programs accumulate the delivery for
    /// the target phase at finalization.
    fn stage_ready(&self, ps: &mut PipelinedSession) -> std::result::Result<(), String> {
        while let Some(feed) = ps.decoded.remove(&ps.next_stage_seq) {
            let seq = ps.next_stage_seq;
            ps.next_stage_seq += 1;
            let port = *ps
                .window
                .port_of
                .get(&seq)
                .ok_or_else(|| format!("no port for shipment {seq}"))?;
            if let Some(tables) = &ps.stream_tables {
                let (node, table) = tables
                    .get(&port)
                    .cloned()
                    .ok_or_else(|| format!("no write table for port {port:?}"))?;
                let start = Instant::now();
                ps.outcome.rows_loaded += feed.len() as u64;
                ps.target
                    .load_staged(&table, feed)
                    .map_err(|e| e.to_string())?;
                let wall = start.elapsed();
                ps.outcome.times.loading += wall;
                let slot = ps
                    .write_walls
                    .entry(node)
                    .or_insert((start, Duration::ZERO));
                slot.1 += wall;
            } else if let Some(existing) = ps.delivered.get_mut(&port) {
                existing.rows.extend(feed.rows);
            } else {
                ps.delivered.insert(port, feed);
            }
        }
        Ok(())
    }

    /// The last batch drained (or the first failure did): run the
    /// target's half, settle the session, and release the worker-exit
    /// latch. A failure rolls every staged batch back — the target
    /// leaves exactly as it arrived, never torn.
    fn finalize_pipeline(&self, ps: PipelinedSession) {
        let PipelinedSession {
            shared,
            enqueued,
            request,
            plan,
            plan_shape,
            slot,
            wire_format,
            feed_route,
            metrics,
            mut outcome,
            mut target,
            exec_span,
            exec_started,
            window,
            mut write_walls,
            stream_tables,
            delivered,
            ..
        } = ps;
        let ShipWindow {
            rollup, failure, ..
        } = window;
        let settled: std::result::Result<ExecOutcome, String> = match failure {
            Some(diagnostic) => {
                target.rollback_staged();
                Err(diagnostic)
            }
            None => {
                let finishing = if stream_tables.is_some() {
                    // Streaming path: every batch is already staged; one
                    // Write sample per node, then the shared
                    // commit+index epilogue.
                    let mut nodes: Vec<usize> = write_walls.keys().copied().collect();
                    nodes.sort_unstable();
                    for node in nodes {
                        let (started, wall) = write_walls.remove(&node).expect("keyed");
                        outcome.op_samples.push(OpSample {
                            node,
                            op: "Write",
                            location: Location::Target,
                            started,
                            wall,
                        });
                    }
                    commit_and_index(&plan.program, &mut target, &mut outcome)
                        .map_err(|e| e.to_string())
                } else {
                    execute_target_phase(
                        &self.schema,
                        &request.source_frag,
                        &request.target_frag,
                        &plan.program,
                        &mut target,
                        &delivered,
                        &mut outcome,
                    )
                    .map_err(|e| e.to_string())
                };
                finishing.map(|()| outcome)
            }
        };
        if let Ok(out) = &settled {
            // How much of the session's wall the wire hid: feeds the
            // admission estimator's turnaround model, so queue-wait
            // predictions reflect pipelined (not serial) service.
            let wall = exec_started.elapsed();
            let comm = out.times.communication;
            let exposed = wall.saturating_sub(comm).max(Duration::from_micros(1));
            self.admission
                .record_overlap(wall.as_secs_f64() / exposed.as_secs_f64());
        }
        self.pipelines_outstanding.fetch_sub(1, Ordering::SeqCst);
        // Workers parked on an empty queue re-check the exit condition.
        self.available.notify_all();
        self.settle_exec(
            &shared,
            enqueued,
            request,
            &plan,
            plan_shape,
            &slot,
            wire_format,
            &feed_route,
            exec_span,
            exec_started,
            metrics,
            target,
            settled,
            rollup,
        );
    }

    /// Runs one admitted 1→N publish group end to end on this worker.
    ///
    /// Planning happens once per distinct wire format: the source is
    /// probed once, the k-site placement model prices target-side work
    /// × fanout and multicast-amortized shipping, and the plan lands in
    /// the shared cache under a fanout-tagged key. The source phase then
    /// runs once per format group and every frame is encoded *once*
    /// into a refcounted ring shared by all of the group's lanes —
    /// subscribers ship the same `Arc`'d bytes over their own links,
    /// with their own ledgers, retry budgets and breakers. Lanes settle
    /// independently: a broken subscriber fails (staying resumable as a
    /// two-site session replaying this group's plan, so its ledger acks
    /// line up) without stalling the healthy ones, and a lane trailing
    /// the group's fastest by more than `lag_cap` frames is dropped
    /// from the ring so the shared buffer stays bounded. Paced waits
    /// are volunteered to the shipping engine, so the worker this group
    /// occupies still drives the fleet's wire.
    fn run_publish(&self, job: PublishJob) {
        let PublishJob {
            enqueued,
            mut request,
            shareds,
            group_span,
        } = job;
        let group_sid = shareds.first().map(|s| s.id).unwrap_or(0);
        let queue_wait = enqueued.elapsed();
        let optimizer = request.optimizer.unwrap_or(self.config.optimizer);
        let lag_cap = request.lag_cap.max(1);
        let depth = self.config.pipeline_depth;
        let batch_rows = self.config.batch_rows;

        // Lane setup: resolve each subscriber's link, apply the same
        // pre-planning gates an ordinary session gets at dequeue
        // (cancellation, open breaker). Gated lanes settle here; the
        // group continues with whoever survives.
        let mut lanes: Vec<PublishLane> = Vec::new();
        for (i, subscriber) in request.subscribers.iter().enumerate() {
            let shared = Arc::clone(&shareds[i]);
            let tenant = request.lane_tenant(subscriber);
            let (slot, created) = self.registry.resolve(&request.source_endpoint, subscriber);
            if created {
                self.events.push(
                    shared.id,
                    shared.root_span,
                    EventKind::LinkCreated,
                    slot.pair(),
                );
            }
            let wire_format = request.wire_format.unwrap_or_else(|| slot.wire_format());
            let metrics = SessionMetrics {
                queue_wait,
                route: format!("{}→{subscriber}", request.source_endpoint),
                tenant: tenant.clone(),
                wire_format,
                ..SessionMetrics::default()
            };
            self.queue_wait_hist.record_duration_ns(queue_wait);
            self.trace.record(
                "queued",
                shared.id,
                shared.root_span,
                enqueued,
                queue_wait,
                format!("publish group ({:?})", request.priority),
            );
            if shared.is_cancelled() {
                self.finish(
                    &shared,
                    enqueued,
                    SessionState::Cancelled,
                    metrics,
                    None,
                    Some("cancelled while queued".into()),
                );
                continue;
            }
            if slot.breaker.is_open() {
                let pair = slot.pair();
                let retry = slot
                    .breaker
                    .cooldown_remaining()
                    .unwrap_or(self.config.breaker_cooldown);
                self.events.push(
                    shared.id,
                    shared.root_span,
                    EventKind::Shed,
                    format!("circuit open on {pair}, retry in {retry:?}"),
                );
                slot.counters.sessions_shed.fetch_add(1, Ordering::Relaxed);
                self.agg.lock().unwrap().shed_breaker += 1;
                self.tenant_entry(&tenant, |t| t.shed += 1);
                self.flight
                    .shed(|| format!("{}: circuit open on {pair} (publish lane)", shared.name));
                self.remember_resumable(
                    shared.id,
                    Resumable {
                        request: publish_lane_request(&request, subscriber),
                        plan: None,
                    },
                );
                self.finish(
                    &shared,
                    enqueued,
                    SessionState::Failed,
                    metrics,
                    None,
                    Some(format!("shed: circuit open on {pair}")),
                );
                continue;
            }
            let feed_route = route_key(
                &request.source_endpoint,
                subscriber,
                &request.source_frag.name,
                &request.target_frag.name,
            );
            let target = Database::new(format!("{}-target", shared.name));
            lanes.push(PublishLane {
                subscriber: subscriber.clone(),
                shared,
                slot,
                wire_format,
                feed_route,
                metrics,
                target,
                inbox: Arc::new(Mutex::new(Vec::new())),
                budget: Arc::new(AtomicI64::new(i64::from(self.config.shipping.retry_budget))),
                inflight: 0,
                cursor: 0,
                completed: 0,
                rollup: ShipRollup::default(),
                failure: None,
                cancelled: false,
                lagged: false,
                decoded: BTreeMap::new(),
                next_stage_seq: 0,
                outcome: ExecOutcome::default(),
                delivered: HashMap::new(),
                write_walls: HashMap::new(),
                settled: false,
            });
        }
        if lanes.is_empty() {
            self.trace.record_with_context(
                group_span,
                "publish-group",
                group_sid,
                NO_SPAN,
                group_span,
                enqueued,
                enqueued.elapsed(),
                format!("{}: no live lanes", request.name),
            );
            return;
        }

        // Plan once per distinct wire format: one statistics probe for
        // the whole group, then a k-site placement per format, cached
        // under the fanout-tagged key so the next group with this shape
        // plans for free.
        for lane in &lanes {
            lane.shared.set_state(SessionState::Planning);
        }
        let plan_span = self.trace.allocate_id();
        self.events.push(
            group_sid,
            plan_span,
            EventKind::PlanningStarted,
            &request.name,
        );
        let planning_started = Instant::now();
        let mut probe_exchange = DataExchange::new(
            &self.schema,
            request.source_frag.clone(),
            request.target_frag.clone(),
        )
        .with_optimizer(optimizer)
        .with_profiles(request.source_profile, request.target_profile)
        .with_wire_format(lanes[0].wire_format);
        probe_exchange.w_comm = self.config.w_comm;
        lanes[0].metrics.planning_probes = 1;
        let base_model = match probe_exchange.probe(&request.source) {
            Ok(model) => model,
            Err(e) => {
                let planning = planning_started.elapsed();
                let diag = format!("statistics probe failed: {e}");
                self.trace.record_with_id(
                    plan_span,
                    "plan",
                    group_sid,
                    group_span,
                    planning_started,
                    planning,
                    diag.clone(),
                );
                for mut lane in lanes {
                    lane.metrics.planning = planning;
                    let metrics = std::mem::take(&mut lane.metrics);
                    self.finish(
                        &lane.shared,
                        enqueued,
                        SessionState::Failed,
                        metrics,
                        None,
                        Some(diag.clone()),
                    );
                }
                self.trace.record_with_context(
                    group_span,
                    "publish-group",
                    group_sid,
                    NO_SPAN,
                    group_span,
                    enqueued,
                    enqueued.elapsed(),
                    format!("{}: {diag}", request.name),
                );
                return;
            }
        };
        // Group lanes by wire format, preserving subscriber order.
        let mut groups: Vec<(WireFormat, Vec<usize>)> = Vec::new();
        for (i, lane) in lanes.iter().enumerate() {
            match groups.iter_mut().find(|(f, _)| *f == lane.wire_format) {
                Some((_, members)) => members.push(i),
                None => groups.push((lane.wire_format, vec![i])),
            }
        }
        let mut planned: Vec<(WireFormat, Vec<usize>, Arc<CachedPlan>, bool)> = Vec::new();
        let mut plan_err: Option<String> = None;
        for (fmt, members) in &groups {
            let mut model = base_model.clone();
            model.wire_format = *fmt;
            let fanout = members.len();
            let key = plan_key_with_fanout(
                &request.source_frag,
                &request.target_frag,
                &model,
                optimizer,
                None,
                fanout,
            );
            let (plan, hit) = match self.cache.lookup(key) {
                Some(cached) => (cached, true),
                None => match self.plan_ksite(&model, &request, optimizer, fanout) {
                    Ok((program, cost)) => {
                        let op_costs: Vec<f64> = (0..program.nodes.len())
                            .map(|i| model.comp_cost(&program, i, program.nodes[i].location))
                            .collect();
                        let mut comm_bytes = 0.0;
                        for (i, node) in program.nodes.iter().enumerate() {
                            for port in &node.inputs {
                                comm_bytes += model.comm_cost(&self.schema, &program, *port, i);
                            }
                        }
                        let cached = self.cache.insert(
                            key,
                            CachedPlan {
                                program,
                                cost,
                                op_costs,
                                comm_bytes: comm_bytes as u64,
                            },
                        );
                        (cached, false)
                    }
                    Err(e) => {
                        plan_err = Some(format!("planning failed: {e}"));
                        break;
                    }
                },
            };
            for &li in members {
                self.events.push(
                    lanes[li].shared.id,
                    plan_span,
                    if hit {
                        EventKind::PlanCacheHit
                    } else {
                        EventKind::PlanCacheMiss
                    },
                    format!("key {:016x}/{:016x} fanout {fanout}", key.shape, key.stats),
                );
            }
            planned.push((*fmt, members.clone(), plan, hit));
        }
        let planning = planning_started.elapsed();
        if let Some(diag) = plan_err {
            self.trace.record_with_id(
                plan_span,
                "plan",
                group_sid,
                group_span,
                planning_started,
                planning,
                diag.clone(),
            );
            for mut lane in lanes {
                lane.metrics.planning = planning;
                let metrics = std::mem::take(&mut lane.metrics);
                self.finish(
                    &lane.shared,
                    enqueued,
                    SessionState::Failed,
                    metrics,
                    None,
                    Some(diag.clone()),
                );
            }
            self.trace.record_with_context(
                group_span,
                "publish-group",
                group_sid,
                NO_SPAN,
                group_span,
                enqueued,
                enqueued.elapsed(),
                format!("{}: {diag}", request.name),
            );
            return;
        }
        self.planning_hist.record_duration_ns(planning);
        self.trace.record_with_id(
            plan_span,
            "plan",
            group_sid,
            group_span,
            planning_started,
            planning,
            format!(
                "{} format group(s) over {} lanes",
                planned.len(),
                lanes.len()
            ),
        );

        // Execute per format group: one source phase, one shared frame
        // ring, every member lane shipping from it.
        let mut group_encodes = ShipRollup::default();
        let mut shared_reuse: u64 = 0;
        let mut ring_fallbacks: u64 = 0;
        for (fmt, members, plan, cache_hit) in &planned {
            let fmt = *fmt;
            let primary = members[0];
            let exec_span = self.trace.allocate_id();
            let exec_started = Instant::now();
            for &li in members {
                let lane = &mut lanes[li];
                lane.metrics.planning = planning;
                lane.metrics.plan_cache_hit = *cache_hit;
                lane.shared.set_state(SessionState::Executing);
                self.events.push(
                    lane.shared.id,
                    exec_span,
                    EventKind::ExecutionStarted,
                    format!(
                        "estimated cost {:.1} via {} (publish fanout {})",
                        plan.cost,
                        lane.metrics.route,
                        members.len()
                    ),
                );
            }
            self.admission.record_plan_cost(plan.cost);
            let counters_before = request.source.counters;
            let cross = cross_ports_in_consumer_order(&self.schema, &plan.program);
            let source = execute_source_phase_streaming(
                &self.schema,
                &request.source_frag,
                &request.target_frag,
                &plan.program,
                &mut request.source,
                None,
                &mut |_feeds| {},
            );
            let mut batches: Vec<PendingBatch> = Vec::new();
            let mut port_of: HashMap<u64, PortRef> = HashMap::new();
            let mut stream_tables: Option<HashMap<PortRef, (usize, String)>> = None;
            match source {
                Ok((phase, group_outcome)) => {
                    let mut missing = None;
                    for c in &cross {
                        let Some(feed) = phase.feeds.get(&c.port) else {
                            missing = Some(format!("missing feed for port {:?}", c.port));
                            break;
                        };
                        for batch in feed_batches(feed, batch_rows) {
                            let seq = batches.len() as u64;
                            port_of.insert(seq, c.port);
                            batches.push(PendingBatch {
                                seq,
                                label: c.label.clone(),
                                feed: batch,
                            });
                        }
                    }
                    match missing {
                        None => {
                            // The group's one source phase (and one
                            // probe) bill to the primary lane, so the
                            // aggregate sees them exactly once.
                            lanes[primary].outcome = group_outcome;
                            lanes[primary].metrics.source_counters =
                                counters_delta(request.source.counters, counters_before);
                            stream_tables = writes_stream_directly(&plan.program)
                                .then(|| direct_write_tables(&plan.program, &request.target_frag));
                        }
                        Some(e) => {
                            for &li in members {
                                lanes[li].failure.get_or_insert(e.clone());
                            }
                        }
                    }
                }
                Err(e) => {
                    let diag = e.to_string();
                    for &li in members {
                        lanes[li].failure.get_or_insert(diag.clone());
                    }
                }
            }
            // The shared frame ring: frames[i] is encoded by the first
            // lane to need it and dropped once every active lane moved
            // past it, so resident frames are bounded by the spread
            // between the fastest and slowest lane (≤ lag_cap).
            let mut frames: Vec<Option<Arc<Vec<u8>>>> = vec![None; batches.len()];
            let mut ring_floor = 0usize;
            let mut encode_buf: Vec<u8> = Vec::new();
            let primary_slot = Arc::clone(&lanes[primary].slot);
            // Decode-once cache: every lane receives byte-identical
            // frames (the shipper checksums end to end), so the group
            // parses each delivered frame once and hands later lanes a
            // clone of the decoded feed — the decode bill, like the
            // encode bill, is per *frame*, not per subscriber. An entry
            // dies with its last expected absorption; a lane that fails
            // before absorbing strands its count, bounded by the batch
            // list and freed when the group retires.
            let mut decoded_cache: HashMap<u64, (Feed, usize)> = HashMap::new();
            // Snapshot-once cache, same argument: every successful lane
            // commits identical content, so the first lane to settle
            // clones its committed tables into a shared snapshot and
            // the rest record the same `Arc` under their own routes.
            let mut group_snapshot: Option<Snapshot> = None;
            loop {
                let mut progressed = false;
                for &li in members {
                    if lanes[li].settled {
                        continue;
                    }
                    {
                        let lane = &mut lanes[li];
                        if lane.shared.is_cancelled() && lane.failure.is_none() {
                            lane.cancelled = true;
                        }
                        // Keep the lane's window full from the ring.
                        while lane.failure.is_none()
                            && !lane.cancelled
                            && lane.inflight < depth
                            && lane.cursor < batches.len()
                        {
                            let idx = lane.cursor;
                            let frame = match &frames[idx] {
                                Some(frame) => {
                                    shared_reuse += 1;
                                    Arc::clone(frame)
                                }
                                None => {
                                    let batch = &batches[idx];
                                    let start = Instant::now();
                                    // One context for the whole group:
                                    // every subscriber's receiver spans
                                    // stitch under the group's exec span
                                    // and share the group-span trace id.
                                    let ctx = (group_span != NO_SPAN).then_some(TraceContext {
                                        trace_id: group_span,
                                        parent_span: exec_span,
                                    });
                                    let len = encode_in_format_with_context_into(
                                        &mut encode_buf,
                                        &batch.feed,
                                        fmt,
                                        ctx,
                                    );
                                    let ns = start.elapsed().as_nanos() as u64;
                                    group_encodes.messages_serialized += 1;
                                    group_encodes.bytes_encoded += len as u64;
                                    group_encodes.encode_ns += ns;
                                    primary_slot
                                        .counters
                                        .bytes_encoded
                                        .fetch_add(len as u64, Ordering::Relaxed);
                                    primary_slot
                                        .counters
                                        .encode_ns
                                        .fetch_add(ns, Ordering::Relaxed);
                                    self.encode_hist.record(ns);
                                    self.trace.record(
                                        "encode",
                                        lane.shared.id,
                                        exec_span,
                                        start,
                                        Duration::from_nanos(ns),
                                        format!("{len} bytes, shared ×{}", members.len()),
                                    );
                                    let soap_label = match (fmt, ctx) {
                                        (WireFormat::Xml, Some(ctx)) => {
                                            label_with_context(&batch.label, ctx)
                                        }
                                        _ => batch.label.clone(),
                                    };
                                    let frame = Arc::new(
                                        Request::soap_post(
                                            "/exchange",
                                            &soap_label,
                                            encode_buf.clone(),
                                        )
                                        .to_bytes(),
                                    );
                                    frames[idx] = Some(Arc::clone(&frame));
                                    frame
                                }
                            };
                            let inbox = Arc::clone(&lane.inbox);
                            self.engine.submit(ShipRequest {
                                session: Arc::clone(&lane.shared),
                                slot: Arc::clone(&lane.slot),
                                seq: batches[idx].seq,
                                label: batches[idx].label.clone(),
                                message: frame,
                                policy: self.config.shipping,
                                budget: Arc::clone(&lane.budget),
                                parent_span: exec_span,
                                on_done: Box::new(move |result| {
                                    inbox.lock().unwrap().push(result);
                                }),
                            });
                            lane.inflight += 1;
                            lane.cursor += 1;
                            lane.shared.set_state(SessionState::Shipping);
                            progressed = true;
                        }
                        // Absorb whatever landed.
                        let results = std::mem::take(&mut *lane.inbox.lock().unwrap());
                        for result in results {
                            progressed = true;
                            lane.inflight -= 1;
                            lane.completed += 1;
                            let stats = result.stats;
                            lane.rollup.wire_bytes += stats.wire_bytes;
                            lane.rollup.chunks_shipped += stats.chunks_shipped;
                            lane.rollup.chunks_resumed += stats.chunks_resumed;
                            lane.rollup.chunks_deduped += stats.chunks_deduped;
                            lane.rollup.chunks_retried += stats.chunks_retried;
                            lane.rollup.retry_backoff += stats.retry_backoff;
                            match result.outcome {
                                Ok(delivered) => {
                                    lane.outcome.times.communication += result.elapsed;
                                    lane.outcome.messages += 1;
                                    let decoded = match decoded_cache.entry(result.seq) {
                                        std::collections::hash_map::Entry::Occupied(mut cached) => {
                                            cached.get_mut().1 -= 1;
                                            if cached.get().1 == 0 {
                                                Ok(cached.remove().0)
                                            } else {
                                                Ok(cached.get().0.clone())
                                            }
                                        }
                                        std::collections::hash_map::Entry::Vacant(vacant) => {
                                            let decode_started = Instant::now();
                                            Request::parse(&delivered)
                                                .map_err(|e| e.to_string())
                                                .and_then(|arrived| {
                                                    let (feed, ctx) = decode_any_ctx(&arrived.body)
                                                        .map_err(|e| e.to_string())?;
                                                    let ctx = ctx
                                                        .or_else(|| soap_action_context(&arrived));
                                                    let (parent, trace_id) = ctx
                                                        .map_or((exec_span, group_span), |c| {
                                                            (c.parent_span, c.trace_id)
                                                        });
                                                    self.trace.record_with_context(
                                                        self.trace.allocate_id(),
                                                        "decode",
                                                        lane.shared.id,
                                                        parent,
                                                        trace_id,
                                                        decode_started,
                                                        decode_started.elapsed(),
                                                        format!(
                                                            "batch {}, shared ×{}",
                                                            result.seq,
                                                            members.len()
                                                        ),
                                                    );
                                                    Ok(feed)
                                                })
                                                .inspect(|feed| {
                                                    if members.len() > 1 {
                                                        vacant.insert((
                                                            feed.clone(),
                                                            members.len() - 1,
                                                        ));
                                                    }
                                                })
                                        }
                                    };
                                    match decoded {
                                        Ok(feed) => {
                                            lane.decoded.insert(result.seq, feed);
                                            let stage_started = Instant::now();
                                            let staged_from = lane.next_stage_seq;
                                            if let Err(e) = stage_publish_lane(
                                                lane,
                                                stream_tables.as_ref(),
                                                &port_of,
                                            ) {
                                                lane.failure.get_or_insert(e);
                                            }
                                            let staged = lane.next_stage_seq - staged_from;
                                            if staged > 0 {
                                                self.trace.record_with_context(
                                                    self.trace.allocate_id(),
                                                    "stage",
                                                    lane.shared.id,
                                                    exec_span,
                                                    group_span,
                                                    stage_started,
                                                    stage_started.elapsed(),
                                                    format!(
                                                        "{staged} batch(es) from seq \
                                                         {staged_from}"
                                                    ),
                                                );
                                            }
                                        }
                                        Err(e) => {
                                            lane.failure.get_or_insert(format!(
                                                "batch {} corrupt: {e}",
                                                result.seq
                                            ));
                                        }
                                    }
                                }
                                Err(e) => {
                                    lane.rollup.link_gave_up |= result.link_gave_up;
                                    lane.failure.get_or_insert(e);
                                }
                            }
                        }
                    }
                    // Settle a lane the moment it is done — healthy
                    // lanes commit and report without waiting for the
                    // group's stragglers.
                    if !lanes[li].settled
                        && lanes[li].inflight == 0
                        && (lanes[li].cursor >= batches.len()
                            || lanes[li].failure.is_some()
                            || lanes[li].cancelled)
                    {
                        self.settle_publish_lane(
                            &mut lanes[li],
                            enqueued,
                            plan,
                            stream_tables.as_ref(),
                            &request,
                            exec_span,
                            exec_started,
                            &mut group_snapshot,
                        );
                        progressed = true;
                    }
                }
                // Lag-cap enforcement: a lane trailing the group's
                // fastest by more than `lag_cap` frames is ejected from
                // the shared ring (it fails with a diagnostic and stays
                // resumable as its own two-site re-ship), so one stuck
                // subscriber can neither stall the others nor grow the
                // ring without bound.
                let lead = members
                    .iter()
                    .filter(|&&li| !lanes[li].settled)
                    .map(|&li| lanes[li].completed)
                    .max()
                    .unwrap_or(0);
                for &li in members {
                    let lane = &mut lanes[li];
                    if lane.settled || lane.failure.is_some() || lane.cancelled {
                        continue;
                    }
                    let lag = lead.saturating_sub(lane.completed);
                    if lag > lag_cap {
                        lane.lagged = true;
                        ring_fallbacks += 1;
                        self.flight.shed(|| {
                            format!(
                                "{}: {lag} frames behind publish group (cap {lag_cap})",
                                lane.shared.name
                            )
                        });
                        self.events.push(
                            lane.shared.id,
                            exec_span,
                            EventKind::Shed,
                            format!(
                                "publish lane {} frames behind the group (cap {lag_cap}): \
                                 dropped to per-subscriber re-ship",
                                lag
                            ),
                        );
                        lane.failure = Some(format!(
                            "fell {lag} frames behind the publish group (cap {lag_cap})"
                        ));
                    }
                }
                // Advance the ring floor past frames every live
                // shared-path lane has already submitted.
                let min_cursor = members
                    .iter()
                    .filter(|&&li| {
                        !lanes[li].settled && lanes[li].failure.is_none() && !lanes[li].cancelled
                    })
                    .map(|&li| lanes[li].cursor)
                    .min();
                if let Some(mc) = min_cursor {
                    for frame in frames.iter_mut().take(mc).skip(ring_floor) {
                        *frame = None;
                    }
                    ring_floor = ring_floor.max(mc);
                }
                if members.iter().all(|&li| lanes[li].settled) {
                    break;
                }
                if !progressed {
                    // Volunteer this worker to the engine while the
                    // group's frames ride the wire.
                    self.engine
                        .drive_until(Instant::now() + Duration::from_micros(200));
                }
            }
            // The format group's exec span: parent of every lane's
            // shipping, decode and stage work, child of the group root.
            self.trace.record_with_context(
                exec_span,
                "exec",
                group_sid,
                group_span,
                group_span,
                exec_started,
                exec_started.elapsed(),
                format!(
                    "publish format group [{}] over {} lanes{}",
                    format_name(fmt),
                    members.len(),
                    if *cache_hit { " (plan cache hit)" } else { "" }
                ),
            );
        }
        // Shared-encode accounting lands once, at group scope: lane
        // metrics carry no serialization tallies (a lane did not encode
        // its frames — the group did).
        {
            let mut agg = self.agg.lock().unwrap();
            agg.messages_serialized += group_encodes.messages_serialized;
            agg.bytes_encoded += group_encodes.bytes_encoded;
            agg.encode_ns += group_encodes.encode_ns;
            agg.multicast_encode_shared += shared_reuse;
            agg.multicast_encode_fallback += ring_fallbacks;
        }
        self.available.notify_all();
        self.trace.record_with_context(
            group_span,
            "publish-group",
            group_sid,
            NO_SPAN,
            group_span,
            enqueued,
            enqueued.elapsed(),
            format!(
                "{}: {} lanes in {} format group(s), {} shared-frame reuses, {} ring fallbacks",
                request.name,
                lanes.len(),
                planned.len(),
                shared_reuse,
                ring_fallbacks
            ),
        );
    }

    /// K-site planning for a publish format group: enumerate orderings
    /// exactly as the two-site planner does, but place each one with
    /// the fanout-aware cost model (target work × k, multicast-
    /// amortized shipping). At `fanout ≤ 1` the k-site placers delegate
    /// to the two-site ones, so a single-subscriber publish reproduces
    /// the ordinary session's plan byte for byte.
    fn plan_ksite(
        &self,
        model: &CostModel,
        request: &PublishRequest,
        optimizer: Optimizer,
        fanout: usize,
    ) -> xdx_core::Result<(Program, f64)> {
        let gen =
            xdx_core::gen::Generator::new(&self.schema, &request.source_frag, &request.target_frag);
        match optimizer {
            Optimizer::Greedy => {
                let program = xdx_core::greedy::greedy_program(&gen, model)?;
                ksite_greedy(&self.schema, model, &program, fanout)
            }
            Optimizer::Optimal { ordering_cap } => {
                let orderings = match gen.enumerate_orderings(ordering_cap) {
                    Ok(orderings) if !orderings.is_empty() => orderings,
                    _ => vec![xdx_core::greedy::greedy_program(&gen, model)?],
                };
                let mut best: Option<(Program, f64)> = None;
                for program in &orderings {
                    let (placed, cost) = ksite_optimal(&self.schema, model, program, fanout)?;
                    if best.as_ref().map(|(_, b)| cost < *b).unwrap_or(true) {
                        best = Some((placed, cost));
                    }
                }
                best.ok_or(xdx_core::Error::Unplaceable {
                    detail: "no orderings to place".into(),
                })
            }
        }
    }

    /// Settles one publish lane into its terminal state: the lane-local
    /// analog of [`Inner::settle_exec`]. Runs the lane's target half
    /// (commit+index for direct-write plans, the target phase
    /// otherwise), folds its shipping rollup into its metrics, advances
    /// its route's snapshot log, and keeps a failed lane resumable as an
    /// independent two-site session replaying the group's k-site plan.
    /// Serialization tallies are absent by design — the group encoded
    /// the frames, once, and accounts for them at group scope.
    #[allow(clippy::too_many_arguments)]
    fn settle_publish_lane(
        &self,
        lane: &mut PublishLane,
        enqueued: Instant,
        plan: &Arc<CachedPlan>,
        stream_tables: Option<&HashMap<PortRef, (usize, String)>>,
        request: &PublishRequest,
        exec_span: SpanId,
        exec_started: Instant,
        group_snapshot: &mut Option<Snapshot>,
    ) {
        lane.settled = true;
        let mut metrics = std::mem::take(&mut lane.metrics);
        let mut target = std::mem::take(&mut lane.target);
        let mut outcome = std::mem::take(&mut lane.outcome);
        let rollup = lane.rollup;
        metrics.retry_backoff = rollup.retry_backoff;
        metrics.bytes_shipped = rollup.wire_bytes;
        metrics.chunks_shipped = rollup.chunks_shipped;
        metrics.chunks_resumed = rollup.chunks_resumed;
        metrics.chunks_deduped = rollup.chunks_deduped;
        metrics.chunks_retried = rollup.chunks_retried;
        if lane.cancelled && lane.failure.is_none() {
            target.rollback_staged();
            metrics.target_counters = target.counters;
            self.finish(
                &lane.shared,
                enqueued,
                SessionState::Cancelled,
                metrics,
                None,
                Some("cancelled mid-publish".into()),
            );
            return;
        }
        let settle_started = Instant::now();
        let settled: std::result::Result<ExecOutcome, String> = match lane.failure.take() {
            Some(diagnostic) => {
                target.rollback_staged();
                Err(diagnostic)
            }
            None => {
                let finishing = if stream_tables.is_some() {
                    let mut nodes: Vec<usize> = lane.write_walls.keys().copied().collect();
                    nodes.sort_unstable();
                    for node in nodes {
                        let (started, wall) = lane.write_walls.remove(&node).expect("keyed");
                        outcome.op_samples.push(OpSample {
                            node,
                            op: "Write",
                            location: Location::Target,
                            started,
                            wall,
                        });
                    }
                    commit_and_index(&plan.program, &mut target, &mut outcome)
                        .map_err(|e| e.to_string())
                } else {
                    execute_target_phase(
                        &self.schema,
                        &request.source_frag,
                        &request.target_frag,
                        &plan.program,
                        &mut target,
                        &lane.delivered,
                        &mut outcome,
                    )
                    .map_err(|e| e.to_string())
                };
                finishing.map(|()| outcome)
            }
        };
        metrics.communication = match &settled {
            Ok(out) => out.times.communication,
            Err(_) => Duration::ZERO,
        };
        metrics.target_counters = target.counters;
        self.trace.record(
            "lane",
            lane.shared.id,
            exec_span,
            exec_started,
            exec_started.elapsed(),
            format!(
                "{} → {} [{}]",
                if settled.is_ok() { "ok" } else { "failed" },
                lane.subscriber,
                format_name(lane.wire_format)
            ),
        );
        // The lane's receiver-side settle (target phase / commit+index)
        // is a leaf of the stitched multicast tree: every subscriber
        // contributes one under the group's exec span.
        self.trace.record_with_context(
            self.trace.allocate_id(),
            "settle",
            lane.shared.id,
            exec_span,
            session_trace_id(&lane.shared),
            settle_started,
            settle_started.elapsed(),
            format!(
                "{} @{}",
                if settled.is_ok() {
                    "committed"
                } else {
                    "rolled back"
                },
                lane.subscriber
            ),
        );
        match settled {
            Ok(out) => {
                metrics.messages = out.messages;
                metrics.rows_loaded = out.rows_loaded;
                let fmt = format_name(lane.wire_format);
                for s in &out.op_samples {
                    let loc = location_name(s.location);
                    self.trace.record(
                        s.op,
                        lane.shared.id,
                        exec_span,
                        s.started,
                        s.wall,
                        format!("node {} @{loc}", s.node),
                    );
                    self.metrics
                        .histogram(&format!(
                            "xdx_op_wall_ns{{op=\"{}\",location=\"{loc}\"}}",
                            s.op
                        ))
                        .record_duration_ns(s.wall);
                    if let Some(&predicted) = plan.op_costs.get(s.node) {
                        self.calibration.record_op(
                            s.op,
                            loc,
                            fmt,
                            predicted,
                            s.wall.as_nanos() as u64,
                        );
                    }
                }
                let snapshot_started = Instant::now();
                let tables =
                    Arc::clone(group_snapshot.get_or_insert_with(|| Arc::new(db_tables(&target))));
                self.snapshots.record_shared(&lane.feed_route, tables);
                self.trace.record_with_context(
                    self.trace.allocate_id(),
                    "snapshot",
                    lane.shared.id,
                    exec_span,
                    session_trace_id(&lane.shared),
                    snapshot_started,
                    snapshot_started.elapsed(),
                    format!("route {} advanced", lane.feed_route),
                );
                self.ledger.forget_session(lane.shared.id);
                lane.slot
                    .counters
                    .sessions_completed
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(BreakerTransition::Closed) = lane.slot.breaker.record_success() {
                    self.flight.record(FlightSubsystem::Breaker, || {
                        format!("{}: closed (probe succeeded)", lane.slot.pair())
                    });
                    self.events.push(
                        lane.shared.id,
                        lane.shared.root_span,
                        EventKind::CircuitClosed,
                        format!("{}: probe succeeded", lane.slot.pair()),
                    );
                }
                self.finish(
                    &lane.shared,
                    enqueued,
                    SessionState::Done,
                    metrics,
                    Some(target),
                    None,
                );
            }
            Err(diagnostic) => {
                lane.slot
                    .counters
                    .sessions_failed
                    .fetch_add(1, Ordering::Relaxed);
                if rollup.link_gave_up {
                    if let Some(BreakerTransition::Opened) = lane.slot.breaker.record_failure() {
                        self.flight.record(FlightSubsystem::Breaker, || {
                            format!(
                                "{}: opened, cooldown {:?}",
                                lane.slot.pair(),
                                self.config.breaker_cooldown
                            )
                        });
                        self.events.push(
                            lane.shared.id,
                            lane.shared.root_span,
                            EventKind::CircuitOpened,
                            format!(
                                "{}: cooldown {:?}",
                                lane.slot.pair(),
                                self.config.breaker_cooldown
                            ),
                        );
                        self.shed_queued_route(&lane.slot);
                        self.flight
                            .anomaly(&format!("breaker open on {}", lane.slot.pair()));
                    }
                }
                // The lane resumes as an ordinary two-site session
                // replaying this group's k-site plan: identical program
                // → identical shipment seqs and bytes, so its ledger's
                // acknowledged frames are skipped and only what never
                // landed is re-encoded — per subscriber, the fallback
                // ladder's last rung.
                self.remember_resumable(
                    lane.shared.id,
                    Resumable {
                        request: publish_lane_request(request, &lane.subscriber),
                        plan: Some(Arc::clone(plan)),
                    },
                );
                self.finish(
                    &lane.shared,
                    enqueued,
                    SessionState::Failed,
                    metrics,
                    Some(target),
                    Some(diagnostic),
                );
            }
        }
    }

    fn finish(
        &self,
        shared: &SessionShared,
        enqueued: Instant,
        state: SessionState,
        mut metrics: SessionMetrics,
        target: Option<Database>,
        diagnostic: Option<String>,
    ) {
        metrics.total_wall = enqueued.elapsed();
        {
            let mut agg = self.agg.lock().unwrap();
            agg.planning_probes += metrics.planning_probes as u64;
            agg.messages_serialized += metrics.messages_serialized as u64;
            agg.bytes_shipped += metrics.bytes_shipped;
            agg.bytes_encoded += metrics.bytes_encoded;
            agg.encode_ns += metrics.encode_ns;
            agg.chunks_shipped += metrics.chunks_shipped;
            agg.chunks_resumed += metrics.chunks_resumed;
            agg.chunks_deduped += metrics.chunks_deduped;
            agg.chunks_retried += metrics.chunks_retried;
            agg.delta_patch_bytes += metrics.delta_patch_bytes;
            agg.delta_patches_applied += metrics.delta_patches_applied;
            agg.delta_full_chosen += metrics.delta_full_chosen;
            agg.delta_full_fallbacks += metrics.delta_full_fallbacks;
            agg.delta_chain_composed += metrics.delta_chain_composed;
            agg.source_counters.merge(&metrics.source_counters);
            agg.target_counters.merge(&metrics.target_counters);
            match state {
                SessionState::Done => {
                    agg.completed += 1;
                    agg.latencies.push_back(metrics.total_wall);
                    // The latency window is bounded: a soak pushing
                    // hundreds of thousands of sessions must not grow
                    // the aggregate without limit. Percentile math runs
                    // over this sliding window; the lossless histogram
                    // keeps the full distribution.
                    if agg.latencies.len() > LATENCY_WINDOW {
                        agg.latencies.pop_front();
                    }
                }
                SessionState::Failed => agg.failed += 1,
                SessionState::Cancelled => agg.cancelled += 1,
                _ => unreachable!("finish takes a terminal state"),
            }
        }
        if state == SessionState::Done {
            self.latency_hist.record_duration_ns(metrics.total_wall);
            // Feed the admission estimator with the observed service
            // time (wall minus queue wait — the queue's own delay is
            // modeled separately from depth).
            self.admission
                .record_service(metrics.total_wall.saturating_sub(metrics.queue_wait));
            if !metrics.tenant.is_empty() {
                self.tenant_entry(&metrics.tenant, |t| t.completed += 1);
            }
        }
        if metrics.delta_patch_bytes
            + metrics.delta_patches_applied
            + metrics.delta_full_chosen
            + metrics.delta_full_fallbacks
            > 0
        {
            self.calibration.record_delta(
                metrics.delta_patch_bytes,
                metrics.delta_patches_applied,
                metrics.delta_full_chosen,
                metrics.delta_full_fallbacks,
            );
        }
        let kind = match state {
            SessionState::Done => EventKind::Completed,
            SessionState::Failed => EventKind::Failed,
            _ => EventKind::Cancelled,
        };
        let detail = diagnostic.clone().unwrap_or_else(|| {
            format!(
                "{} rows, {} chunks, {} retries",
                metrics.rows_loaded, metrics.chunks_shipped, metrics.chunks_retried
            )
        });
        if state == SessionState::Failed {
            // A failed session is a flight-recorder anomaly: the rings
            // dump (when a dump dir is configured) with the transitions
            // that led up to it.
            self.flight.anomaly(&format!(
                "session {} ({}) failed: {}",
                shared.id,
                shared.name,
                diagnostic.as_deref().unwrap_or("no diagnostic")
            ));
        }
        self.events.push(shared.id, shared.root_span, kind, detail);
        // The session's root span closes last, covering queue wait
        // through the terminal transition; its children (queued, plan,
        // exec, ship, encode, operators) were recorded before it, so
        // FIFO eviction can never orphan a surviving child — and it is
        // recorded for *every* terminal state, so failed and shed
        // sessions keep their span subtrees too. Multicast lanes parent
        // under their publish group's span and share its trace id.
        self.trace.record_with_context(
            shared.root_span,
            "session",
            shared.id,
            shared.root_parent,
            session_trace_id(shared),
            enqueued,
            metrics.total_wall,
            format!("{}: {state:?} via {}", shared.name, metrics.route),
        );
        shared.finish(SessionResult {
            state,
            metrics,
            target,
            diagnostic,
        });
    }
}
