//! The flight recorder: always-on, bounded, per-subsystem rings of the
//! runtime's last internal transitions, dumped to disk on anomaly.
//!
//! Metrics say *how much*; spans say *where the time went*; neither
//! says *what the engine was doing right before it failed*. The
//! recorder keeps a small ring per subsystem — engine lane transitions,
//! timer-wheel deadlines, breaker flips, shed decisions — cheap enough
//! to leave on in production (one mutex push per entry, bounded
//! memory). When an anomaly fires — a session failure, a breaker
//! opening, a shed-rate spike, or the stall watchdog — the rings are
//! dumped as JSONL into the configured directory, capturing the
//! transitions that led up to the incident instead of the aggregate
//! state after it.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Entries retained per subsystem ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Shed decisions within [`SHED_SPIKE_WINDOW`] that count as a spike.
pub const SHED_SPIKE_THRESHOLD: usize = 32;

/// Window for shed-rate spike detection.
pub const SHED_SPIKE_WINDOW: Duration = Duration::from_secs(1);

/// Minimum spacing between on-disk dumps, so a failure storm produces
/// a few dumps, not thousands.
const DUMP_COOLDOWN: Duration = Duration::from_millis(250);

/// Hard cap on dump files per recorder lifetime.
const MAX_DUMPS: u64 = 32;

/// The subsystems with dedicated rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightSubsystem {
    /// Engine lane transitions: reservations, settles, retries, parks.
    Lane,
    /// Timer-wheel deadline schedules and expiries.
    Timer,
    /// Circuit-breaker flips (open / half-open / close).
    Breaker,
    /// Admission shed decisions.
    Shed,
}

impl FlightSubsystem {
    const ALL: [FlightSubsystem; 4] = [
        FlightSubsystem::Lane,
        FlightSubsystem::Timer,
        FlightSubsystem::Breaker,
        FlightSubsystem::Shed,
    ];

    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            FlightSubsystem::Lane => "lane",
            FlightSubsystem::Timer => "timer",
            FlightSubsystem::Breaker => "breaker",
            FlightSubsystem::Shed => "shed",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One retained transition.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// Microseconds since the recorder epoch (the runtime's creation).
    pub at_us: u64,
    /// Which ring the entry came from.
    pub subsystem: FlightSubsystem,
    /// What happened.
    pub detail: String,
}

/// The recorder itself. Thread-safe; every hot-path call is one mutex
/// push into a bounded ring (or a no-op when disabled).
pub struct FlightRecorder {
    epoch: Instant,
    enabled: bool,
    capacity: usize,
    rings: [Mutex<VecDeque<(u64, String)>>; 4],
    /// Recent shed instants, for spike detection.
    shed_times: Mutex<VecDeque<Instant>>,
    anomalies: AtomicU64,
    dumps: AtomicU64,
    dump_dir: Mutex<Option<PathBuf>>,
    last_dump: Mutex<Option<Instant>>,
}

impl FlightRecorder {
    pub fn new(enabled: bool, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            enabled,
            capacity: capacity.max(1),
            rings: Default::default(),
            shed_times: Mutex::new(VecDeque::new()),
            anomalies: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            dump_dir: Mutex::new(None),
            last_dump: Mutex::new(None),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Directory anomaly dumps are written to; `None` (the default)
    /// records in memory only.
    pub fn set_dump_dir(&self, dir: Option<PathBuf>) {
        *self.dump_dir.lock().unwrap() = dir;
    }

    /// Records a transition. The detail is built lazily so a disabled
    /// recorder costs one branch.
    pub fn record(&self, subsystem: FlightSubsystem, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let mut ring = self.rings[subsystem.index()].lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back((at_us, detail()));
    }

    /// Records a shed decision and fires the shed-rate-spike anomaly
    /// when [`SHED_SPIKE_THRESHOLD`] sheds land within
    /// [`SHED_SPIKE_WINDOW`].
    pub fn shed(&self, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.record(FlightSubsystem::Shed, detail);
        let now = Instant::now();
        let spike = {
            let mut times = self.shed_times.lock().unwrap();
            times.push_back(now);
            while times
                .front()
                .is_some_and(|t| now.duration_since(*t) > SHED_SPIKE_WINDOW)
            {
                times.pop_front();
            }
            times.len() >= SHED_SPIKE_THRESHOLD
        };
        if spike {
            self.anomaly("shed-rate spike");
        }
    }

    /// Registers an anomaly: counts it and, when a dump directory is
    /// configured, writes the rings to `flight-<n>.jsonl` (rate-limited
    /// and capped). Returns the dump path when a file was written.
    pub fn anomaly(&self, reason: &str) -> Option<PathBuf> {
        if !self.enabled {
            return None;
        }
        self.anomalies.fetch_add(1, Ordering::Relaxed);
        let dir = self.dump_dir.lock().unwrap().clone()?;
        {
            let mut last = self.last_dump.lock().unwrap();
            let now = Instant::now();
            if last.is_some_and(|t| now.duration_since(t) < DUMP_COOLDOWN) {
                return None;
            }
            *last = Some(now);
        }
        let n = self.dumps.fetch_add(1, Ordering::Relaxed);
        if n >= MAX_DUMPS {
            self.dumps.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        let path = dir.join(format!("flight-{n}.jsonl"));
        let mut body = format!(
            "{{\"anomaly\":\"{}\",\"at_us\":{}}}\n",
            json_escape(reason),
            self.epoch.elapsed().as_micros() as u64
        );
        body.push_str(&self.to_jsonl());
        if std::fs::create_dir_all(&dir).is_err() || std::fs::write(&path, body).is_err() {
            return None;
        }
        Some(path)
    }

    /// Anomalies registered so far (dumped to disk or not).
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// Dump files written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Every retained entry, merged across rings in time order.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut out = Vec::new();
        for sub in FlightSubsystem::ALL {
            let ring = self.rings[sub.index()].lock().unwrap();
            out.extend(ring.iter().map(|(at_us, detail)| FlightEntry {
                at_us: *at_us,
                subsystem: sub,
                detail: detail.clone(),
            }));
        }
        out.sort_by_key(|e| e.at_us);
        out
    }

    /// The rings as JSONL, one entry per line, time order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&format!(
                "{{\"at_us\":{},\"subsystem\":\"{}\",\"detail\":\"{}\"}}\n",
                e.at_us,
                e.subsystem.name(),
                json_escape(&e.detail),
            ));
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.enabled)
            .field("capacity", &self.capacity)
            .field("anomalies", &self.anomalies())
            .field("dumps", &self.dumps())
            .finish()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = FlightRecorder::new(false, 8);
        rec.record(FlightSubsystem::Lane, || "x".into());
        rec.shed(|| "y".into());
        assert!(rec.anomaly("boom").is_none());
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.anomalies(), 0);
    }

    #[test]
    fn rings_bound_per_subsystem_and_merge_in_time_order() {
        let rec = FlightRecorder::new(true, 4);
        for i in 0..10 {
            rec.record(FlightSubsystem::Lane, || format!("lane {i}"));
        }
        rec.record(FlightSubsystem::Breaker, || "flip".into());
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 5, "4 retained lane entries + 1 breaker");
        assert!(snap.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(
            snap.iter()
                .filter(|e| e.subsystem == FlightSubsystem::Lane)
                .count(),
            4
        );
        // The oldest lane entries were evicted.
        assert!(rec.to_jsonl().contains("lane 9"));
        assert!(!rec.to_jsonl().contains("lane 0"));
    }

    #[test]
    fn shed_spike_fires_anomaly() {
        let rec = FlightRecorder::new(true, 64);
        for i in 0..SHED_SPIKE_THRESHOLD {
            rec.shed(|| format!("shed {i}"));
        }
        assert!(rec.anomalies() >= 1, "spike threshold reached");
    }

    #[test]
    fn anomaly_dumps_once_per_cooldown_into_dir() {
        let dir = std::env::temp_dir().join(format!("xdx-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(true, 8);
        rec.record(FlightSubsystem::Timer, || "deadline +500us".into());
        // No dir configured: counted, not dumped.
        assert!(rec.anomaly("first").is_none());
        rec.set_dump_dir(Some(dir.clone()));
        let path = rec.anomaly("session failure").expect("dump written");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"anomaly\":\"session failure\""));
        assert!(body.contains("deadline +500us"));
        // Within the cooldown, a second anomaly is counted but not
        // dumped.
        assert!(rec.anomaly("second").is_none());
        assert_eq!(rec.anomalies(), 3);
        assert_eq!(rec.dumps(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
