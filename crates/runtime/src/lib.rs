//! # xdx-runtime — a multi-tenant exchange-session runtime
//!
//! The paper evaluates one data exchange at a time: a source, a target,
//! a single optimized program over a quiet wide-area link. A deployed
//! discovery agency serves a *fleet* — many source/target pairs
//! exchanging concurrently, contending for the same wide-area path,
//! re-planning the same shapes over and over, and occasionally losing
//! messages to a real network. This crate provides that operational
//! layer on top of `xdx-core`:
//!
//! * **Session manager** — [`Runtime::submit`] admits
//!   [`ExchangeRequest`]s into a bounded priority/FIFO queue (admission
//!   control via [`RuntimeConfig::max_queue_depth`]); sessions move
//!   `Queued → Planning → Executing ⇄ Shipping → Done/Failed`, support
//!   cooperative cancellation, and hand back a [`SessionResult`] through
//!   their [`SessionHandle`].
//! * **Worker pool** — a fixed number of threads drain the queue;
//!   cross-edge shipments resolve the session's per-`(source, target)`
//!   pair [`xdx_net::Link`] from the [`LinkRegistry`], so sessions on
//!   disjoint pairs ship fully in parallel while same-pair sessions
//!   interleave at chunk granularity on their shared link. Each link
//!   carries its own fault stream, counters and [`CircuitBreaker`].
//! * **Fault-tolerant shipping** — serialized messages are chunked,
//!   checksummed and retried with exponential backoff against the
//!   link's probabilistic fault model ([`xdx_net::FaultProfile`]); a
//!   per-session retry budget degrades hopeless sessions to `Failed`
//!   with a diagnostic instead of wedging the link. Either the target
//!   receives exactly the bytes the source sent, or the session fails
//!   loudly — never silent row loss.
//! * **Plan cache** — optimizer answers are shared across sessions via
//!   a stable shape-keyed [`PlanCache`] with hit/miss counters.
//! * **Observability** — per-session [`SessionMetrics`], aggregate
//!   [`RuntimeStats`] (with latency percentiles), and a structured
//!   [`EventLog`].
//!
//! ```
//! use xdx_runtime::{ExchangeRequest, Runtime, RuntimeConfig};
//!
//! let schema = xdx_xmark::schema();
//! let doc = xdx_xmark::generate(xdx_xmark::GenConfig::sized(20_000));
//! let mf = xdx_xmark::mf(&schema);
//! let lf = xdx_xmark::lf(&schema);
//!
//! let runtime = Runtime::start(schema.clone(), RuntimeConfig::default());
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let source = xdx_xmark::load_source(&doc, &schema, &mf).unwrap();
//!         let request =
//!             ExchangeRequest::new(format!("s{i}"), source, mf.clone(), lf.clone());
//!         runtime.submit(request).unwrap()
//!     })
//!     .collect();
//! for handle in handles {
//!     assert!(handle.wait().target.is_some());
//! }
//! let stats = runtime.shutdown();
//! assert_eq!(stats.completed, 4);
//! assert!(stats.plan_cache_hits > 0); // same shape, shared plan
//! ```

pub mod admission;
pub mod breaker;
pub mod cache;
pub(crate) mod engine;
pub mod events;
pub mod fair;
pub mod flight;
pub(crate) mod introspect;
pub mod ledger;
pub mod registry;
pub mod runtime;
pub mod session;
pub mod shipper;
pub mod wheel;

pub use admission::AdmissionController;
pub use breaker::{BreakerTransition, CircuitBreaker};
pub use cache::{plan_key, plan_key_with_fanout, CachedPlan, PlanCache, PlanKey};
pub use events::{Event, EventKind, EventLog, DEFAULT_EVENT_CAPACITY};
pub use fair::{FairQueue, Popped, DEFAULT_AGING_INTERVAL};
pub use flight::{
    FlightEntry, FlightRecorder, FlightSubsystem, DEFAULT_FLIGHT_CAPACITY, SHED_SPIKE_THRESHOLD,
    SHED_SPIKE_WINDOW,
};
pub use ledger::{Filed, ReassemblyLedger, DEFAULT_LEDGER_CAPACITY};
pub use registry::{LinkRegistry, LinkSlot, LinkStats};
pub use runtime::{
    ConsolidationOutcome, PublishHandle, Runtime, RuntimeConfig, RuntimeStats, SubmitError,
    TenantStats,
};
pub use session::{
    ExchangeRequest, Priority, PublishRequest, SessionHandle, SessionId, SessionMetrics,
    SessionResult, SessionState, DEFAULT_PUBLISH_LAG_CAP, DEFAULT_SOURCE_ENDPOINT,
    DEFAULT_TARGET_ENDPOINT,
};
pub use shipper::ShippingPolicy;
pub use wheel::TimerWheel;
pub use xdx_core::WireFormat;
pub use xdx_trace::{
    critical_path, CalibrationConfig, CalibrationReport, CommCalibration, CriticalPathReport,
    DeltaCalibration, HistogramSnapshot, OpCalibration, RoutePath, SessionPath, SpanId, SpanRecord,
    STAGES,
};
