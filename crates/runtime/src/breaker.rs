//! Per-link circuit breaker: when the shared wide-area link eats K
//! consecutive shipments, admitting more sessions just burns retry
//! budgets. The breaker *opens* — new submissions are refused with a
//! `retry_after` hint — then *half-opens* after a cooldown, letting one
//! probe session through. A probe success closes the breaker; a probe
//! failure re-opens it for another cooldown.
//!
//! Only genuine link failures count: sessions that were cancelled or ran
//! past their deadline say nothing about link health and leave the
//! breaker untouched.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A state transition worth logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Consecutive failures crossed the threshold (or the probe failed).
    Opened,
    /// The cooldown elapsed; the next session is a probe.
    HalfOpened,
    /// A probe (or any success) closed the breaker.
    Closed,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { since: Instant },
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    consecutive_failures: u32,
    state: State,
}

/// Thread-shared circuit breaker guarding admission to a link.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive link
    /// failures and half-opens `cooldown` later.
    ///
    /// # Panics
    /// If `threshold` is zero (the breaker would never admit anything).
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        assert!(threshold > 0, "breaker threshold must be at least 1");
        CircuitBreaker {
            threshold,
            cooldown,
            inner: Mutex::new(BreakerInner {
                consecutive_failures: 0,
                state: State::Closed,
            }),
        }
    }

    /// Gate for admission. `Ok(None)` — admitted; `Ok(Some(HalfOpened))`
    /// — admitted as the cooldown-ending probe; `Err(retry_after)` — the
    /// breaker is open, come back later.
    pub fn try_admit(&self) -> Result<Option<BreakerTransition>, Duration> {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            State::Closed | State::HalfOpen => Ok(None),
            State::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cooldown {
                    inner.state = State::HalfOpen;
                    Ok(Some(BreakerTransition::HalfOpened))
                } else {
                    Err(self.cooldown - elapsed)
                }
            }
        }
    }

    /// Records a session whose shipments all landed.
    pub fn record_success(&self) -> Option<BreakerTransition> {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = 0;
        match inner.state {
            State::HalfOpen => {
                inner.state = State::Closed;
                Some(BreakerTransition::Closed)
            }
            _ => None,
        }
    }

    /// Records a session the link genuinely failed (retry budget or
    /// attempt cap exhausted — not cancellation, not a deadline).
    pub fn record_failure(&self) -> Option<BreakerTransition> {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures += 1;
        let should_open = match inner.state {
            // A failed probe re-opens immediately.
            State::HalfOpen => true,
            State::Closed => inner.consecutive_failures >= self.threshold,
            State::Open { .. } => false,
        };
        if should_open {
            inner.state = State::Open {
                since: Instant::now(),
            };
            Some(BreakerTransition::Opened)
        } else {
            None
        }
    }

    /// True while the breaker refuses admissions (cooldown running).
    pub fn is_open(&self) -> bool {
        matches!(self.inner.lock().unwrap().state, State::Open { .. })
    }

    /// Cooldown left before the breaker half-opens; `None` unless open.
    /// This is the `retry_after` hint shed sessions hand back.
    pub fn cooldown_remaining(&self) -> Option<Duration> {
        match self.inner.lock().unwrap().state {
            State::Open { since } => Some(self.cooldown.saturating_sub(since.elapsed())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert_eq!(b.record_failure(), None);
        assert_eq!(b.record_failure(), None);
        assert_eq!(b.record_failure(), Some(BreakerTransition::Opened));
        assert!(b.is_open());
        let retry_after = b.try_admit().unwrap_err();
        assert!(retry_after <= Duration::from_secs(60));
        let remaining = b.cooldown_remaining().unwrap();
        assert!(remaining <= Duration::from_secs(60));
        let closed = CircuitBreaker::new(3, Duration::from_secs(60));
        assert_eq!(closed.cooldown_remaining(), None);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.record_failure();
        assert_eq!(b.record_success(), None, "closed stays closed");
        b.record_failure();
        assert_eq!(b.record_failure(), Some(BreakerTransition::Opened));
    }

    #[test]
    fn half_opens_after_cooldown_then_closes_on_probe_success() {
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        assert_eq!(b.record_failure(), Some(BreakerTransition::Opened));
        assert!(b.try_admit().is_err(), "cooldown still running");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            b.try_admit().unwrap(),
            Some(BreakerTransition::HalfOpened),
            "cooldown elapsed: probe admitted"
        );
        assert_eq!(b.record_success(), Some(BreakerTransition::Closed));
        assert!(!b.is_open());
        assert_eq!(b.try_admit().unwrap(), None);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let b = CircuitBreaker::new(5, Duration::from_millis(5));
        for _ in 0..5 {
            b.record_failure();
        }
        assert!(b.is_open());
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.try_admit().is_ok());
        assert_eq!(
            b.record_failure(),
            Some(BreakerTransition::Opened),
            "one probe failure trips it again — no threshold wait"
        );
        assert!(b.is_open());
    }
}
