//! Exchange sessions: the unit of work the runtime admits, queues,
//! plans, executes and accounts for.
//!
//! A session's public face is the [`SessionHandle`] returned by
//! `Runtime::submit`: callers observe state transitions, request
//! cancellation, and block on the terminal [`SessionResult`]. Internally
//! the runtime and the submitting thread share a [`SessionShared`] cell
//! guarded by a mutex + condvar.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xdx_core::{Fragmentation, Optimizer, SystemProfile, WireFormat};
use xdx_relational::{Counters, Database};

/// Default source endpoint of a request's route.
pub const DEFAULT_SOURCE_ENDPOINT: &str = "source";
/// Default target endpoint of a request's route.
pub const DEFAULT_TARGET_ENDPOINT: &str = "target";

/// Runtime-assigned session identifier (1-based, monotonically
/// increasing per runtime instance).
pub type SessionId = u64;

/// Scheduling priority. Higher priorities are dequeued first; within a
/// priority class the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: bulk refreshes, backfills.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Interactive or deadline-driven exchanges.
    High,
}

/// Lifecycle of a session.
///
/// ```text
/// Queued → Planning → Executing ⇄ Shipping → Done
///    \         \          \________________→ Failed
///     \________ \___________________________→ Cancelled
/// ```
///
/// `Executing` and `Shipping` alternate: the executor computes feeds,
/// ships each cross-edge (state `Shipping` while a shipment is in
/// flight), then resumes computing. `Done`, `Failed` and `Cancelled` are
/// terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is probing statistics and optimizing the program.
    Planning,
    /// The data-transfer program is running.
    Executing,
    /// A cross-edge shipment is in flight (chunks, possibly retries).
    Shipping,
    /// All rows landed and indexes were rebuilt.
    Done,
    /// The session gave up; `SessionResult::diagnostic` says why.
    Failed,
    /// Cancellation was observed before completion.
    Cancelled,
}

impl SessionState {
    /// True for `Done`, `Failed` and `Cancelled`.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionState::Done | SessionState::Failed | SessionState::Cancelled
        )
    }
}

/// One exchange to run: a source database plus the two registered
/// fragmentations, exactly the ingredients of a `DataExchange`.
///
/// The request *owns* its source database — sessions run concurrently,
/// and the executor mutates source-side scan counters — and receives a
/// freshly created target database back in the [`SessionResult`].
#[derive(Debug)]
pub struct ExchangeRequest {
    /// Human-readable session name (used in logs and the target DB name).
    pub name: String,
    /// The source system's stored fragments.
    pub source: Database,
    /// Source fragmentation (Step-1 registration).
    pub source_frag: Fragmentation,
    /// Target fragmentation (Step-1 registration).
    pub target_frag: Fragmentation,
    /// Scheduling priority.
    pub priority: Priority,
    /// Source system capabilities/speed.
    pub source_profile: SystemProfile,
    /// Target system capabilities/speed.
    pub target_profile: SystemProfile,
    /// Wall-clock budget from admission to completion; a session that
    /// overruns it fails with a `deadline exceeded` diagnostic (and can
    /// be resumed with a fresh budget).
    pub deadline: Option<Duration>,
    /// Source endpoint of the wide-area route this session ships over.
    /// Together with `target_endpoint` it names the `(source, target)`
    /// pair whose registry link carries the session; sessions on
    /// distinct pairs ship in parallel over independent links.
    pub source_endpoint: String,
    /// Target endpoint of the route (see `source_endpoint`).
    pub target_endpoint: String,
    /// Admission-fairness tenant this session bills to. `None` (the
    /// default) bills to the route pair, so one hot `(source, target)`
    /// pair competes as a single tenant; an explicit tag groups
    /// sessions across routes (e.g. per customer).
    pub tenant: Option<String>,
    /// Per-session optimizer override; `None` plans with the runtime's
    /// configured default.
    pub optimizer: Option<Optimizer>,
    /// Per-session wire-format override; `None` ships in the format the
    /// route's endpoints negotiated.
    pub wire_format: Option<WireFormat>,
    /// Feed version the *target* already holds for this route and
    /// fragmentation pair. `Some(v)` asks the planner to ship a delta
    /// patch against the versioned snapshot `v` instead of the full
    /// feeds; if the snapshot aged out, the diff fails, or the patch
    /// would cost more than a full ship, the session falls back to a
    /// full re-ship. `None` (the default) always ships full feeds.
    pub base_version: Option<u64>,
}

impl ExchangeRequest {
    /// A normal-priority request with default system profiles.
    pub fn new(
        name: impl Into<String>,
        source: Database,
        source_frag: Fragmentation,
        target_frag: Fragmentation,
    ) -> ExchangeRequest {
        ExchangeRequest {
            name: name.into(),
            source,
            source_frag,
            target_frag,
            priority: Priority::Normal,
            source_profile: SystemProfile::default(),
            target_profile: SystemProfile::default(),
            deadline: None,
            source_endpoint: DEFAULT_SOURCE_ENDPOINT.into(),
            target_endpoint: DEFAULT_TARGET_ENDPOINT.into(),
            tenant: None,
            optimizer: None,
            wire_format: None,
            base_version: None,
        }
    }

    /// Routes the session over the `(source, target)` endpoint pair —
    /// its shipments use that pair's registry link (created on first
    /// use), independent of every other pair's link.
    pub fn with_route(
        mut self,
        source_endpoint: impl Into<String>,
        target_endpoint: impl Into<String>,
    ) -> ExchangeRequest {
        self.source_endpoint = source_endpoint.into();
        self.target_endpoint = target_endpoint.into();
        self
    }

    /// Overrides the optimizer for this session alone.
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> ExchangeRequest {
        self.optimizer = Some(optimizer);
        self
    }

    /// Overrides the wire format for this session alone, bypassing the
    /// route's negotiation (receivers sniff each frame, so a one-off
    /// format is always safe to ship).
    pub fn with_wire_format(mut self, format: WireFormat) -> ExchangeRequest {
        self.wire_format = Some(format);
        self
    }

    /// Declares that the target already holds feed version `version` of
    /// this route's snapshot log, enabling delta planning: the session
    /// ships a Dewey subtree patch when it is cheaper than the full
    /// feeds, and falls back to a full re-ship otherwise.
    pub fn with_base_version(mut self, version: u64) -> ExchangeRequest {
        self.base_version = Some(version);
        self
    }

    /// Bills the session to an explicit admission-fairness tenant
    /// instead of its route pair. The weighted-fair queue guarantees
    /// each backlogged tenant its share of dequeues, so no tag — and no
    /// route — can starve the rest of the fleet.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> ExchangeRequest {
        self.tenant = Some(tenant.into());
        self
    }

    /// The fairness tenant this request bills to: the explicit
    /// [`with_tenant`](ExchangeRequest::with_tenant) tag, or the route
    /// pair (`source→target`) when untagged.
    pub fn tenant_label(&self) -> String {
        self.tenant
            .clone()
            .unwrap_or_else(|| format!("{}→{}", self.source_endpoint, self.target_endpoint))
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> ExchangeRequest {
        self.priority = priority;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ExchangeRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the system profiles the planner costs against.
    pub fn with_profiles(
        mut self,
        source: SystemProfile,
        target: SystemProfile,
    ) -> ExchangeRequest {
        self.source_profile = source;
        self.target_profile = target;
        self
    }
}

/// A 1→N publish: one source shipping the *same* exchange to a set of
/// subscriber endpoints as a single publish group.
///
/// The runtime plans the group once per distinct `(shape, wire format)`
/// with the k-site placement model ([`xdx_core::ksite`]), runs the
/// source phase once, encodes every operator batch once per format into
/// a shared refcounted frame, and ships those same bytes over each
/// subscriber's own link lane. Per-subscriber ledger acks, retry
/// budgets, circuit breakers and resume stay fully independent: a slow
/// or broken subscriber never stalls the others — beyond
/// [`lag_cap`](PublishRequest::lag_cap) frames of lag it is dropped
/// from the shared buffer and left resumable as an ordinary two-site
/// session (the per-subscriber re-encode/full-ship fallback).
#[derive(Debug)]
pub struct PublishRequest {
    /// Human-readable group name (subscriber sessions are named
    /// `{name}→{subscriber}`).
    pub name: String,
    /// The source system's stored fragments (owned: the group's source
    /// phase mutates scan counters).
    pub source: Database,
    /// Source fragmentation (Step-1 registration).
    pub source_frag: Fragmentation,
    /// Target fragmentation every subscriber registered.
    pub target_frag: Fragmentation,
    /// Source endpoint of every lane's route.
    pub source_endpoint: String,
    /// Subscriber target endpoints; each gets its own session, link
    /// lane, ledger and result.
    pub subscribers: Vec<String>,
    /// Scheduling priority of the group.
    pub priority: Priority,
    /// Source system capabilities/speed.
    pub source_profile: SystemProfile,
    /// Subscriber capabilities/speed (uniform across the group; the
    /// k-site cost model replicates target work per subscriber).
    pub target_profile: SystemProfile,
    /// Admission-fairness tenant the lanes bill to; `None` bills each
    /// lane to its own route pair.
    pub tenant: Option<String>,
    /// Per-group optimizer override; `None` plans with the runtime's
    /// configured default.
    pub optimizer: Option<Optimizer>,
    /// Per-group wire-format override applied to every lane; `None`
    /// lets each lane ship in its route's negotiated format (lanes are
    /// planned and encoded per distinct format).
    pub wire_format: Option<WireFormat>,
    /// Frames a subscriber may trail the group's fastest lane before it
    /// is dropped from the shared frame buffer: the buffer ring only
    /// retains frames between the slowest and fastest active lanes, so
    /// this cap bounds its memory. A dropped lane fails with a
    /// diagnostic and stays resumable as an independent two-site
    /// session (re-encoding only the frames its ledger never saw).
    pub lag_cap: usize,
}

/// Default [`PublishRequest::lag_cap`]: deep enough that transient
/// retries never eject a lane, shallow enough to bound the shared ring.
pub const DEFAULT_PUBLISH_LAG_CAP: usize = 64;

impl PublishRequest {
    /// A normal-priority publish of `source` to `subscribers`.
    pub fn new(
        name: impl Into<String>,
        source: Database,
        source_frag: Fragmentation,
        target_frag: Fragmentation,
        subscribers: Vec<String>,
    ) -> PublishRequest {
        PublishRequest {
            name: name.into(),
            source,
            source_frag,
            target_frag,
            source_endpoint: DEFAULT_SOURCE_ENDPOINT.into(),
            subscribers,
            priority: Priority::Normal,
            source_profile: SystemProfile::default(),
            target_profile: SystemProfile::default(),
            tenant: None,
            optimizer: None,
            wire_format: None,
            lag_cap: DEFAULT_PUBLISH_LAG_CAP,
        }
    }

    /// Sets the source endpoint every lane routes from.
    pub fn with_source_endpoint(mut self, endpoint: impl Into<String>) -> PublishRequest {
        self.source_endpoint = endpoint.into();
        self
    }

    /// Overrides the optimizer for this group alone.
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> PublishRequest {
        self.optimizer = Some(optimizer);
        self
    }

    /// Overrides the wire format of every lane, bypassing per-route
    /// negotiation.
    pub fn with_wire_format(mut self, format: WireFormat) -> PublishRequest {
        self.wire_format = Some(format);
        self
    }

    /// Sets the system profiles the k-site planner costs against.
    pub fn with_profiles(mut self, source: SystemProfile, target: SystemProfile) -> PublishRequest {
        self.source_profile = source;
        self.target_profile = target;
        self
    }

    /// Bills every lane to an explicit admission-fairness tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> PublishRequest {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> PublishRequest {
        self.priority = priority;
        self
    }

    /// Sets the shared-buffer lag cap (clamped to ≥ 1).
    pub fn with_lag_cap(mut self, cap: usize) -> PublishRequest {
        self.lag_cap = cap.max(1);
        self
    }

    /// The fairness tenant a lane to `subscriber` bills to.
    pub fn lane_tenant(&self, subscriber: &str) -> String {
        self.tenant
            .clone()
            .unwrap_or_else(|| format!("{}→{subscriber}", self.source_endpoint))
    }
}

/// Everything measured about one session.
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// Admission to worker pickup.
    pub queue_wait: Duration,
    /// Statistics probe + optimization (or cache lookup).
    pub planning: Duration,
    /// Whether planning was satisfied from the plan cache.
    pub plan_cache_hit: bool,
    /// Statistics probes run during planning: 1 for a normal run, 0 for
    /// a resumed session replaying its checkpointed plan.
    pub planning_probes: u32,
    /// Cross-edge messages serialized from feeds in this run; shipments
    /// replayed from the checkpoint ledger are not re-serialized and not
    /// counted, so a fully checkpointed resume reports 0.
    pub messages_serialized: usize,
    /// The `(source, target)` route the session shipped over, as
    /// `source→target`.
    pub route: String,
    /// The admission-fairness tenant the session billed to (explicit
    /// tag, or the route pair).
    pub tenant: String,
    /// The wire format this session's cross-edge messages were encoded
    /// in (negotiated by the route, or the request's override).
    pub wire_format: WireFormat,
    /// Encoded message bytes produced in this run (logical payload
    /// before chunk framing; a fully checkpointed resume reports 0).
    pub bytes_encoded: u64,
    /// Wall nanoseconds spent encoding messages in this run.
    pub encode_ns: u64,
    /// Simulated link time, including timeout waits and retry backoff.
    pub communication: Duration,
    /// Simulated backoff waits alone (subset of `communication`).
    pub retry_backoff: Duration,
    /// Wire bytes actually transmitted, *including* failed attempts.
    pub bytes_shipped: u64,
    /// Logical cross-edge messages shipped.
    pub messages: usize,
    /// Chunks that arrived intact *during this run* (failed attempts
    /// not counted).
    pub chunks_shipped: u64,
    /// Chunks found already checkpointed in the reassembly ledger and
    /// not re-shipped (nonzero only for resumed sessions).
    pub chunks_resumed: u64,
    /// Duplicate chunk deliveries detected and dropped idempotently.
    pub chunks_deduped: u64,
    /// Chunk transmissions that failed and were retried.
    pub chunks_retried: u64,
    /// Rows loaded into target tables.
    pub rows_loaded: u64,
    /// Encoded Patch-frame bytes shipped by this session (0 for full
    /// re-ships).
    pub delta_patch_bytes: u64,
    /// Delta patches applied transactionally at the target (0 or 1 per
    /// session).
    pub delta_patches_applied: u64,
    /// Delta-eligible sessions where the cost model chose the full
    /// re-ship anyway (patch larger than the full feeds).
    pub delta_full_chosen: u64,
    /// Delta-eligible sessions that fell back to a full re-ship for a
    /// non-cost reason: missing/aged-out snapshot, diff failure, patch
    /// decode failure, or a stale version precondition.
    pub delta_full_fallbacks: u64,
    /// Delta-eligible sessions whose base snapshot had aged out of the
    /// retention window but was reconstructed by composing the retained
    /// per-step patches — the session still shipped a delta (0 or 1).
    pub delta_chain_composed: u64,
    /// Source engine counters after the run.
    pub source_counters: Counters,
    /// Target engine counters after the run.
    pub target_counters: Counters,
    /// Admission to terminal state (host wall clock).
    pub total_wall: Duration,
}

/// Terminal outcome of a session.
#[derive(Debug)]
pub struct SessionResult {
    /// `Done`, `Failed` or `Cancelled`.
    pub state: SessionState,
    /// Measurements up to the terminal transition.
    pub metrics: SessionMetrics,
    /// The target database: populated for `Done`; present but *rolled
    /// back* (no tables, no rows) for a session that failed during
    /// execution — observable proof that a dying `Write` left nothing
    /// half-loaded. `None` when execution never started.
    pub target: Option<Database>,
    /// Why the session failed or was abandoned.
    pub diagnostic: Option<String>,
}

/// State shared between the submitting thread and the worker.
#[derive(Debug)]
pub(crate) struct SessionShared {
    pub(crate) id: SessionId,
    pub(crate) name: String,
    /// Admission instant; the deadline clock starts here, so queue wait
    /// counts against the budget (a deadline is a promise to the caller,
    /// not to the worker).
    submitted_at: Instant,
    deadline: Option<Duration>,
    state: Mutex<SessionState>,
    state_changed: Condvar,
    pub(crate) cancelled: AtomicBool,
    result: Mutex<Option<SessionResult>>,
    /// Root trace span of this session (0 when tracing is off). Every
    /// child span and correlated event hangs off this id.
    pub(crate) root_span: xdx_trace::SpanId,
    /// Span the root records *under* — [`xdx_trace::NO_SPAN`] for an
    /// ordinary session; the publish group span for a fan-out lane, so
    /// lane trees stitch into one distributed trace.
    pub(crate) root_parent: xdx_trace::SpanId,
}

impl SessionShared {
    pub(crate) fn new(
        id: SessionId,
        name: String,
        deadline: Option<Duration>,
        root_span: xdx_trace::SpanId,
    ) -> Arc<SessionShared> {
        SessionShared::new_with_parent(id, name, deadline, root_span, xdx_trace::NO_SPAN)
    }

    pub(crate) fn new_with_parent(
        id: SessionId,
        name: String,
        deadline: Option<Duration>,
        root_span: xdx_trace::SpanId,
        root_parent: xdx_trace::SpanId,
    ) -> Arc<SessionShared> {
        Arc::new(SessionShared {
            id,
            name,
            submitted_at: Instant::now(),
            deadline,
            state: Mutex::new(SessionState::Queued),
            state_changed: Condvar::new(),
            cancelled: AtomicBool::new(false),
            result: Mutex::new(None),
            root_span,
            root_parent,
        })
    }

    /// True once the wall-clock budget is spent.
    pub(crate) fn deadline_exceeded(&self) -> bool {
        self.deadline
            .is_some_and(|d| self.submitted_at.elapsed() > d)
    }

    pub(crate) fn state(&self) -> SessionState {
        *self.state.lock().unwrap()
    }

    pub(crate) fn set_state(&self, state: SessionState) {
        *self.state.lock().unwrap() = state;
        self.state_changed.notify_all();
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Stores the terminal result and wakes waiters. The result must be
    /// stored before the terminal state becomes visible, so `wait` never
    /// observes a terminal state with no result.
    pub(crate) fn finish(&self, result: SessionResult) {
        let state = result.state;
        debug_assert!(state.is_terminal());
        *self.result.lock().unwrap() = Some(result);
        self.set_state(state);
    }

    fn wait_terminal(&self) -> SessionResult {
        let mut state = self.state.lock().unwrap();
        while !state.is_terminal() {
            state = self.state_changed.wait(state).unwrap();
        }
        drop(state);
        self.result
            .lock()
            .unwrap()
            .take()
            .expect("terminal session carries a result")
    }
}

/// Caller-side view of a submitted session.
pub struct SessionHandle {
    pub(crate) shared: Arc<SessionShared>,
}

impl SessionHandle {
    /// The runtime-assigned session id.
    pub fn id(&self) -> SessionId {
        self.shared.id
    }

    /// The request's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Current lifecycle state (racy by nature; terminal states are
    /// stable).
    pub fn state(&self) -> SessionState {
        self.shared.state()
    }

    /// Requests cancellation. Best-effort: a queued session is abandoned
    /// before planning; a running one stops at the next cancellation
    /// point (between planning and execution, or between shipment
    /// attempts). A session that already finished is unaffected.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Blocks until the session reaches a terminal state and returns its
    /// result. Consumes the handle: the result (and its target database)
    /// is handed over exactly once.
    pub fn wait(self) -> SessionResult {
        self.shared.wait_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_low_to_high() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn tenant_label_defaults_to_the_route_pair() {
        let schema = xdx_xmark::schema();
        let req = ExchangeRequest::new(
            "t",
            Database::default(),
            xdx_xmark::mf(&schema),
            xdx_xmark::lf(&schema),
        );
        assert_eq!(req.tenant_label(), "source→target");
        let routed = req.with_route("a", "b");
        assert_eq!(routed.tenant_label(), "a→b");
        let tagged = routed.with_tenant("acme");
        assert_eq!(tagged.tenant_label(), "acme");
    }

    #[test]
    fn terminal_states_are_exactly_done_failed_cancelled() {
        for s in [
            SessionState::Queued,
            SessionState::Planning,
            SessionState::Executing,
            SessionState::Shipping,
        ] {
            assert!(!s.is_terminal(), "{s:?}");
        }
        for s in [
            SessionState::Done,
            SessionState::Failed,
            SessionState::Cancelled,
        ] {
            assert!(s.is_terminal(), "{s:?}");
        }
    }

    #[test]
    fn deadline_clock_starts_at_admission() {
        let shared = SessionShared::new(1, "d".into(), Some(Duration::from_millis(5)), 0);
        assert!(!shared.deadline_exceeded());
        std::thread::sleep(Duration::from_millis(10));
        assert!(shared.deadline_exceeded());
        let unbounded = SessionShared::new(2, "u".into(), None, 0);
        assert!(!unbounded.deadline_exceeded());
    }

    #[test]
    fn wait_returns_result_finished_from_another_thread() {
        let shared = SessionShared::new(7, "t".into(), None, 0);
        let waiter = Arc::clone(&shared);
        let t = std::thread::spawn(move || waiter.wait_terminal());
        shared.finish(SessionResult {
            state: SessionState::Done,
            metrics: SessionMetrics::default(),
            target: None,
            diagnostic: None,
        });
        let result = t.join().unwrap();
        assert_eq!(result.state, SessionState::Done);
        assert_eq!(shared.state(), SessionState::Done);
    }
}
