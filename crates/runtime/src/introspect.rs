//! The live introspection endpoint: a std-only HTTP/1.1 listener
//! serving the runtime's observability surfaces while it runs.
//!
//! Opt-in via [`crate::RuntimeConfig::with_introspect_addr`]. One
//! background thread accepts connections non-blockingly (polling the
//! shutdown flag between accepts), reads one GET request per
//! connection, and answers from a handler closure the runtime
//! provides — the module itself knows nothing about sessions or
//! metrics, only HTTP plumbing. Responses always carry
//! `Content-Length` and `Connection: close`, so any HTTP client (or a
//! bare `std::net::TcpStream`) can scrape it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps between polls when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One response from the runtime's route handler.
pub(crate) struct IntrospectReply {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
}

/// The listener thread plus its shutdown handshake.
pub(crate) struct IntrospectServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectServer {
    /// Binds `addr` (port 0 allowed) and spawns the accept loop.
    pub(crate) fn start<H>(addr: SocketAddr, handler: H) -> std::io::Result<IntrospectServer>
    where
        H: Fn(&str) -> IntrospectReply + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("xdx-introspect".into())
            .spawn(move || accept_loop(&listener, &stop_flag, &handler))
            .expect("spawn introspect listener");
        Ok(IntrospectServer {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop and joins it.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<H>(listener: &TcpListener, stop: &AtomicBool, handler: &H)
where
    H: Fn(&str) -> IntrospectReply,
{
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_connection(stream, handler),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads one request, answers it, closes. Malformed requests get a 400;
/// anything that isn't a GET gets a 405.
fn serve_connection<H>(mut stream: TcpStream, handler: &H)
where
    H: Fn(&str) -> IntrospectReply,
{
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let reply = match read_request_path(&mut stream) {
        Some((method, path)) if method == "GET" => handler(&path),
        Some(_) => IntrospectReply {
            status: 405,
            content_type: "text/plain",
            body: "method not allowed\n".into(),
        },
        None => IntrospectReply {
            status: 400,
            content_type: "text/plain",
            body: "bad request\n".into(),
        },
    };
    let reason = match reply.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reply.status,
        reason,
        reply.content_type,
        reply.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(reply.body.as_bytes());
    let _ = stream.flush();
}

/// Reads until the end of the header block and parses the request line.
/// Query strings are stripped; only the path routes.
fn read_request_path(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_routes_and_closes() {
        let mut server =
            IntrospectServer::start("127.0.0.1:0".parse().unwrap(), |path| IntrospectReply {
                status: if path == "/ok" { 200 } else { 404 },
                content_type: "text/plain",
                body: format!("path={path}\n"),
            })
            .unwrap();
        let addr = server.addr();
        let ok = fetch(addr, "GET /ok HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("path=/ok"));
        assert!(ok.contains("Content-Length: 9"));
        let missing = fetch(addr, "GET /nope?q=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("path=/nope"), "query string stripped");
        let post = fetch(addr, "POST /ok HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        server.shutdown();
        // After shutdown the port stops answering.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Connect may still succeed briefly on some platforms; a
                // read then yields EOF because nobody serves it.
                true
            }
        );
    }
}
