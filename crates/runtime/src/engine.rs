//! The event-driven shipping engine: batch shipments as parked state
//! machines instead of blocked threads.
//!
//! The blocking [`crate::shipper::FaultTolerantShipper`] spends a worker
//! thread's life inside paced-link sleeps and retry backoffs. The engine
//! inverts that: a worker *submits* a batch shipment ([`ShipRequest`])
//! and immediately goes back to runnable work; the shipment advances as
//! a chunk-level state machine driven by a single engine thread (plus
//! any worker that volunteers spare cycles through
//! [`ShipEngine::drive_until`]). Every wait — wire occupancy of a paced
//! link, retry backoff, lane contention — is a deadline on the
//! [`TimerWheel`], never a `thread::sleep`, so N workers keep far more
//! than N sessions in flight.
//!
//! Semantics are bit-for-bit those of the blocking shipper: the same
//! [`ShippingPolicy`] caps, the same stall accounting, the same
//! [`ReassemblyLedger`] filing (chunks land under the coordinates in
//! the frame; duplicates drop idempotently; a resumed session re-ships
//! only unacked chunks), the same events and `ship` spans. Instead of a
//! per-shipper budget, every batch of a session decrements one shared
//! atomic budget, preserving the per-*session* retry cap.
//!
//! Pacing without sleeping: the paced wire is modeled as a per-pair
//! *lane*. A transmission computes its fault outcome immediately
//! ([`xdx_net::Link::transmit_faulty_nowait`]), releases the link lock,
//! and advances the lane's `busy_until` horizon by the transfer's paced
//! duration; the task then parks until that horizon. Tasks sharing a
//! pair serialize on the lane exactly as blocking shippers serialize on
//! the link lock — but parked, not blocked.

use crate::events::{EventKind, EventLog};
use crate::flight::{FlightRecorder, FlightSubsystem};
use crate::ledger::{Filed, ReassemblyLedger};
use crate::registry::LinkSlot;
use crate::session::SessionShared;
use crate::shipper::{ShippingPolicy, MAX_STALLS_PER_CHUNK};
use crate::wheel::TimerWheel;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xdx_net::{frame_chunk_into, ChunkFrame, Delivery};
use xdx_trace::{SpanId, TraceSink};

/// How long a task parks when its pair's lane is reserved by another
/// task mid-transmission (a few engine steps).
const LANE_POLL: Duration = Duration::from_micros(200);

/// How long a task parks when the link mutex itself is held — a
/// fallback blocking shipper may sleep a paced transmit *inside* the
/// lock, and the engine must never wait on it.
const LINK_POLL: Duration = Duration::from_micros(500);

/// Shipping tallies of one batch, folded into the session's metrics by
/// the completion callback.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchShipStats {
    pub chunks_shipped: u64,
    pub chunks_resumed: u64,
    pub chunks_deduped: u64,
    pub chunks_retried: u64,
    pub retry_backoff: Duration,
    pub wire_bytes: u64,
}

/// Terminal outcome of one submitted batch shipment.
pub(crate) struct BatchResult {
    /// The ledger shipment sequence this batch shipped under.
    pub seq: u64,
    /// Simulated link time: transfers, timeout waits, retry backoff.
    pub elapsed: Duration,
    /// The reassembled message as delivered, or the failure diagnostic.
    pub outcome: std::result::Result<Vec<u8>, String>,
    /// True when the failure was the link defeating the policy (attempt
    /// cap or shared budget) — the circuit breaker's signal.
    pub link_gave_up: bool,
    pub stats: BatchShipStats,
}

/// One batch shipment for the engine to run to completion.
pub(crate) struct ShipRequest {
    pub session: Arc<SessionShared>,
    pub slot: Arc<LinkSlot>,
    /// Ledger shipment sequence number. Deterministic across attempts
    /// (port order × batch index), so a resume maps onto the same
    /// checkpoints.
    pub seq: u64,
    pub label: String,
    /// The serialized message, refcounted: a 1→N publish submits the
    /// *same* frame buffer once per subscriber lane, so fan-out never
    /// copies (or re-encodes) the payload.
    pub message: Arc<Vec<u8>>,
    pub policy: ShippingPolicy,
    /// Retry budget shared by every batch of the session.
    pub budget: Arc<AtomicI64>,
    /// Parent span the per-batch `ship` span records under.
    pub parent_span: SpanId,
    /// Invoked exactly once per submission, with no engine lock held.
    pub on_done: Box<dyn FnOnce(BatchResult) + Send>,
}

/// Where a task's state machine stands.
enum Phase {
    /// Open the shipment in the ledger, allocate the span.
    Init,
    /// Advance to the next chunk needing transmission (skipping
    /// checkpointed ones) and frame it.
    NextChunk,
    /// Transmit the framed chunk: reserve the lane, draw the fault
    /// outcome, advance the wire horizon.
    Transmit,
    /// Wire wait elapsed: file what arrived and decide retry/advance.
    Settle {
        duration: Duration,
        delivery: Delivery,
    },
    /// All chunks landed: close out and reassemble.
    Assemble,
}

struct Task {
    session: Arc<SessionShared>,
    slot: Arc<LinkSlot>,
    seq: u64,
    label: String,
    message: Arc<Vec<u8>>,
    policy: ShippingPolicy,
    budget: Arc<AtomicI64>,
    parent_span: SpanId,
    on_done: Option<Box<dyn FnOnce(BatchResult) + Send>>,
    phase: Phase,
    /// The pair label, cached (lane key).
    pair: String,
    span: SpanId,
    started: Instant,
    total: usize,
    prior: BTreeSet<usize>,
    index: usize,
    frame: Vec<u8>,
    chunk_label: String,
    elapsed: Duration,
    stats: BatchShipStats,
    failed_attempts: u32,
    stalls: u32,
    /// Link pacing scale, learned at the first transmission.
    pacing: f64,
    opened: bool,
}

impl Task {
    fn new(req: ShipRequest) -> Task {
        let pair = req.slot.pair();
        Task {
            session: req.session,
            slot: req.slot,
            seq: req.seq,
            label: req.label,
            message: req.message,
            policy: req.policy,
            budget: req.budget,
            parent_span: req.parent_span,
            on_done: Some(req.on_done),
            phase: Phase::Init,
            pair,
            span: req.parent_span,
            started: Instant::now(),
            total: 0,
            prior: BTreeSet::new(),
            index: 0,
            frame: Vec::new(),
            chunk_label: String::new(),
            elapsed: Duration::ZERO,
            stats: BatchShipStats::default(),
            failed_attempts: 0,
            stalls: 0,
            pacing: 0.0,
            opened: false,
        }
    }
}

/// One `(source, target)` pair's simulated wire, as the engine sees it:
/// a horizon of paced occupancy plus a reservation flag closing the
/// race between lane check and transmission.
struct Lane {
    busy_until: Instant,
    in_use: bool,
}

struct EngineState {
    tasks: HashMap<u64, Task>,
    ready: VecDeque<u64>,
    wheel: TimerWheel,
    lanes: HashMap<String, Lane>,
    next_id: u64,
    /// Batches submitted and not yet completed — the pipeline-depth
    /// gauge.
    inflight: usize,
    open: bool,
}

/// What one state-machine step decided.
enum StepOutcome {
    /// Keep stepping this task.
    Continue,
    /// Park until the deadline.
    Park(Instant),
    /// Terminal; invoke the callback.
    Done(BatchResult),
}

/// The engine itself. One instance per runtime, shared by the dedicated
/// driver thread, every worker (submission + volunteer driving), and
/// shutdown.
pub(crate) struct ShipEngine {
    state: Mutex<EngineState>,
    work: Condvar,
    events: Arc<EventLog>,
    ledger: Arc<ReassemblyLedger>,
    trace: Arc<TraceSink>,
    flight: Arc<FlightRecorder>,
}

impl ShipEngine {
    pub(crate) fn new(
        events: Arc<EventLog>,
        ledger: Arc<ReassemblyLedger>,
        trace: Arc<TraceSink>,
        flight: Arc<FlightRecorder>,
    ) -> Arc<ShipEngine> {
        Arc::new(ShipEngine {
            state: Mutex::new(EngineState {
                tasks: HashMap::new(),
                ready: VecDeque::new(),
                wheel: TimerWheel::default(),
                lanes: HashMap::new(),
                next_id: 0,
                inflight: 0,
                open: true,
            }),
            work: Condvar::new(),
            events,
            ledger,
            trace,
            flight,
        })
    }

    /// Stall watchdog probe: a parked task whose wheel deadline is
    /// overdue by more than `threshold` means no driver is expiring the
    /// wheel — the engine is wedged, not merely busy. Returns how
    /// overdue the nearest deadline is when stalled.
    pub(crate) fn stall_check(&self, threshold: Duration) -> Option<Duration> {
        let st = self.state.lock().unwrap();
        if st.tasks.is_empty() {
            return None;
        }
        let deadline = st.wheel.next_deadline()?;
        let overdue = Instant::now().checked_duration_since(deadline)?;
        drop(st);
        if overdue > threshold {
            self.flight.record(FlightSubsystem::Timer, || {
                format!("stall: next deadline overdue by {overdue:?} with parked tasks")
            });
            Some(overdue)
        } else {
            None
        }
    }

    /// Enqueues a batch shipment; returns immediately. The request's
    /// `on_done` fires from whichever thread completes the task.
    pub(crate) fn submit(&self, req: ShipRequest) {
        let mut st = self.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        st.inflight += 1;
        st.tasks.insert(id, Task::new(req));
        st.ready.push_back(id);
        drop(st);
        self.work.notify_all();
    }

    /// Batches currently in flight (submitted, not yet completed).
    pub(crate) fn inflight(&self) -> usize {
        self.state.lock().unwrap().inflight
    }

    /// Tells the driver thread to exit once the last task completes.
    pub(crate) fn shutdown(&self) {
        self.state.lock().unwrap().open = false;
        self.work.notify_all();
    }

    /// The dedicated driver thread's body: drive until shutdown *and*
    /// drained.
    pub(crate) fn drive_forever(&self) {
        self.drive(None);
    }

    /// Volunteer driving: make engine progress until `deadline`. This is
    /// how a worker stuck in a *blocking* shipper's retry backoff spends
    /// the wait — instead of sleeping, it advances other sessions'
    /// parked shipments (and simply idles on the condvar when there are
    /// none). Returns at the deadline.
    pub(crate) fn drive_until(&self, deadline: Instant) {
        self.drive(Some(deadline));
    }

    fn drive(&self, until: Option<Instant>) {
        let mut st = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            let due = st.wheel.expire(now);
            st.ready.extend(due);
            if let Some(id) = st.ready.pop_front() {
                let Some(task) = st.tasks.remove(&id) else {
                    continue;
                };
                drop(st);
                self.run_task(id, task);
                st = self.state.lock().unwrap();
                continue;
            }
            if let Some(d) = until {
                if now >= d {
                    return;
                }
            }
            if !st.open && st.tasks.is_empty() {
                return;
            }
            let mut wake = st.wheel.next_deadline();
            if let Some(d) = until {
                wake = Some(wake.map_or(d, |w| w.min(d)));
            }
            st = match wake {
                Some(w) => {
                    let timeout = w
                        .saturating_duration_since(now)
                        .max(Duration::from_micros(50));
                    self.work.wait_timeout(st, timeout).unwrap().0
                }
                None => self.work.wait(st).unwrap(),
            };
        }
    }

    /// Steps `task` until it parks or completes. Called with no engine
    /// lock held; the task is out of the map, so no other driver can
    /// touch it.
    fn run_task(&self, id: u64, mut task: Task) {
        loop {
            match self.step(&mut task) {
                StepOutcome::Continue => continue,
                StepOutcome::Park(deadline) => {
                    let mut st = self.state.lock().unwrap();
                    st.wheel.schedule(deadline, id);
                    st.tasks.insert(id, task);
                    return;
                }
                StepOutcome::Done(result) => {
                    let on_done = task.on_done.take().expect("task completes once");
                    self.state.lock().unwrap().inflight -= 1;
                    // No engine lock across the callback: it may submit
                    // the session's next batch right back to us.
                    on_done(result);
                    self.work.notify_all();
                    return;
                }
            }
        }
    }

    fn file(&self, task: &mut Task, frame: &ChunkFrame) {
        if self.ledger.file(frame) == Filed::Duplicate {
            task.stats.chunks_deduped += 1;
        }
    }

    /// Terminal failure: close out, record the span, build the result.
    fn fail(&self, task: &mut Task, diagnostic: String, link_gave_up: bool) -> StepOutcome {
        if task.opened {
            task.slot.close_shipment();
        }
        self.flight.record(FlightSubsystem::Lane, || {
            format!(
                "{}: batch {} failed at chunk {}/{}: {diagnostic}",
                task.pair, task.seq, task.index, task.total
            )
        });
        self.trace.record_with_id(
            task.span,
            "ship",
            task.session.id,
            task.parent_span,
            task.started,
            task.started.elapsed(),
            format!(
                "{}: batch {}, {} chunks, {} retried, failed",
                task.label, task.seq, task.total, task.stats.chunks_retried
            ),
        );
        StepOutcome::Done(BatchResult {
            seq: task.seq,
            elapsed: task.elapsed,
            outcome: Err(diagnostic),
            link_gave_up,
            stats: task.stats,
        })
    }

    fn step(&self, task: &mut Task) -> StepOutcome {
        match &task.phase {
            Phase::Init => {
                task.span = self.trace.allocate_id();
                let chunk_bytes = task.policy.chunk_bytes.max(1);
                task.total = task.message.len().div_ceil(chunk_bytes).max(1);
                task.prior = self.ledger.begin_shipment(
                    task.session.id,
                    task.seq,
                    task.total,
                    &task.message,
                );
                if !task.prior.is_empty() {
                    task.stats.chunks_resumed += task.prior.len() as u64;
                    self.events.push(
                        task.session.id,
                        task.span,
                        EventKind::ShipmentResumed,
                        format!(
                            "{}: {} of {} chunks checkpointed, re-shipping {}",
                            task.label,
                            task.prior.len(),
                            task.total,
                            task.total - task.prior.len()
                        ),
                    );
                }
                task.slot.open_shipment();
                task.opened = true;
                self.flight.record(FlightSubsystem::Lane, || {
                    format!(
                        "{}: batch {} open, {} chunks, session {}",
                        task.pair, task.seq, task.total, task.session.id
                    )
                });
                task.phase = Phase::NextChunk;
                StepOutcome::Continue
            }
            Phase::NextChunk => {
                while task.index < task.total {
                    if task.prior.contains(&task.index) {
                        task.index += 1;
                        continue;
                    }
                    if self.ledger.has_chunk(task.session.id, task.seq, task.index) {
                        // Landed meanwhile via the reorder pipeline
                        // (possibly transmitted by another session
                        // sharing the link).
                        task.stats.chunks_shipped += 1;
                        task.index += 1;
                        continue;
                    }
                    break;
                }
                if task.index >= task.total {
                    task.phase = Phase::Assemble;
                    return StepOutcome::Continue;
                }
                let chunk_bytes = task.policy.chunk_bytes.max(1);
                let start = task.index * chunk_bytes;
                let end = usize::min(start + chunk_bytes, task.message.len());
                task.chunk_label.clear();
                let _ = write!(
                    task.chunk_label,
                    "{}[{}/{}]",
                    task.label, task.index, task.total
                );
                frame_chunk_into(
                    &mut task.frame,
                    task.session.id,
                    task.seq,
                    task.index,
                    task.total,
                    &task.message[start..end],
                );
                task.failed_attempts = 0;
                task.stalls = 0;
                task.phase = Phase::Transmit;
                StepOutcome::Continue
            }
            Phase::Transmit => {
                if task.session.is_cancelled() {
                    return self.fail(
                        task,
                        format!("session cancelled while shipping {}", task.chunk_label),
                        false,
                    );
                }
                if task.session.deadline_exceeded() {
                    return self.fail(
                        task,
                        format!("deadline exceeded while shipping {}", task.chunk_label),
                        false,
                    );
                }
                let now = Instant::now();
                {
                    let mut st = self.state.lock().unwrap();
                    let lane = st.lanes.entry(task.pair.clone()).or_insert(Lane {
                        busy_until: now,
                        in_use: false,
                    });
                    if lane.in_use {
                        return StepOutcome::Park(now + LANE_POLL);
                    }
                    if lane.busy_until > now {
                        return StepOutcome::Park(lane.busy_until);
                    }
                    lane.in_use = true;
                }
                // Lane reserved; touch the link outside the engine lock.
                // `try_lock`, never `lock`: a fallback blocking shipper
                // sleeps paced transmits while *holding* this mutex.
                let Ok(mut link) = task.slot.link.try_lock() else {
                    let mut st = self.state.lock().unwrap();
                    if let Some(lane) = st.lanes.get_mut(&task.pair) {
                        lane.in_use = false;
                    }
                    return StepOutcome::Park(now + LINK_POLL);
                };
                let (duration, delivery) =
                    link.transmit_faulty_nowait(&task.chunk_label, &task.frame);
                task.pacing = link.pacing();
                drop(link);
                task.stats.wire_bytes += task.frame.len() as u64;
                task.slot
                    .counters
                    .wire_bytes
                    .fetch_add(task.frame.len() as u64, Ordering::Relaxed);
                let wire = if task.pacing > 0.0 {
                    duration.mul_f64(task.pacing)
                } else {
                    Duration::ZERO
                };
                {
                    let mut st = self.state.lock().unwrap();
                    let lane = st.lanes.get_mut(&task.pair).expect("lane reserved");
                    lane.busy_until = lane.busy_until.max(now) + wire;
                    lane.in_use = false;
                }
                task.phase = Phase::Settle { duration, delivery };
                if wire > Duration::ZERO {
                    // The wire occupancy is a wheel deadline, not a
                    // sleep: this is the yield the whole engine exists
                    // for.
                    StepOutcome::Park(now + wire)
                } else {
                    StepOutcome::Continue
                }
            }
            Phase::Settle { .. } => {
                let Phase::Settle { duration, delivery } =
                    std::mem::replace(&mut task.phase, Phase::NextChunk)
                else {
                    unreachable!("matched Settle");
                };
                task.elapsed += duration;
                // File whatever verified frame the link produced — ours,
                // an older deferred one, even another session's.
                let verified = delivery.payload().and_then(ChunkFrame::decode);
                if let Some(arrived) = &verified {
                    self.file(task, arrived);
                    if matches!(delivery, Delivery::Duplicated(_)) {
                        self.file(task, arrived);
                    }
                }
                if self.ledger.has_chunk(task.session.id, task.seq, task.index) {
                    task.stats.chunks_shipped += 1;
                    task.slot
                        .counters
                        .chunks_shipped
                        .fetch_add(1, Ordering::Relaxed);
                    task.index += 1;
                    task.phase = Phase::NextChunk;
                    return StepOutcome::Continue;
                }
                let progressed = verified.is_some() || matches!(delivery, Delivery::Deferred);
                if progressed && task.stalls < MAX_STALLS_PER_CHUNK {
                    task.stalls += 1;
                    task.phase = Phase::Transmit;
                    return StepOutcome::Continue;
                }
                task.failed_attempts += 1;
                let cause = match delivery {
                    Delivery::Dropped => "dropped",
                    Delivery::TimedOut => "timed out",
                    Delivery::Corrupted(_) => "corrupted",
                    Delivery::Deferred => "deferred livelock",
                    Delivery::Delivered(_) | Delivery::Duplicated(_) => "frame damaged",
                };
                if task.failed_attempts >= task.policy.max_attempts_per_chunk {
                    return self.fail(
                        task,
                        format!(
                            "shipping {}: gave up after {} attempts (last outcome: {cause})",
                            task.chunk_label, task.failed_attempts
                        ),
                        true,
                    );
                }
                if task.budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
                    return self.fail(
                        task,
                        format!(
                            "shipping {}: session retry budget ({}) exhausted \
                             (last outcome: {cause})",
                            task.chunk_label, task.policy.retry_budget
                        ),
                        true,
                    );
                }
                task.stats.chunks_retried += 1;
                task.slot
                    .counters
                    .chunks_retried
                    .fetch_add(1, Ordering::Relaxed);
                self.flight.record(FlightSubsystem::Lane, || {
                    format!(
                        "{}: {} {cause}, retry {}",
                        task.pair, task.chunk_label, task.failed_attempts
                    )
                });
                let backoff = task.policy.backoff(task.failed_attempts);
                task.stats.retry_backoff += backoff;
                task.elapsed += backoff;
                self.events.push(
                    task.session.id,
                    task.span,
                    EventKind::ChunkRetried,
                    format!(
                        "{} {cause}, retry {}",
                        task.chunk_label, task.failed_attempts
                    ),
                );
                task.phase = Phase::Transmit;
                if task.pacing > 0.0 {
                    // Backoff obeys the same paced clock as the link —
                    // as a parked deadline, never a sleeping worker.
                    self.flight.record(FlightSubsystem::Timer, || {
                        format!(
                            "{}: backoff {:?} before {}",
                            task.pair, backoff, task.chunk_label
                        )
                    });
                    StepOutcome::Park(Instant::now() + backoff.mul_f64(task.pacing))
                } else {
                    StepOutcome::Continue
                }
            }
            Phase::Assemble => {
                if task.opened {
                    task.slot.close_shipment();
                }
                self.flight.record(FlightSubsystem::Lane, || {
                    format!(
                        "{}: batch {} ok, {} chunks, {} retried",
                        task.pair, task.seq, task.total, task.stats.chunks_retried
                    )
                });
                self.trace.record_with_id(
                    task.span,
                    "ship",
                    task.session.id,
                    task.parent_span,
                    task.started,
                    task.started.elapsed(),
                    format!(
                        "{}: batch {}, {} chunks, {} retried, ok",
                        task.label, task.seq, task.total, task.stats.chunks_retried
                    ),
                );
                let Some(assembled) = self.ledger.assemble(task.session.id, task.seq) else {
                    return StepOutcome::Done(BatchResult {
                        seq: task.seq,
                        elapsed: task.elapsed,
                        outcome: Err(format!("shipment {} did not reassemble", task.seq)),
                        link_gave_up: false,
                        stats: task.stats,
                    });
                };
                debug_assert_eq!(
                    assembled, *task.message,
                    "verified chunks reassemble exactly"
                );
                StepOutcome::Done(BatchResult {
                    seq: task.seq,
                    elapsed: task.elapsed,
                    outcome: Ok(assembled),
                    link_gave_up: false,
                    stats: task.stats,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::CircuitBreaker;
    use crate::registry::ShipGauge;
    use std::sync::mpsc;
    use xdx_core::WireFormat;
    use xdx_net::{FaultProfile, Link, NetworkProfile};

    fn engine() -> Arc<ShipEngine> {
        ShipEngine::new(
            Arc::new(EventLog::new()),
            Arc::new(ReassemblyLedger::new()),
            Arc::new(TraceSink::new(false, 16)),
            Arc::new(FlightRecorder::new(true, 64)),
        )
    }

    fn slot_for(link: Link) -> Arc<LinkSlot> {
        Arc::new(LinkSlot::new(
            "source",
            "target",
            link,
            CircuitBreaker::new(8, Duration::from_millis(50)),
            WireFormat::Xml,
            Arc::new(ShipGauge::default()),
        ))
    }

    fn submit(
        engine: &ShipEngine,
        slot: &Arc<LinkSlot>,
        seq: u64,
        message: Vec<u8>,
        policy: ShippingPolicy,
        budget: &Arc<AtomicI64>,
    ) -> mpsc::Receiver<BatchResult> {
        let (tx, rx) = mpsc::channel();
        engine.submit(ShipRequest {
            session: SessionShared::new(1, "test".into(), None, 0),
            slot: Arc::clone(slot),
            seq,
            label: format!("batch {seq}"),
            message: Arc::new(message),
            policy,
            budget: Arc::clone(budget),
            parent_span: 0,
            on_done: Box::new(move |r| {
                let _ = tx.send(r);
            }),
        });
        rx
    }

    #[test]
    fn lossy_link_reassembles_exactly() {
        let eng = engine();
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile {
                drop_probability: 0.15,
                timeout_probability: 0.05,
                corrupt_probability: 0.10,
                seed: 42,
                ..FaultProfile::healthy()
            }),
        );
        let budget = Arc::new(AtomicI64::new(256));
        let message: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            ..ShippingPolicy::default()
        };
        let rx = submit(&eng, &slot, 0, message.clone(), policy, &budget);
        eng.drive_until(Instant::now() + Duration::from_secs(5));
        let result = rx.try_recv().expect("batch completed");
        assert_eq!(result.outcome.unwrap(), message);
        assert!(result.elapsed > Duration::ZERO);
        assert_eq!(result.stats.chunks_shipped, 2000usize.div_ceil(64) as u64);
        assert!(result.stats.chunks_retried > 0, "30% faults must retry");
        assert!(!result.link_gave_up);
        assert_eq!(eng.inflight(), 0);
    }

    #[test]
    fn concurrent_batches_interleave_on_one_pair() {
        let eng = engine();
        let slot = slot_for(Link::new(NetworkProfile::lan()));
        let budget = Arc::new(AtomicI64::new(256));
        let policy = ShippingPolicy {
            chunk_bytes: 128,
            ..ShippingPolicy::default()
        };
        let messages: Vec<Vec<u8>> = (0..4u8)
            .map(|b| (0..1500u32).map(|i| (i as u8).wrapping_add(b)).collect())
            .collect();
        let rxs: Vec<_> = messages
            .iter()
            .enumerate()
            .map(|(seq, m)| submit(&eng, &slot, seq as u64, m.clone(), policy, &budget))
            .collect();
        eng.drive_until(Instant::now() + Duration::from_secs(5));
        for (rx, message) in rxs.into_iter().zip(&messages) {
            let result = rx.try_recv().expect("batch completed");
            assert_eq!(&result.outcome.unwrap(), message);
        }
    }

    #[test]
    fn shared_budget_fails_with_link_blame() {
        let eng = engine();
        let slot = slot_for(
            Link::new(NetworkProfile::lan()).with_fault_profile(FaultProfile::drops(1.0, 9)),
        );
        let budget = Arc::new(AtomicI64::new(5));
        let policy = ShippingPolicy {
            chunk_bytes: 64,
            max_attempts_per_chunk: 100,
            retry_budget: 5,
            ..ShippingPolicy::default()
        };
        let rx = submit(&eng, &slot, 0, b"some payload".to_vec(), policy, &budget);
        eng.drive_until(Instant::now() + Duration::from_secs(5));
        let result = rx.try_recv().expect("batch completed");
        let err = result.outcome.unwrap_err();
        assert!(err.contains("retry budget"), "{err}");
        assert!(result.link_gave_up);
        assert_eq!(result.stats.chunks_retried, 5);
    }

    #[test]
    fn paced_wire_parks_instead_of_sleeping() {
        // With pacing on, the wire wait must come back as wheel parking:
        // total wall ≈ paced duration, and the driver was free to run
        // other tasks meanwhile (asserted via interleaved completion).
        let eng = engine();
        let link = Link::new(NetworkProfile {
            bandwidth_bytes_per_sec: 2_000_000.0,
            latency: Duration::from_micros(200),
        })
        .with_pacing(1.0);
        let slot = slot_for(link);
        let budget = Arc::new(AtomicI64::new(256));
        let policy = ShippingPolicy {
            chunk_bytes: 4096,
            ..ShippingPolicy::default()
        };
        let message: Vec<u8> = vec![7u8; 16 * 1024];
        let rx_a = submit(&eng, &slot, 0, message.clone(), policy, &budget);
        let rx_b = submit(&eng, &slot, 1, message.clone(), policy, &budget);
        eng.drive_until(Instant::now() + Duration::from_secs(10));
        let a = rx_a.try_recv().expect("a completed");
        let b = rx_b.try_recv().expect("b completed");
        assert_eq!(a.outcome.unwrap(), message);
        assert_eq!(b.outcome.unwrap(), message);
        // Both batches observed simulated wire time.
        assert!(a.elapsed > Duration::ZERO && b.elapsed > Duration::ZERO);
    }

    #[test]
    fn stall_watchdog_detects_undriven_parked_task() {
        // A paced transmit parks the task on the wheel; with nobody
        // driving past that point, the deadline goes overdue and the
        // watchdog must flag the engine as stalled.
        let eng = engine();
        let link = Link::new(NetworkProfile {
            bandwidth_bytes_per_sec: 100_000.0,
            latency: Duration::from_millis(2),
        })
        .with_pacing(1.0);
        let slot = slot_for(link);
        let budget = Arc::new(AtomicI64::new(256));
        let policy = ShippingPolicy {
            chunk_bytes: 4096,
            ..ShippingPolicy::default()
        };
        let _rx = submit(&eng, &slot, 0, vec![3u8; 32 * 1024], policy, &budget);
        // Step just far enough for the first chunk to park on its wire
        // deadline, then stop driving entirely.
        eng.drive_until(Instant::now() + Duration::from_millis(5));
        assert!(eng.stall_check(Duration::from_secs(3600)).is_none());
        std::thread::sleep(Duration::from_millis(120));
        let overdue = eng
            .stall_check(Duration::from_millis(50))
            .expect("undriven engine reports a stall");
        assert!(overdue >= Duration::from_millis(50));
        // Resume driving: the shipment completes and the stall clears.
        eng.drive_until(Instant::now() + Duration::from_secs(5));
        assert!(eng.stall_check(Duration::ZERO).is_none());
        assert_eq!(eng.inflight(), 0);
    }
}
