//! The receiver-side reassembly ledger: checkpoint state for resumable
//! shipments.
//!
//! Every verified chunk frame is filed under its `(session, shipment,
//! index)` coordinates — the identity travels in the frame header, not
//! the connection, so the ledger can accept chunks that arrive late,
//! reordered, duplicated, cross-delivered during another session's
//! transmission, or re-shipped by a resumed session. Exact repeats are
//! dropped idempotently.
//!
//! Entries persist after a session *fails*: that is the shipping
//! checkpoint. When the session is resumed, `begin_shipment` reports
//! which chunks already landed, and the shipper skips them — only the
//! never-acknowledged chunks cross the link again. The buffer also keeps
//! the sender's *assembled serialized message*, so a resumed session
//! re-ships the remainder without re-serializing anything
//! ([`ReassemblyLedger::stored_message`]). Entries are dropped when the
//! session finally completes ([`ReassemblyLedger::forget_session`]).
//!
//! The ledger is sharded by session id: with many sessions shipping over
//! disjoint links in parallel, per-chunk bookkeeping must not funnel
//! through one global lock.
//!
//! Checkpoint state is *bounded*: each shard holds at most
//! `capacity / SHARDS` shipment buffers, and opening a new shipment in a
//! full shard evicts the least-recently-touched buffer
//! ([`buffers_shed`](ReassemblyLedger::buffers_shed) counts them). An
//! evicted checkpoint is not a correctness loss — a resumed session
//! simply re-ships those chunks — but an unbounded ledger would let a
//! fleet of failed sessions hold serialized messages forever, which the
//! overload soak forbids.

use crate::session::SessionId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use xdx_net::{fnv64, ChunkFrame};

/// Number of independent lock shards; sessions hash to shards by id.
const SHARDS: usize = 16;

/// Default cap on shipment buffers held across the ledger
/// (`RuntimeConfig::with_ledger_capacity` overrides it).
pub const DEFAULT_LEDGER_CAPACITY: usize = 4096;

/// Outcome of filing one verified frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Filed {
    /// The chunk was new and is now checkpointed.
    Accepted,
    /// The exact chunk was already present; dropped idempotently.
    Duplicate,
    /// No live shipment matches the frame (its session already
    /// completed, or the shipment was restarted with different content);
    /// the frame is discarded.
    Stale,
}

/// Reassembly state of one shipment.
#[derive(Debug)]
struct ShipmentBuffer {
    /// Last-touched tick from the ledger's logical clock; the eviction
    /// victim in a full shard is the smallest stamp.
    stamp: u64,
    /// Chunk count announced by the frames.
    total: usize,
    /// FNV-64 of the full serialized message; a resubmitted shipment
    /// whose content changed must not inherit stale chunks.
    message_fnv: u64,
    /// The sender's fully assembled serialized message. Persisting it
    /// makes resume allocation-free on the serialization side: a resumed
    /// session ships these exact bytes instead of re-running feed
    /// serialization.
    message: Vec<u8>,
    /// Verified chunks landed so far.
    chunks: BTreeMap<usize, Vec<u8>>,
}

/// Thread-shared ledger of in-flight (and checkpointed) shipments,
/// keyed by `(session, shipment sequence number)`.
#[derive(Debug)]
pub struct ReassemblyLedger {
    shards: Vec<Mutex<HashMap<(SessionId, u64), ShipmentBuffer>>>,
    /// Hard cap on buffers per shard (total capacity / SHARDS).
    per_shard_cap: usize,
    /// Logical clock stamping buffer touches, for LRU eviction.
    clock: AtomicU64,
    /// Shipment buffers garbage-collected by [`forget_session`]
    /// (acknowledged checkpoints whose session committed).
    ///
    /// [`forget_session`]: ReassemblyLedger::forget_session
    pruned: AtomicU64,
    /// Checkpoint buffers evicted by the capacity cap (distinct from
    /// [`entries_pruned`]: these were *not* acknowledged — their
    /// sessions will re-ship on resume).
    ///
    /// [`entries_pruned`]: ReassemblyLedger::entries_pruned
    shed: AtomicU64,
}

impl Default for ReassemblyLedger {
    fn default() -> ReassemblyLedger {
        ReassemblyLedger::new()
    }
}

impl ReassemblyLedger {
    /// An empty ledger with the default capacity.
    pub fn new() -> ReassemblyLedger {
        ReassemblyLedger::with_capacity(DEFAULT_LEDGER_CAPACITY)
    }

    /// An empty ledger holding at most `capacity` shipment buffers
    /// (split evenly across the shards).
    pub fn with_capacity(capacity: usize) -> ReassemblyLedger {
        ReassemblyLedger {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap: (capacity / SHARDS).max(1),
            clock: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    fn shard(&self, session: SessionId) -> &Mutex<HashMap<(SessionId, u64), ShipmentBuffer>> {
        &self.shards[session as usize % SHARDS]
    }

    /// Opens (or re-opens) a shipment, persisting the sender's full
    /// serialized `message`, and returns the indexes of chunks that
    /// already landed in a previous attempt — the resume checkpoint. A
    /// buffer whose chunk count or message hash disagrees is stale (the
    /// message changed) and is reset.
    pub fn begin_shipment(
        &self,
        session: SessionId,
        shipment: u64,
        total: usize,
        message: &[u8],
    ) -> BTreeSet<usize> {
        let message_fnv = fnv64(message);
        let mut map = self.shard(session).lock().unwrap();
        if !map.contains_key(&(session, shipment)) && map.len() >= self.per_shard_cap {
            // Full shard: shed the least-recently-touched checkpoint to
            // make room. The evicted shipment re-ships from scratch if
            // its session ever resumes; memory stays bounded either way.
            if let Some(victim) = map.iter().min_by_key(|(_, b)| b.stamp).map(|(key, _)| *key) {
                map.remove(&victim);
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let buffer = map
            .entry((session, shipment))
            .or_insert_with(|| ShipmentBuffer {
                stamp,
                total,
                message_fnv,
                message: message.to_vec(),
                chunks: BTreeMap::new(),
            });
        buffer.stamp = stamp;
        if buffer.total != total || buffer.message_fnv != message_fnv {
            buffer.total = total;
            buffer.message_fnv = message_fnv;
            buffer.message = message.to_vec();
            buffer.chunks.clear();
        }
        buffer.chunks.keys().copied().collect()
    }

    /// The full serialized message a previous attempt persisted for
    /// `(session, shipment)`, if any. This is what lets
    /// `Runtime::resume` skip serialization entirely: the executor asks
    /// for it before building the message from the feed.
    pub fn stored_message(&self, session: SessionId, shipment: u64) -> Option<Vec<u8>> {
        self.shard(session)
            .lock()
            .unwrap()
            .get(&(session, shipment))
            .map(|b| b.message.clone())
    }

    /// True when the chunk already landed.
    pub fn has_chunk(&self, session: SessionId, shipment: u64, index: usize) -> bool {
        self.shard(session)
            .lock()
            .unwrap()
            .get(&(session, shipment))
            .is_some_and(|b| b.chunks.contains_key(&index))
    }

    /// Files one verified frame under its own coordinates. Duplicates
    /// are detected and dropped; frames for unknown shipments are stale.
    pub fn file(&self, frame: &ChunkFrame) -> Filed {
        let mut map = self.shard(frame.session).lock().unwrap();
        let Some(buffer) = map.get_mut(&(frame.session, frame.shipment)) else {
            return Filed::Stale;
        };
        if frame.total != buffer.total || frame.index >= buffer.total {
            return Filed::Stale;
        }
        if buffer.chunks.contains_key(&frame.index) {
            return Filed::Duplicate;
        }
        buffer.chunks.insert(frame.index, frame.payload.clone());
        Filed::Accepted
    }

    /// Reassembles a complete shipment: every chunk present and the
    /// whole message hashing back to the announced FNV-64. The buffer is
    /// retained — it is the checkpoint a resumed session skips over.
    pub fn assemble(&self, session: SessionId, shipment: u64) -> Option<Vec<u8>> {
        let map = self.shard(session).lock().unwrap();
        let buffer = map.get(&(session, shipment))?;
        if buffer.chunks.len() != buffer.total {
            return None;
        }
        let message: Vec<u8> = buffer.chunks.values().flatten().copied().collect();
        (fnv64(&message) == buffer.message_fnv).then_some(message)
    }

    /// Drops every buffer of `session` — called when the session
    /// completes and its checkpoints are no longer needed. Each dropped
    /// buffer counts toward [`entries_pruned`].
    ///
    /// [`entries_pruned`]: ReassemblyLedger::entries_pruned
    pub fn forget_session(&self, session: SessionId) {
        let mut map = self.shard(session).lock().unwrap();
        let before = map.len();
        map.retain(|(s, _), _| *s != session);
        let dropped = (before - map.len()) as u64;
        drop(map);
        if dropped > 0 {
            self.pruned.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Total shipment buffers garbage-collected across the ledger's
    /// lifetime — acknowledged checkpoint state released after commit.
    pub fn entries_pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Checkpoint buffers evicted because a shard hit its capacity cap.
    pub fn buffers_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Chunks currently checkpointed for `session` across all shipments.
    pub fn checkpointed_chunks(&self, session: SessionId) -> usize {
        self.shard(session)
            .lock()
            .unwrap()
            .iter()
            .filter(|((s, _), _)| *s == session)
            .map(|(_, b)| b.chunks.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(
        session: u64,
        shipment: u64,
        index: usize,
        total: usize,
        payload: &[u8],
    ) -> ChunkFrame {
        ChunkFrame {
            session,
            shipment,
            index,
            total,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn files_assembles_and_dedupes() {
        let ledger = ReassemblyLedger::new();
        let message = b"abcdef";
        let prior = ledger.begin_shipment(1, 0, 2, message);
        assert!(prior.is_empty());
        assert_eq!(ledger.file(&frame(1, 0, 0, 2, b"abc")), Filed::Accepted);
        assert_eq!(ledger.file(&frame(1, 0, 0, 2, b"abc")), Filed::Duplicate);
        assert!(ledger.assemble(1, 0).is_none(), "incomplete shipment");
        assert_eq!(ledger.file(&frame(1, 0, 1, 2, b"def")), Filed::Accepted);
        assert_eq!(ledger.assemble(1, 0).unwrap(), message);
        // Out-of-order arrival assembles identically.
        let ledger2 = ReassemblyLedger::new();
        ledger2.begin_shipment(1, 0, 2, message);
        ledger2.file(&frame(1, 0, 1, 2, b"def"));
        ledger2.file(&frame(1, 0, 0, 2, b"abc"));
        assert_eq!(ledger2.assemble(1, 0).unwrap(), message);
    }

    #[test]
    fn reopening_reports_the_checkpoint() {
        let ledger = ReassemblyLedger::new();
        ledger.begin_shipment(1, 0, 3, b"abcdef");
        ledger.file(&frame(1, 0, 1, 3, b"cd"));
        // The "session" fails here; the buffer survives. A resumed
        // attempt learns chunk 1 already landed — and gets the full
        // serialized message back without re-serializing.
        let prior = ledger.begin_shipment(1, 0, 3, b"abcdef");
        assert_eq!(prior.into_iter().collect::<Vec<_>>(), vec![1]);
        assert!(ledger.has_chunk(1, 0, 1));
        assert_eq!(ledger.checkpointed_chunks(1), 1);
        assert_eq!(ledger.stored_message(1, 0).unwrap(), b"abcdef");
    }

    #[test]
    fn changed_message_resets_the_checkpoint() {
        let ledger = ReassemblyLedger::new();
        ledger.begin_shipment(1, 0, 2, b"old message");
        ledger.file(&frame(1, 0, 0, 2, b"old "));
        let prior = ledger.begin_shipment(1, 0, 2, b"new message");
        assert!(prior.is_empty(), "stale chunks must not survive");
        assert_eq!(
            ledger.stored_message(1, 0).unwrap(),
            b"new message",
            "the persisted message follows the reset"
        );
    }

    #[test]
    fn stale_and_mismatched_frames_are_discarded() {
        let ledger = ReassemblyLedger::new();
        assert_eq!(ledger.file(&frame(9, 0, 0, 1, b"x")), Filed::Stale);
        ledger.begin_shipment(1, 0, 2, b"ab");
        assert_eq!(
            ledger.file(&frame(1, 0, 0, 5, b"a")),
            Filed::Stale,
            "total disagrees with the open shipment"
        );
        assert!(ledger.stored_message(9, 9).is_none());
    }

    #[test]
    fn forgetting_a_session_drops_only_its_buffers() {
        let ledger = ReassemblyLedger::new();
        ledger.begin_shipment(1, 0, 1, b"a");
        ledger.file(&frame(1, 0, 0, 1, b"a"));
        ledger.begin_shipment(2, 0, 1, b"b");
        ledger.file(&frame(2, 0, 0, 1, b"b"));
        ledger.forget_session(1);
        assert_eq!(ledger.checkpointed_chunks(1), 0);
        assert!(ledger.stored_message(1, 0).is_none());
        assert_eq!(ledger.file(&frame(1, 0, 0, 1, b"a")), Filed::Stale);
        assert_eq!(ledger.checkpointed_chunks(2), 1);
    }

    #[test]
    fn a_full_shard_sheds_its_least_recently_touched_checkpoint() {
        // Capacity 16 → one buffer per shard; session ids 1 and 17 land
        // in the same shard.
        let ledger = ReassemblyLedger::with_capacity(16);
        ledger.begin_shipment(1, 0, 1, b"a");
        ledger.file(&frame(1, 0, 0, 1, b"a"));
        assert_eq!(ledger.buffers_shed(), 0);
        ledger.begin_shipment(17, 0, 1, b"b");
        assert_eq!(ledger.buffers_shed(), 1, "the full shard evicted");
        assert_eq!(
            ledger.checkpointed_chunks(1),
            0,
            "session 1's checkpoint was the victim"
        );
        assert!(ledger.stored_message(17, 0).is_some());
        // Re-opening the evicted shipment starts a fresh checkpoint —
        // correctness is preserved, the chunks just re-ship.
        let prior = ledger.begin_shipment(1, 0, 1, b"a");
        assert!(prior.is_empty());
        assert_eq!(ledger.buffers_shed(), 2);
    }

    #[test]
    fn touching_a_buffer_protects_it_from_eviction() {
        let ledger = ReassemblyLedger::with_capacity(32);
        // Two buffers fill session-1's shard (ids 1 and 17, cap 2).
        ledger.begin_shipment(1, 0, 1, b"a");
        ledger.begin_shipment(17, 0, 1, b"b");
        // Touch the older one: 17 becomes the LRU victim.
        ledger.begin_shipment(1, 0, 1, b"a");
        ledger.begin_shipment(33, 0, 1, b"c");
        assert_eq!(ledger.buffers_shed(), 1);
        assert!(
            ledger.stored_message(1, 0).is_some(),
            "touched buffer survives"
        );
        assert!(ledger.stored_message(17, 0).is_none(), "LRU buffer shed");
    }

    #[test]
    fn pruning_counts_released_checkpoints() {
        let ledger = ReassemblyLedger::new();
        assert_eq!(ledger.entries_pruned(), 0);
        ledger.begin_shipment(1, 0, 1, b"a");
        ledger.begin_shipment(1, 1, 1, b"b");
        ledger.begin_shipment(2, 0, 1, b"c");
        ledger.forget_session(1);
        assert_eq!(ledger.entries_pruned(), 2, "two buffers released");
        // Forgetting a session with no buffers adds nothing.
        ledger.forget_session(1);
        assert_eq!(ledger.entries_pruned(), 2);
        ledger.forget_session(2);
        assert_eq!(ledger.entries_pruned(), 3);
    }
}
