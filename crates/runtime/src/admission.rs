//! Admission-time overload estimation.
//!
//! The controller keeps three cheap signals the admission gate combines
//! into a turnaround estimate and a back-off hint:
//!
//! * an EWMA of observed per-session *service* time (wall time minus
//!   queue wait) over completed sessions,
//! * an EWMA of planned cost units, convertible to nanoseconds through
//!   the calibration layer's fleet-wide `ns_per_unit`,
//! * a sliding window of dequeue instants, whose spacing is the queue's
//!   current drain rate.
//!
//! A submission carrying a deadline is refused up front when
//! `estimated wait + estimated service > deadline` — the session would
//! only be shed at dequeue anyway, after holding a queue slot someone
//! else could have used. When no signal has been observed yet (a cold
//! runtime) the estimate is `None` and admission stays optimistic:
//! shedding on a guess would be worse than learning from one slow
//! session.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// EWMA smoothing factor for service-time and plan-cost signals.
const ALPHA: f64 = 0.2;

/// Dequeue instants retained for the drain-rate window.
const DRAIN_WINDOW: usize = 64;

/// Back-off hint when nothing has been observed yet.
const COLD_RETRY_AFTER: Duration = Duration::from_millis(25);

/// Bounds on any retry hint handed to a client.
const MIN_RETRY_AFTER: Duration = Duration::from_millis(1);
const MAX_RETRY_AFTER: Duration = Duration::from_secs(10);

/// Ceiling on the pipelining-overlap factor. With pacing off the wire is
/// simulated (near-zero wall), which would report absurd overlap; a
/// capped divisor keeps the wait estimate merely optimistic, not zero.
const MAX_OVERLAP: f64 = 64.0;

#[derive(Default)]
struct State {
    ewma_service_ns: f64,
    service_samples: u64,
    ewma_cost_units: f64,
    cost_samples: u64,
    /// Observed pipelining overlap: session wall over wall *not* hidden
    /// behind the wire (≥ 1). Queued sessions behind a pipelined fleet
    /// wait for the exposed fraction of service, not all of it.
    ewma_overlap: f64,
    overlap_samples: u64,
    dequeues: VecDeque<Instant>,
}

/// Shared overload estimator (see the module docs). One per runtime;
/// all methods are internally synchronized and O(1).
#[derive(Default)]
pub struct AdmissionController {
    state: Mutex<State>,
}

impl AdmissionController {
    /// A controller with no history: estimates are `None`, retry hints
    /// fall back to a small constant.
    pub fn new() -> AdmissionController {
        AdmissionController::default()
    }

    /// Feeds one completed session's service time (wall minus queue
    /// wait) into the EWMA.
    pub fn record_service(&self, service: Duration) {
        let mut s = self.state.lock().unwrap();
        let ns = service.as_nanos() as f64;
        s.ewma_service_ns = if s.service_samples == 0 {
            ns
        } else {
            ALPHA * ns + (1.0 - ALPHA) * s.ewma_service_ns
        };
        s.service_samples += 1;
    }

    /// Feeds one planned session's cost-model units into the EWMA.
    pub fn record_plan_cost(&self, units: f64) {
        if !units.is_finite() || units <= 0.0 {
            return;
        }
        let mut s = self.state.lock().unwrap();
        s.ewma_cost_units = if s.cost_samples == 0 {
            units
        } else {
            ALPHA * units + (1.0 - ALPHA) * s.ewma_cost_units
        };
        s.cost_samples += 1;
    }

    /// Feeds one pipelined session's overlap factor — wall time over
    /// wall time *not* hidden behind in-flight shipping — into the
    /// EWMA. Factors are clamped to `[1, MAX_OVERLAP]`; non-finite
    /// samples are dropped.
    pub fn record_overlap(&self, factor: f64) {
        if !factor.is_finite() {
            return;
        }
        let factor = factor.clamp(1.0, MAX_OVERLAP);
        let mut s = self.state.lock().unwrap();
        s.ewma_overlap = if s.overlap_samples == 0 {
            factor
        } else {
            ALPHA * factor + (1.0 - ALPHA) * s.ewma_overlap
        };
        s.overlap_samples += 1;
    }

    /// Stamps one dequeue into the drain-rate window.
    pub fn record_dequeue(&self) {
        let mut s = self.state.lock().unwrap();
        s.dequeues.push_back(Instant::now());
        while s.dequeues.len() > DRAIN_WINDOW {
            s.dequeues.pop_front();
        }
    }

    /// Estimated queue-to-completion turnaround for a session entering
    /// behind `depth` queued sessions on `workers` workers.
    /// `ns_per_unit` is the calibration layer's fleet-wide conversion
    /// (0 when uncalibrated). `None` until at least one signal exists —
    /// a cold runtime admits optimistically.
    pub fn estimated_turnaround(
        &self,
        depth: usize,
        workers: usize,
        ns_per_unit: f64,
    ) -> Option<Duration> {
        let s = self.state.lock().unwrap();
        let from_observed = (s.service_samples > 0).then_some(s.ewma_service_ns);
        let from_model =
            (s.cost_samples > 0 && ns_per_unit > 0.0).then_some(s.ewma_cost_units * ns_per_unit);
        // Two independent estimators of the same quantity; trust the
        // more pessimistic one — under overload, optimism is the error
        // that compounds.
        let service_ns = match (from_observed, from_model) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        // Pipelined sessions hide most of their service behind the wire,
        // so the queue drains faster than serial service would suggest:
        // discount the *wait* term by the observed overlap. The entering
        // session still pays its own full service time. Defaults to 1
        // (no discount) until a pipelined session reports.
        let overlap = if s.overlap_samples > 0 {
            s.ewma_overlap.max(1.0)
        } else {
            1.0
        };
        let wait_ns = service_ns * depth as f64 / workers.max(1) as f64 / overlap;
        Some(Duration::from_nanos((wait_ns + service_ns) as u64))
    }

    /// How long a refused client should back off before resubmitting:
    /// the time the queue needs to drain `depth + 1` sessions at its
    /// observed dequeue rate, clamped to sane bounds.
    pub fn retry_after(&self, depth: usize) -> Duration {
        let s = self.state.lock().unwrap();
        let per_dequeue_ns = if s.dequeues.len() >= 2 {
            let span = s.dequeues[s.dequeues.len() - 1] - s.dequeues[0];
            span.as_nanos() as f64 / (s.dequeues.len() - 1) as f64
        } else if s.service_samples > 0 {
            s.ewma_service_ns
        } else {
            COLD_RETRY_AFTER.as_nanos() as f64
        };
        let hint = Duration::from_nanos((per_dequeue_ns * (depth + 1) as f64) as u64);
        hint.clamp(MIN_RETRY_AFTER, MAX_RETRY_AFTER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_controller_estimates_nothing_and_hints_a_floor() {
        let c = AdmissionController::new();
        assert_eq!(c.estimated_turnaround(10, 4, 100.0), None);
        let hint = c.retry_after(0);
        assert!(hint >= MIN_RETRY_AFTER && hint <= MAX_RETRY_AFTER);
    }

    #[test]
    fn observed_service_drives_the_turnaround_estimate() {
        let c = AdmissionController::new();
        c.record_service(Duration::from_millis(10));
        // depth 4 on 2 workers: wait 4*10/2 = 20ms, plus 10ms service.
        let est = c.estimated_turnaround(4, 2, 0.0).unwrap();
        assert_eq!(est, Duration::from_millis(30));
    }

    #[test]
    fn the_more_pessimistic_estimator_wins() {
        let c = AdmissionController::new();
        c.record_service(Duration::from_millis(1));
        c.record_plan_cost(1000.0);
        // Model says 1000 units * 1e6 ns/unit = 1s >> observed 1ms.
        let est = c.estimated_turnaround(0, 1, 1e6).unwrap();
        assert_eq!(est, Duration::from_secs(1));
    }

    #[test]
    fn ewma_converges_toward_recent_service_times() {
        let c = AdmissionController::new();
        c.record_service(Duration::from_millis(100));
        for _ in 0..50 {
            c.record_service(Duration::from_millis(10));
        }
        let est = c.estimated_turnaround(0, 1, 0.0).unwrap();
        assert!(
            est < Duration::from_millis(12),
            "EWMA stuck at {est:?} after 50 fast sessions"
        );
    }

    #[test]
    fn retry_hint_scales_with_depth_and_drain_rate() {
        let c = AdmissionController::new();
        c.record_service(Duration::from_millis(5));
        let shallow = c.retry_after(0);
        let deep = c.retry_after(9);
        assert!(
            deep > shallow,
            "deeper queue hinted {deep:?} <= shallow {shallow:?}"
        );
        assert!(deep <= MAX_RETRY_AFTER);
    }

    #[test]
    fn overlap_discounts_the_wait_term_only() {
        let c = AdmissionController::new();
        c.record_service(Duration::from_millis(10));
        // Saturate the EWMA at 2× overlap.
        for _ in 0..200 {
            c.record_overlap(2.0);
        }
        // depth 4 on 2 workers: wait 20ms / 2 overlap = 10ms, plus the
        // session's own undiscounted 10ms of service.
        let est = c.estimated_turnaround(4, 2, 0.0).unwrap();
        assert!(
            est > Duration::from_millis(19) && est < Duration::from_millis(21),
            "overlap-discounted estimate was {est:?}"
        );
        // Garbage overlap samples are dropped or clamped, never panic.
        c.record_overlap(f64::NAN);
        c.record_overlap(0.0);
        c.record_overlap(1e12);
    }

    #[test]
    fn nonsense_plan_costs_are_ignored() {
        let c = AdmissionController::new();
        c.record_plan_cost(f64::NAN);
        c.record_plan_cost(-5.0);
        c.record_plan_cost(0.0);
        assert_eq!(c.estimated_turnaround(0, 1, 1.0), None);
    }
}
