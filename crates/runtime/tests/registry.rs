//! Integration tests of the link registry: per-pair link isolation,
//! per-link circuit breakers, and per-pair fault-profile control.

use std::time::Duration;
use xdx_net::FaultProfile;
use xdx_runtime::{
    EventKind, ExchangeRequest, Runtime, RuntimeConfig, SessionState, ShippingPolicy, SubmitError,
    DEFAULT_SOURCE_ENDPOINT, DEFAULT_TARGET_ENDPOINT,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

fn small_shipping() -> ShippingPolicy {
    ShippingPolicy {
        chunk_bytes: 1024,
        max_attempts_per_chunk: 2,
        retry_budget: 4,
        backoff_base: Duration::from_millis(1),
        ..ShippingPolicy::default()
    }
}

/// A dead pair trips *its own* breaker: admissions on that route are
/// refused while a disjoint pair keeps flowing cleanly, and the per-link
/// counters attribute every byte, retry and session to the right pair.
#[test]
fn breaker_opens_on_one_pair_while_disjoint_pairs_flow() {
    let schema = schema();
    let doc = generate(GenConfig::sized(4_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_breaker(2, Duration::from_secs(60))
            .with_shipping(small_shipping()),
    );
    // Only the berlin→oslo path is dead; every other pair inherits the
    // healthy default.
    runtime.set_link_fault_profile("berlin", "oslo", FaultProfile::drops(1.0, 9));

    // Two sessions die on the dead pair: that trips its breaker.
    for i in 0..2 {
        let handle = runtime
            .submit(
                ExchangeRequest::new(
                    format!("doomed-{i}"),
                    load_source(&doc, &schema, &mf).unwrap(),
                    mf.clone(),
                    lf.clone(),
                )
                .with_route("berlin", "oslo"),
            )
            .unwrap();
        assert_eq!(handle.wait().state, SessionState::Failed);
    }

    // The berlin→oslo breaker is open...
    let refused = runtime.submit(
        ExchangeRequest::new(
            "refused",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        )
        .with_route("berlin", "oslo"),
    );
    assert!(
        matches!(refused, Err(SubmitError::CircuitOpen { .. })),
        "dead pair admitted a session"
    );

    // ...while the disjoint berlin→madrid pair admits and completes with
    // zero retries, untouched by its neighbour's faults.
    let clean = runtime
        .submit(
            ExchangeRequest::new(
                "clean",
                load_source(&doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_route("berlin", "madrid"),
        )
        .expect("disjoint pair must admit while a neighbour's breaker is open");
    let result = clean.wait();
    assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    assert_eq!(result.metrics.route, "berlin→madrid");
    assert_eq!(result.metrics.chunks_retried, 0);

    // Per-link counters tell the two stories apart.
    let stats = runtime.shutdown();
    let dead = stats
        .links
        .iter()
        .find(|l| l.source == "berlin" && l.target == "oslo")
        .expect("dead link in snapshot");
    assert_eq!(dead.sessions_failed, 2);
    assert_eq!(dead.sessions_completed, 0);
    assert_eq!(
        dead.chunks_shipped, 0,
        "a dropped-everything link landed a chunk"
    );
    assert!(dead.wire_bytes > 0, "failed attempts still burn wire bytes");
    assert!(dead.breaker_open);
    let clean = stats
        .links
        .iter()
        .find(|l| l.source == "berlin" && l.target == "madrid")
        .expect("clean link in snapshot");
    assert_eq!(clean.sessions_completed, 1);
    assert_eq!(clean.sessions_failed, 0);
    assert_eq!(clean.chunks_retried, 0);
    assert!(!clean.breaker_open);
    assert_eq!(stats.rejected, 1);
}

/// Fleet-wide degradation with a per-pair repair: after
/// `set_fault_profile` floods every link and `set_link_fault_profile`
/// repairs one pair, the repaired pair ships without a single retry
/// while the degraded pair visibly retries — isolation in both
/// directions.
#[test]
fn per_pair_profile_overrides_fleet_wide_degradation() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 1024,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    // The whole fleet degrades...
    runtime.set_fault_profile(FaultProfile::drops(0.2, 7));
    // ...and one pair is repaired.
    runtime.set_link_fault_profile("hq", "mirror", FaultProfile::healthy());

    let submit = |name: &str, source_ep: &str, target_ep: &str| {
        runtime
            .submit(
                ExchangeRequest::new(
                    name,
                    load_source(&doc, &schema, &mf).unwrap(),
                    mf.clone(),
                    lf.clone(),
                )
                .with_route(source_ep, target_ep),
            )
            .unwrap()
    };
    let repaired = submit("repaired", "hq", "mirror");
    let degraded = submit("degraded", "hq", "archive");
    assert_eq!(repaired.wait().state, SessionState::Done);
    assert_eq!(degraded.wait().state, SessionState::Done);

    let stats = runtime.shutdown();
    let find = |target: &str| {
        stats
            .links
            .iter()
            .find(|l| l.source == "hq" && l.target == target)
            .unwrap()
            .clone()
    };
    assert_eq!(
        find("mirror").chunks_retried,
        0,
        "repaired pair still saw faults"
    );
    assert!(
        find("archive").chunks_retried > 0,
        "degraded pair never retried under 20% drops"
    );
}

/// Requests that never name a route share the default pair: the
/// registry holds exactly one link and the event log records its
/// creation exactly once.
#[test]
fn default_route_shares_one_link() {
    let schema = schema();
    let doc = generate(GenConfig::sized(4_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(2));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            runtime
                .submit(ExchangeRequest::new(
                    format!("s{i}"),
                    load_source(&doc, &schema, &mf).unwrap(),
                    mf.clone(),
                    lf.clone(),
                ))
                .unwrap()
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.wait().state, SessionState::Done);
    }
    let created: Vec<_> = runtime
        .events()
        .into_iter()
        .filter(|e| e.kind == EventKind::LinkCreated)
        .collect();
    assert_eq!(created.len(), 1, "default route created more than one link");
    assert_eq!(
        created[0].detail,
        format!("{DEFAULT_SOURCE_ENDPOINT}→{DEFAULT_TARGET_ENDPOINT}")
    );
    let stats = runtime.shutdown();
    assert_eq!(stats.links.len(), 1);
    assert_eq!(stats.links[0].sessions_completed, 3);
    assert_eq!(stats.completed, 3);
}
