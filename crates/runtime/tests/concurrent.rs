//! Integration tests of the multi-session runtime: concurrency under an
//! unreliable link, plan-cache sharing, scheduling, admission control,
//! cancellation and graceful degradation.

use std::time::Duration;
use xdx_core::{Fragmentation, Optimizer};
use xdx_net::FaultProfile;
use xdx_net::{Link, NetworkProfile};
use xdx_relational::Database;
use xdx_runtime::{
    EventKind, ExchangeRequest, Priority, Runtime, RuntimeConfig, SessionState, ShippingPolicy,
    SubmitError,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// Runs one exchange fault-free through the single-session orchestrator
/// — the ground truth the runtime's targets must match.
fn reference_for(doc: &str, source_frag: &Fragmentation, target_frag: &Fragmentation) -> Database {
    let schema = schema();
    let mut source = load_source(doc, &schema, source_frag).unwrap();
    let mut target = Database::new("reference");
    let mut link = Link::new(NetworkProfile::lan());
    let exchange = xdx_core::DataExchange::new(&schema, source_frag.clone(), target_frag.clone());
    exchange.run(&mut source, &mut target, &mut link).unwrap();
    target
}

/// The default MF→LF direction's ground truth.
fn reference_target(doc: &str) -> Database {
    let schema = schema();
    reference_for(doc, &mf(&schema), &lf(&schema))
}

fn assert_same_tables(reference: &Database, got: &Database, session: &str) {
    let mut expected_names = reference.table_names();
    let mut got_names = got.table_names();
    expected_names.sort_unstable();
    got_names.sort_unstable();
    assert_eq!(expected_names, got_names, "{session}: table sets differ");
    for name in expected_names {
        let want = &reference.table(name).unwrap().data;
        let have = &got.table(name).unwrap().data;
        assert_eq!(
            want.rows, have.rows,
            "{session}: table {name} lost or corrupted rows"
        );
    }
}

/// The headline acceptance test: ≥8 concurrent sessions complete under
/// 10% message drops with zero lost rows, and the plan cache is shared
/// across the same-shape exchanges.
#[test]
fn eight_concurrent_sessions_survive_ten_percent_drops_without_losing_rows() {
    let schema = schema();
    let doc = generate(GenConfig::sized(40_000));
    let reference = reference_target(&doc);
    let mf = mf(&schema);
    let lf = lf(&schema);

    const SESSIONS: usize = 8;
    const WORKERS: usize = 4;
    let config = RuntimeConfig::default()
        .with_workers(WORKERS)
        .with_fault_profile(FaultProfile::drops(0.10, 0x1CDE_2004))
        .with_shipping(ShippingPolicy {
            chunk_bytes: 4 * 1024,
            ..ShippingPolicy::default()
        });
    let runtime = Runtime::start(schema.clone(), config);

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let source = load_source(&doc, &schema, &mf).unwrap();
            let request =
                ExchangeRequest::new(format!("session-{i}"), source, mf.clone(), lf.clone());
            runtime.submit(request).unwrap()
        })
        .collect();

    let mut total_retries = 0;
    for handle in handles {
        let name = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Done,
            "{name}: {:?}",
            result.diagnostic
        );
        let target = result.target.expect("done sessions carry their target");
        assert_same_tables(&reference, &target, &name);
        assert!(result.metrics.rows_loaded > 0);
        assert!(result.metrics.bytes_shipped > 0);
        assert!(result.metrics.chunks_shipped > 0);
        assert!(result.metrics.total_wall >= result.metrics.queue_wait);
        total_retries += result.metrics.chunks_retried;
    }
    // 10% drops across hundreds of chunks: retries must have happened,
    // and the data above still arrived intact.
    assert!(total_retries > 0, "faulty link produced no retries");

    let stats = runtime.shutdown();
    assert_eq!(stats.completed, SESSIONS as u64);
    assert_eq!(stats.failed + stats.cancelled + stats.rejected, 0);
    assert_eq!(stats.chunks_retried, total_retries);
    assert_eq!(stats.latencies.len(), SESSIONS);
    assert!(stats.latency_percentile(50.0).unwrap() <= stats.latency_percentile(99.0).unwrap());

    // All eight exchanges share one shape: every session past the racing
    // first wave must hit the cache, and at least one plan is computed.
    assert_eq!(
        stats.plan_cache_hits + stats.plan_cache_misses,
        SESSIONS as u64
    );
    assert!(stats.plan_cache_misses >= 1);
    assert!(
        stats.plan_cache_hits >= (SESSIONS - WORKERS) as u64,
        "expected ≥{} cache hits, got {}",
        SESSIONS - WORKERS,
        stats.plan_cache_hits
    );
}

/// With a single worker the cache race disappears: one miss, N−1 hits,
/// and mixed shapes key separately.
#[test]
fn plan_cache_hits_are_exact_with_one_worker() {
    let schema = schema();
    let doc = generate(GenConfig::sized(10_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(1));

    let mut handles = Vec::new();
    for i in 0..4 {
        let source = load_source(&doc, &schema, &mf).unwrap();
        handles.push(
            runtime
                .submit(ExchangeRequest::new(
                    format!("mf-lf-{i}"),
                    source,
                    mf.clone(),
                    lf.clone(),
                ))
                .unwrap(),
        );
    }
    // A different shape (identity MF→MF) must key separately.
    let source = load_source(&doc, &schema, &mf).unwrap();
    handles.push(
        runtime
            .submit(ExchangeRequest::new(
                "mf-mf",
                source,
                mf.clone(),
                mf.clone(),
            ))
            .unwrap(),
    );
    for handle in handles {
        assert_eq!(handle.wait().state, SessionState::Done);
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.plan_cache_misses, 2); // one per distinct shape
    assert_eq!(stats.plan_cache_hits, 3);
}

/// High-priority sessions overtake queued normal/low ones.
#[test]
fn priority_sessions_overtake_queued_work() {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(1));

    // A heavy blocker occupies the single worker while the small
    // requests pile up behind it in the queue.
    let blocker_doc = generate(GenConfig::sized(400_000));
    let blocker_source = load_source(&blocker_doc, &schema, &mf).unwrap();
    let blocker = runtime
        .submit(ExchangeRequest::new(
            "blocker",
            blocker_source,
            mf.clone(),
            lf.clone(),
        ))
        .unwrap();
    // Wait for the worker to pick the blocker up, so the later
    // submissions genuinely queue behind it.
    while blocker.state() == SessionState::Queued {
        std::thread::yield_now();
    }

    let small_doc = generate(GenConfig::sized(4_000));
    let low = runtime
        .submit(
            ExchangeRequest::new(
                "low",
                load_source(&small_doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_priority(Priority::Low),
        )
        .unwrap();
    let high = runtime
        .submit(
            ExchangeRequest::new(
                "high",
                load_source(&small_doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_priority(Priority::High),
        )
        .unwrap();
    let (blocker_id, low_id, high_id) = (blocker.id(), low.id(), high.id());

    for handle in [blocker, low, high] {
        assert_eq!(handle.wait().state, SessionState::Done);
    }
    let events = runtime.events();
    let started: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::PlanningStarted)
        .map(|e| e.session)
        .collect();
    assert_eq!(started[0], blocker_id);
    let high_pos = started.iter().position(|&s| s == high_id).unwrap();
    let low_pos = started.iter().position(|&s| s == low_id).unwrap();
    assert!(
        high_pos < low_pos,
        "high priority ran after low: {started:?}"
    );
}

/// The queue bound rejects submissions instead of growing unboundedly.
#[test]
fn admission_control_rejects_when_queue_is_full() {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_max_queue_depth(2),
    );

    let blocker_doc = generate(GenConfig::sized(300_000));
    let small_doc = generate(GenConfig::sized(4_000));
    let mut handles = Vec::new();
    let mut rejections = 0;
    for i in 0..5 {
        let doc = if i == 0 { &blocker_doc } else { &small_doc };
        let source = load_source(doc, &schema, &mf).unwrap();
        match runtime.submit(ExchangeRequest::new(
            format!("s{i}"),
            source,
            mf.clone(),
            lf.clone(),
        )) {
            Ok(handle) => handles.push(handle),
            Err(SubmitError::QueueFull { depth, retry_after }) => {
                assert_eq!(depth, 2);
                assert!(retry_after > Duration::ZERO, "hint must be actionable");
                rejections += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejections >= 1, "queue bound was never enforced");
    for handle in handles {
        assert_eq!(handle.wait().state, SessionState::Done);
    }
    let rejected_events = runtime
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Rejected)
        .count() as u64;
    assert_eq!(rejected_events, rejections);
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected, rejections);
    assert_eq!(stats.admitted, 5 - rejections);
}

/// Cancelling a queued session abandons it without running it.
#[test]
fn cancelled_queued_sessions_never_execute() {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(1));

    let blocker_doc = generate(GenConfig::sized(300_000));
    let blocker = runtime
        .submit(ExchangeRequest::new(
            "blocker",
            load_source(&blocker_doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap();
    let small_doc = generate(GenConfig::sized(4_000));
    let victim = runtime
        .submit(ExchangeRequest::new(
            "victim",
            load_source(&small_doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap();
    victim.cancel();
    let victim_id = victim.id();
    let result = victim.wait();
    assert_eq!(result.state, SessionState::Cancelled);
    assert!(result.target.is_none());
    assert!(result.diagnostic.unwrap().contains("cancelled"));
    assert_eq!(blocker.wait().state, SessionState::Done);

    let events = runtime.events();
    assert!(
        !events
            .iter()
            .any(|e| e.session == victim_id && e.kind == EventKind::ExecutionStarted),
        "cancelled session still executed"
    );
    let stats = runtime.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

/// A mixed-direction fleet under the exhaustive optimizer: MF→LF and
/// LF→MF sessions interleave over the same lossy link, the two
/// directions key separately in the plan cache, and every target is
/// byte-correct for its own direction.
#[test]
fn mixed_direction_fleet_completes_under_optimal_optimizer() {
    let schema = schema();
    let doc = generate(GenConfig::sized(10_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let forward = reference_for(&doc, &mf, &lf);
    let reverse = reference_for(&doc, &lf, &mf);

    const SESSIONS: usize = 6;
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_optimizer(Optimizer::Optimal { ordering_cap: 256 })
            .with_fault_profile(FaultProfile::drops(0.05, 0xF1EE7))
            .with_shipping(ShippingPolicy {
                chunk_bytes: 4 * 1024,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let forward_leg = i % 2 == 0;
            let (from, to) = if forward_leg { (&mf, &lf) } else { (&lf, &mf) };
            let source = load_source(&doc, &schema, from).unwrap();
            let name = format!("{}-{i}", if forward_leg { "mf-lf" } else { "lf-mf" });
            let handle = runtime
                .submit(ExchangeRequest::new(name, source, from.clone(), to.clone()))
                .unwrap();
            (forward_leg, handle)
        })
        .collect();
    for (forward_leg, handle) in handles {
        let name = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Done,
            "{name}: {:?}",
            result.diagnostic
        );
        let reference = if forward_leg { &forward } else { &reverse };
        let target = result.target.expect("done sessions carry their target");
        assert_same_tables(reference, &target, &name);
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, SESSIONS as u64);
    // Two distinct shapes: the optimizer ran at least once per
    // direction, and later same-shape sessions reuse the cached plans.
    assert_eq!(
        stats.plan_cache_hits + stats.plan_cache_misses,
        SESSIONS as u64
    );
    assert!(stats.plan_cache_misses >= 2, "each direction plans once");
    assert!(
        stats.plan_cache_hits >= 2,
        "same-shape sessions never reused the optimal plans"
    );
}

/// A hopeless link exhausts the retry budget and degrades the session to
/// `Failed` with a diagnostic — the runtime itself keeps serving.
#[test]
fn hopeless_link_degrades_to_failed_with_diagnostic() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_fault_profile(FaultProfile::drops(0.97, 7))
            .with_shipping(ShippingPolicy {
                chunk_bytes: 1024,
                max_attempts_per_chunk: 4,
                retry_budget: 8,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    let source = load_source(&doc, &schema, &mf).unwrap();
    let handle = runtime
        .submit(ExchangeRequest::new("doomed", source, mf.clone(), lf))
        .unwrap();
    let result = handle.wait();
    assert_eq!(result.state, SessionState::Failed);
    let diagnostic = result.diagnostic.expect("failures carry a diagnostic");
    assert!(
        diagnostic.contains("retry budget") || diagnostic.contains("gave up"),
        "unhelpful diagnostic: {diagnostic}"
    );
    // The failed session hands back its *rolled-back* target: staged
    // writes were discarded, so no partial tables survive.
    let target = result.target.expect("failed executions carry the rollback");
    assert_eq!(target.total_rows(), 0, "partial tables survived rollback");
    assert!(target.table_names().is_empty());
    // Failed shipping still accounted for its wasted wire bytes.
    assert!(result.metrics.bytes_shipped > 0);
    assert!(result.metrics.chunks_retried > 0);

    let stats = runtime.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 0);
}
