//! Integration tests of the telemetry surface: Prometheus exposition,
//! span parenting and correlation, the bounded event ring, and
//! calibration-driven plan-cache drift eviction.

use std::time::Duration;
use xdx_net::{FaultProfile, NetworkProfile};
use xdx_runtime::{
    CalibrationConfig, EventKind, ExchangeRequest, Runtime, RuntimeConfig, SessionState,
    ShippingPolicy, WireFormat,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// Submits `n` mixed-direction sessions round-robin over `pairs`
/// endpoint pairs and waits for all of them, asserting success.
fn run_fleet(runtime: &Runtime, doc: &str, n: usize, pairs: usize) {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let (from, to) = if i % 2 == 1 { (&lf, &mf) } else { (&mf, &lf) };
            let source = load_source(doc, &schema, from).unwrap();
            runtime
                .submit(
                    ExchangeRequest::new(format!("t{i}"), source, from.clone(), to.clone())
                        .with_route(format!("site{}", i % pairs), "registry"),
                )
                .unwrap()
        })
        .collect();
    for handle in handles {
        let result = handle.wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    }
}

/// Pulls the integer following `"key":` out of a JSONL line — enough of
/// a parser for the trace/event schemas the runtime emits.
fn json_u64(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let start = line
        .find(&needle)
        .unwrap_or_else(|| panic!("{line}: no {key}"))
        + needle.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{line}: {key} is not an integer"))
}

fn json_name(line: &str) -> String {
    let start = line.find("\"name\":\"").expect("span line has a name") + 8;
    line[start..].chars().take_while(|&c| c != '"').collect()
}

/// `metrics_text()` must expose per-operator wall-time histograms at
/// both locations and per-link counters/gauges for every pair the
/// fleet touched, alongside the fleet-wide session histograms.
#[test]
fn metrics_text_exposes_operator_and_link_series() {
    let doc = generate(GenConfig::sized(30_000));
    let runtime = Runtime::start(schema(), RuntimeConfig::default().with_workers(2));
    run_fleet(&runtime, &doc, 6, 2);

    let text = runtime.metrics_text();
    for series in [
        "xdx_session_latency_ns_bucket",
        "xdx_queue_wait_ns_bucket",
        "xdx_planning_ns_bucket",
        "xdx_encode_ns_bucket",
        "xdx_op_wall_ns_bucket{op=\"Scan\",location=\"source\"",
        "xdx_op_wall_ns_bucket{op=\"Write\",location=\"target\"",
        "xdx_link_wire_bytes_total{link=\"site0→registry\"}",
        "xdx_link_wire_bytes_total{link=\"site1→registry\"}",
        "xdx_link_utilization{link=\"site0→registry\"}",
        "xdx_link_breaker_open{link=\"site0→registry\"}",
        "xdx_sessions_admitted_total 6",
        "xdx_sessions_completed_total 6",
    ] {
        assert!(
            text.contains(series),
            "metrics_text missing {series}:\n{text}"
        );
    }
    // Exposition-format sanity: each histogram base is typed once and
    // closes with an +Inf bucket.
    assert!(text.contains("# TYPE xdx_session_latency_ns histogram"));
    assert!(text.contains("xdx_session_latency_ns_bucket{le=\"+Inf\"} 6"));
    runtime.shutdown();
}

/// Every surviving span must reference a live parent, the root of each
/// session must be a `session` span, and every event must carry the
/// correlation id of a span in the trace (or 0 for runtime-scoped
/// events like link creation).
#[test]
fn trace_spans_are_parented_and_events_are_correlated() {
    let doc = generate(GenConfig::sized(30_000));
    let runtime = Runtime::start(schema(), RuntimeConfig::default().with_workers(2));
    run_fleet(&runtime, &doc, 4, 2);

    let trace = runtime.trace_jsonl();
    let mut ids = std::collections::HashSet::new();
    let mut roots = 0;
    for line in trace.lines() {
        ids.insert(json_u64(line, "span"));
        if json_name(line) == "session" {
            assert_eq!(
                json_u64(line, "parent"),
                0,
                "session spans are roots: {line}"
            );
            roots += 1;
        }
    }
    assert_eq!(roots, 4, "one root span per session");
    let mut seen = std::collections::HashSet::new();
    for line in trace.lines() {
        let parent = json_u64(line, "parent");
        assert!(
            parent == 0 || ids.contains(&parent),
            "orphaned span (parent {parent} evicted): {line}"
        );
        seen.insert(json_name(line));
    }
    for name in ["session", "queued", "plan", "exec", "ship", "Scan", "Write"] {
        assert!(seen.contains(name), "trace has no {name:?} spans: {seen:?}");
    }

    // Events join against the trace via their span correlation id.
    let events = runtime.events_jsonl();
    assert!(!events.is_empty());
    let mut correlated = 0;
    for line in events.lines() {
        let span = json_u64(line, "span");
        if span != 0 {
            assert!(ids.contains(&span), "event cites unknown span: {line}");
            correlated += 1;
        }
    }
    assert!(correlated > 0, "no event carries a span correlation id");
    runtime.shutdown();
}

/// A runtime with tracing disabled keeps its counters but records no
/// spans.
#[test]
fn tracing_off_records_no_spans_but_keeps_counters() {
    let doc = generate(GenConfig::sized(20_000));
    let runtime = Runtime::start(
        schema(),
        RuntimeConfig::default().with_workers(2).with_tracing(false),
    );
    run_fleet(&runtime, &doc, 2, 1);
    assert!(
        runtime.trace_jsonl().is_empty(),
        "spans recorded with tracing off"
    );
    let text = runtime.metrics_text();
    assert!(text.contains("xdx_sessions_completed_total 2"));
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 2);
    assert!(stats.latency_percentile(50.0).is_some());
}

/// The event log is a fixed-capacity ring: a fleet that overflows it
/// keeps only the newest window, counts what it dropped, and preserves
/// append order within the survivors.
#[test]
fn event_ring_drops_oldest_and_stays_ordered() {
    let doc = generate(GenConfig::sized(20_000));
    let runtime = Runtime::start(
        schema(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_event_capacity(16),
    );
    run_fleet(&runtime, &doc, 8, 2);

    let events = runtime.events();
    assert!(
        events.len() <= 16,
        "ring exceeded capacity: {}",
        events.len()
    );
    for pair in events.windows(2) {
        assert!(pair[0].at <= pair[1].at, "surviving events out of order");
    }
    // 8 sessions emit far more than 16 lifecycle events.
    let terminal = events
        .iter()
        .filter(|e| e.kind == EventKind::Completed)
        .count();
    assert!(terminal > 0, "newest window should hold the completions");
    let stats = runtime.shutdown();
    assert!(stats.dropped_events > 0, "overflow must be counted");
    assert_eq!(stats.completed, 8);
}

/// Injected statistics drift: after a healthy baseline settles, a
/// degraded link inflates observed communication time far past the
/// plan's predicted cost, and the sustained excursion evicts the
/// shape's cached plan (`PlanDriftEvicted` + re-plan on next use).
#[test]
fn sustained_cost_drift_evicts_cached_plan() {
    let schema_tree = schema();
    let doc = generate(GenConfig::sized(30_000));
    let mf = mf(&schema_tree);
    let lf = lf(&schema_tree);
    // A slow simulated metro link (no real-time pacing) so simulated
    // communication dominates each session's observed nanoseconds, and
    // a hair-trigger calibration so the test stays fast.
    let runtime = Runtime::start(
        schema_tree.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_network(NetworkProfile {
                bandwidth_bytes_per_sec: 200_000.0,
                latency: Duration::from_millis(2),
            })
            .with_shipping(ShippingPolicy {
                chunk_bytes: 4 * 1024,
                ..ShippingPolicy::default()
            })
            .with_calibration(CalibrationConfig {
                drift_factor: 1.4,
                min_sessions: 2,
                alpha: 0.5,
            })
            .with_wire_format(WireFormat::Xml),
    );

    let submit = |i: usize| {
        let source = load_source(&doc, &schema_tree, &mf).unwrap();
        runtime
            .submit(
                ExchangeRequest::new(format!("d{i}"), source, mf.clone(), lf.clone())
                    .with_route("site", "registry"),
            )
            .unwrap()
    };

    // Healthy baseline: same shape over and over, EWMA settles.
    for i in 0..6 {
        assert_eq!(submit(i).wait().state, SessionState::Done);
    }
    assert_eq!(
        runtime.stats().plan_cache_drift_evicted,
        0,
        "healthy fleet must not drift"
    );

    // Degrade the link: 40% drops mean ~1.7x transmissions plus
    // simulated backoff, all charged to observed communication time,
    // while the plan-cache statistics hash is unchanged (same data).
    runtime.set_link_fault_profile("site", "registry", FaultProfile::drops(0.4, 42));
    for i in 6..16 {
        let result = submit(i).wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    }

    let evictions = runtime.stats().plan_cache_drift_evicted;
    assert!(
        evictions >= 1,
        "sustained drift should evict the stale cached plan"
    );
    let drift_events = runtime
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::PlanDriftEvicted)
        .count();
    assert!(drift_events >= 1, "drift eviction must be logged");
    // The shape re-planned after eviction: more misses than the two
    // initial shapes would explain.
    let stats = runtime.shutdown();
    assert!(
        stats.plan_cache_misses >= 2,
        "eviction should force a re-plan (misses: {})",
        stats.plan_cache_misses
    );
    // Calibration saw both regimes.
    assert!(stats.completed == 16);
}
