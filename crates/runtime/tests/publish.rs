//! 1→N publish and N→1 consolidation integration tests.
//!
//! The multicast contract, per publish group: the source is probed and
//! planned **once** per distinct (shape, format); every batch is encoded
//! **once** into a shared refcounted frame ring and the same bytes ride
//! every subscriber's lane; acks, breakers, retries and resume stay
//! fully per-subscriber, so a broken lane fails alone, leaves its
//! target rolled back, and resumes from its own reassembly ledger while
//! the healthy lanes never pay an extra encode. Consolidation is the
//! mirror image: N ordinary sessions whose targets fold into one
//! database with transactional per-source staging — a dead source
//! contributes zero rows, never a torn prefix.

use std::time::Duration;
use xdx_net::{BurstLoss, FaultProfile, Link, NetworkProfile};
use xdx_relational::Database;
use xdx_runtime::{
    EventKind, ExchangeRequest, PublishRequest, Runtime, RuntimeConfig, SessionState,
    ShippingPolicy, DEFAULT_SOURCE_ENDPOINT, DEFAULT_TARGET_ENDPOINT,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// The ground truth: the same exchange over a perfect link.
fn reference_target(doc: &str) -> Database {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let mut source = load_source(doc, &schema, &mf).unwrap();
    let mut target = Database::new("reference");
    let mut link = Link::new(NetworkProfile::lan());
    let exchange = xdx_core::DataExchange::new(&schema, mf, lf);
    exchange.run(&mut source, &mut target, &mut link).unwrap();
    target
}

/// Canonical wire form of a database: table names in sorted order, each
/// followed by its feed's wire serialization.
fn wire_state(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    for name in db.table_names() {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(db.table(name).unwrap().data.to_wire().as_bytes());
    }
    out
}

fn subscribers(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("sub-{i}")).collect()
}

/// 1→4 publish: every subscriber lands byte-identical to the reference,
/// yet the group encodes each batch exactly once — the fanout run's
/// encode bytes match a 1→1 publish of the same document (the ISSUE
/// gate allows 1.2×; sharing makes them equal), and the shared-frame
/// reuse counter proves the other three lanes rode the same buffers.
#[test]
fn fanout_shares_one_encode_across_subscribers() {
    let schema = schema();
    let doc = generate(GenConfig::sized(20_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);

    // 1→1 baseline: what one lane costs in encodes.
    let single = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(2));
    let results = single
        .publish(PublishRequest::new(
            "pub",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
            subscribers(1),
        ))
        .unwrap()
        .wait();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].state,
        SessionState::Done,
        "{:?}",
        results[0].diagnostic
    );
    let base = single.shutdown();
    assert!(base.messages_serialized > 0);
    assert_eq!(base.fanout_subscribers, 1);
    assert_eq!(
        base.multicast_encode_shared, 0,
        "a group of one has nobody to share frames with"
    );

    // 1→4: same document, four subscribers.
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(2));
    let handle = runtime
        .publish(PublishRequest::new(
            "pub",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
            subscribers(4),
        ))
        .unwrap();
    assert_eq!(handle.fanout(), 4);
    let results = handle.wait();
    assert_eq!(results.len(), 4);
    for result in &results {
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
        assert_eq!(
            wire_state(result.target.as_ref().expect("done lanes carry targets")),
            reference,
            "a subscriber diverged from the reference exchange"
        );
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.fanout_subscribers, 4);
    // The k-site planner may pick a *different* program at fanout 4
    // (target-placed work bills ×4, so it leans toward the source side),
    // so message counts aren't comparable across fanouts — the encode
    // *bytes* are the gate: quadrupling the audience must not cost more
    // than 1.2× the single-subscriber encode bill.
    assert!(stats.messages_serialized > 0);
    assert!(
        stats.bytes_encoded as f64 <= 1.2 * base.bytes_encoded as f64,
        "1→4 encoded {} bytes, 1→1 encoded {} — fanout re-encoded per lane",
        stats.bytes_encoded,
        base.bytes_encoded
    );
    // Every frame was encoded once and reused by the other three lanes.
    assert_eq!(
        stats.multicast_encode_shared,
        3 * stats.messages_serialized as u64,
        "expected 3 reuses per frame"
    );
    assert_eq!(stats.multicast_encode_fallback, 0);
}

/// The degenerate group of one is an ordinary session in disguise: its
/// plan-cache key carries no fanout tag, so a later plain session of
/// the same shape hits the entry the publish populated.
#[test]
fn single_subscriber_publish_shares_plan_cache_with_plain_sessions() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(1));

    let results = runtime
        .publish(PublishRequest::new(
            "pub",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
            subscribers(1),
        ))
        .unwrap()
        .wait();
    assert_eq!(
        results[0].state,
        SessionState::Done,
        "{:?}",
        results[0].diagnostic
    );
    assert!(
        !results[0].metrics.plan_cache_hit,
        "first planning must miss"
    );

    let plain = runtime
        .submit(ExchangeRequest::new(
            "plain",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap()
        .wait();
    assert_eq!(plain.state, SessionState::Done, "{:?}", plain.diagnostic);
    assert!(
        plain.metrics.plan_cache_hit,
        "a plain session of the same shape must hit the publish's cache entry"
    );
    let stats = runtime.shutdown();
    assert_eq!(stats.plan_cache_misses, 1);
    assert!(stats.plan_cache_hits >= 1);
}

/// 1→4 chaos: one subscriber sits behind a Gilbert–Elliott burst-loss
/// link that defeats its retry budget. The three healthy lanes finish
/// byte-identical and the group still encodes each frame exactly once —
/// the adversarial lane costs the group zero extra serializations. The
/// broken lane fails alone with a rolled-back target, and after the
/// operator repairs the link it resumes from its *own* ledger: only its
/// never-acknowledged chunks cross again, with zero probes and the
/// checkpointed k-site plan.
#[test]
fn adversarial_lane_fails_alone_and_resumes_from_its_own_ledger() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let shipping = ShippingPolicy {
        chunk_bytes: 1024,
        max_attempts_per_chunk: 3,
        retry_budget: 16,
        backoff_base: Duration::from_millis(1),
        ..ShippingPolicy::default()
    };

    // All-healthy baseline: group encode count and the per-lane chunk
    // total the adversarial run must not exceed.
    let healthy = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_shipping(shipping),
    );
    let baseline = healthy
        .publish(PublishRequest::new(
            "pub",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
            subscribers(4),
        ))
        .unwrap()
        .wait();
    for result in &baseline {
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    }
    let total_chunks = baseline[3].metrics.chunks_shipped;
    let base = healthy.shutdown();

    // The adversarial run: sub-3's link flaps in and out of a lossy
    // burst state; the other three pairs stay pristine.
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_shipping(shipping),
    );
    runtime.set_link_fault_profile(
        DEFAULT_SOURCE_ENDPOINT,
        "sub-3",
        FaultProfile {
            burst_loss: Some(BurstLoss {
                enter: 0.35,
                exit: 0.15,
                loss: 0.95,
            }),
            seed: 3,
            ..FaultProfile::healthy()
        },
    );
    let handle = runtime
        .publish(PublishRequest::new(
            "pub",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
            subscribers(4),
        ))
        .unwrap();
    let flaky_id = handle.handles[3].id();
    let results = handle.wait();
    for result in &results[..3] {
        assert_eq!(
            result.state,
            SessionState::Done,
            "a healthy lane was dragged down: {:?}",
            result.diagnostic
        );
        assert_eq!(
            wire_state(result.target.as_ref().unwrap()),
            reference,
            "healthy subscriber diverged under a neighbour's faults"
        );
    }
    let failed = &results[3];
    assert_eq!(
        failed.state,
        SessionState::Failed,
        "{:?}",
        failed.diagnostic
    );
    let landed = failed.metrics.chunks_shipped;
    assert!(
        landed > 0 && landed < total_chunks,
        "need a partial shipment to make resume interesting: {landed}/{total_chunks}"
    );
    // Rolled back: the dying lane left nothing half-loaded.
    assert_eq!(
        failed
            .target
            .as_ref()
            .expect("rollback proof travels")
            .total_rows(),
        0
    );
    // Repair the one link and resume the one lane.
    runtime.set_link_fault_profile(DEFAULT_SOURCE_ENDPOINT, "sub-3", FaultProfile::healthy());
    let resumed = runtime.resume(flaky_id).expect("failed lane is resumable");
    assert_eq!(resumed.id(), flaky_id, "resume keeps the lane's session id");
    let result = resumed.wait();
    assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    assert_eq!(
        wire_state(result.target.as_ref().unwrap()),
        reference,
        "resumed subscriber diverged from the reference"
    );
    // Its own ledger, its own checkpoint: only never-acked chunks cross
    // again, under the checkpointed plan with zero fresh probes.
    assert_eq!(result.metrics.chunks_resumed, landed);
    assert_eq!(result.metrics.chunks_shipped, total_chunks - landed);
    assert!(result.metrics.plan_cache_hit, "resume re-planned");
    assert_eq!(
        result.metrics.planning_probes, 0,
        "resume re-probed the source"
    );

    let events = runtime.events();
    assert!(events.iter().any(|e| e.kind == EventKind::Resumed));
    assert!(events.iter().any(|e| e.kind == EventKind::ShipmentResumed));
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4, "three healthy lanes + the resumed one");
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.resumed, 1);
    assert_eq!(stats.fanout_subscribers, 4);
    // Zero extra encodes despite the broken lane: the group phase
    // serialized exactly what the all-healthy run did (the failed lane
    // rode the shared frames); only the resume's never-filed frames were
    // serialized on top, and those are billed to the resumed session.
    assert_eq!(
        stats.messages_serialized - result.metrics.messages_serialized as u64,
        base.messages_serialized,
        "the adversarial lane forced extra serializations on the group"
    );
}

/// N→1 consolidation: three sources land transactionally in one target
/// (row count is exactly the sum of the per-source references), and a
/// source behind a dead link fails alone — reported per-source, zero of
/// its rows in the merged database.
#[test]
fn consolidation_stages_each_source_transactionally() {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let docs: Vec<String> = (0..3)
        .map(|seed| {
            generate(GenConfig {
                target_bytes: 9_000,
                seed,
            })
        })
        .collect();
    let rows: Vec<usize> = docs
        .iter()
        .map(|d| reference_target(d).total_rows())
        .collect();
    assert!(rows.iter().all(|&r| r > 0));
    let request = |i: usize, docs: &[String]| {
        ExchangeRequest::new(
            format!("src-{i}"),
            load_source(&docs[i], &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        )
        .with_route(format!("origin-{i}"), DEFAULT_TARGET_ENDPOINT)
    };

    // All healthy: every source commits.
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(2));
    let outcome = runtime.consolidate("merge", (0..3).map(|i| request(i, &docs)).collect());
    assert_eq!(outcome.applied, 3, "{:?}", outcome.results);
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.target.total_rows(), rows.iter().sum::<usize>());
    for (source, disposition) in &outcome.results {
        assert!(disposition.is_ok(), "{source}: {disposition:?}");
    }
    runtime.shutdown();

    // One source's link eats every frame: that source fails alone and
    // contributes zero rows; the other two commit in full.
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_shipping(ShippingPolicy {
                max_attempts_per_chunk: 2,
                retry_budget: 4,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    runtime.set_link_fault_profile(
        "origin-1",
        DEFAULT_TARGET_ENDPOINT,
        FaultProfile {
            drop_probability: 1.0,
            seed: 1,
            ..FaultProfile::healthy()
        },
    );
    let outcome = runtime.consolidate("degraded", (0..3).map(|i| request(i, &docs)).collect());
    assert_eq!(outcome.applied, 2, "{:?}", outcome.results);
    assert_eq!(outcome.failed, 1);
    assert_eq!(outcome.target.total_rows(), rows[0] + rows[2]);
    assert!(outcome.results[0].1.is_ok());
    assert!(
        outcome.results[1].1.is_err(),
        "the dead-link source must be reported, not silently dropped"
    );
    assert!(outcome.results[2].1.is_ok());
    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
}
