//! Property tests for the weighted-fair admission queue: FIFO order
//! within a `(tenant, priority)` lane, per-tenant throughput shares
//! bounded by declared weights while every lane stays backlogged, and
//! no starvation — an aged low-priority entry overtakes a steady stream
//! of fresh high-priority traffic within a bounded number of pops.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use xdx_runtime::{FairQueue, Priority, DEFAULT_AGING_INTERVAL};

fn priority_of(class: u8) -> Priority {
    match class {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Entries sharing a tenant and a priority class leave the queue in
    /// push order, no matter how tenants and classes interleave. All
    /// entries are pushed and popped at one instant, so aging cannot
    /// reorder classes and the property isolates pure FIFO discipline.
    #[test]
    fn fifo_holds_within_each_tenant_and_class(
        entries in proptest::collection::vec((0u8..3, 0u8..3), 1..60),
    ) {
        let base = Instant::now();
        let mut queue: FairQueue<u64> = FairQueue::new(DEFAULT_AGING_INTERVAL);
        for (seq, &(tenant, class)) in entries.iter().enumerate() {
            let seq = seq as u64;
            queue.push(
                &format!("t{tenant}"),
                1.0,
                priority_of(class),
                seq,
                base,
                seq,
            );
        }
        let mut last_seq: HashMap<(String, Priority), u64> = HashMap::new();
        let mut popped = 0usize;
        while let Some(entry) = queue.pop_at(base) {
            popped += 1;
            prop_assert_eq!(entry.seq, entry.item);
            let key = (entry.tenant.clone(), entry.priority);
            if let Some(&prev) = last_seq.get(&key) {
                prop_assert!(
                    entry.seq > prev,
                    "lane {:?} popped seq {} after {}",
                    key, entry.seq, prev
                );
            }
            last_seq.insert(key, entry.seq);
        }
        prop_assert_eq!(popped, entries.len());
        prop_assert!(queue.is_empty());
    }

    /// While every tenant stays backlogged, each tenant's share of the
    /// pops stays within 2x of its declared fair share `w / sum(w)` —
    /// the bounded-fairness contract the runtime's admission relies on.
    #[test]
    fn backlogged_tenants_share_pops_by_weight(
        weights in proptest::collection::vec(1u8..5, 2..5),
        pops in 12usize..48,
    ) {
        let base = Instant::now();
        let mut queue: FairQueue<usize> = FairQueue::new(DEFAULT_AGING_INTERVAL);
        let total_weight: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        // Each tenant's backlog covers every pop, so no lane can drain
        // mid-run and distort the shares.
        for (t, &w) in weights.iter().enumerate() {
            for i in 0..pops {
                queue.push(
                    &format!("t{t}"),
                    f64::from(w),
                    Priority::Normal,
                    (t * pops + i) as u64,
                    base,
                    t,
                );
            }
        }
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..pops {
            let entry = queue.pop_at(base).expect("lanes stay backlogged");
            counts[entry.item] += 1;
        }
        for (t, &w) in weights.iter().enumerate() {
            let fair = pops as f64 * f64::from(w) / total_weight;
            // One pop of slack absorbs rounding at small pop counts.
            prop_assert!(
                (counts[t] as f64) <= 2.0 * fair + 1.0,
                "tenant {} took {} of {} pops, fair share {:.1}",
                t, counts[t], pops, fair
            );
            prop_assert!(
                (counts[t] as f64) + 1.0 >= fair / 2.0,
                "tenant {} starved: {} of {} pops, fair share {:.1}",
                t, counts[t], pops, fair
            );
        }
    }

    /// No starvation across classes: a low-priority entry facing a
    /// steady stream of fresh high-priority work on the same lane is
    /// promoted by aging and pops within a bounded number of rounds
    /// (score = class + waited/aging, so once it has waited past
    /// 2 x aging it outscores any fresh high entry).
    #[test]
    fn aged_low_entry_overtakes_fresh_high_traffic(
        aging_ms in 5u64..200,
        rounds in 5u64..20,
    ) {
        let base = Instant::now();
        let aging = Duration::from_millis(aging_ms);
        let mut queue: FairQueue<&'static str> = FairQueue::new(aging);
        queue.push("t", 1.0, Priority::Low, 0, base, "low");
        let mut low_popped_at = None;
        for round in 1..=rounds {
            let now = base + aging * u32::try_from(round).unwrap();
            queue.push("t", 1.0, Priority::High, round, now, "high");
            let entry = queue.pop_at(now).expect("queue is never empty here");
            if entry.item == "low" {
                low_popped_at = Some(round);
                break;
            }
        }
        let popped = low_popped_at.expect("low entry starved for every round");
        prop_assert!(
            popped <= 4,
            "low entry waited {} rounds before promotion", popped
        );
    }
}
