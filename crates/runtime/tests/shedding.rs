//! Load-shedding regression tests: expired sessions shed at dequeue
//! before burning a planning probe, refused submissions carry
//! actionable retry hints, warm estimators refuse unattainable
//! deadlines at admission, an opening breaker drains its route's queue,
//! and the resumable-checkpoint map stays bounded.

use std::time::Duration;
use xdx_net::FaultProfile;
use xdx_runtime::{
    EventKind, ExchangeRequest, Runtime, RuntimeConfig, SessionState, ShippingPolicy, SubmitError,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// The fast-fail regression: a session whose deadline expired while it
/// sat in the queue is shed at dequeue — zero statistics probes, zero
/// optimizer calls — and stays resumable. A cold estimator admits it
/// optimistically, so the shed happens at dequeue, not admission.
#[test]
fn expired_sessions_are_shed_at_dequeue_before_planning() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(1));

    // A zero deadline is already expired by the instant a worker pops
    // it; on a cold runtime the admission estimator has no signal yet,
    // so the session is admitted optimistically and shed at dequeue.
    let expired = runtime
        .submit(
            ExchangeRequest::new(
                "expired",
                load_source(&doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_deadline(Duration::ZERO),
        )
        .expect("cold estimator admits optimistically");
    let expired_id = expired.id();
    let result = expired.wait();
    assert_eq!(result.state, SessionState::Failed);
    let diagnostic = result.diagnostic.as_deref().unwrap_or_default();
    assert!(
        diagnostic.contains("shed before planning"),
        "{diagnostic:?}"
    );
    assert_eq!(
        result.metrics.planning_probes, 0,
        "an expired session must not burn a probe"
    );
    assert_eq!(result.metrics.planning, Duration::ZERO);

    let events = runtime.events();
    assert!(events.iter().any(|e| e.kind == EventKind::DeadlineExceeded));
    assert!(events.iter().any(|e| e.kind == EventKind::Shed));

    assert_eq!(
        runtime.stats().planning_probes,
        0,
        "the shed session burned no probe"
    );

    // The shed session resumes (deadline lifted) and completes. Shed
    // before planning, it carries no checkpointed plan, so the resume
    // probes once like any fresh session.
    let resumed = runtime.resume(expired_id).expect("shed keeps resumable");
    assert_eq!(resumed.wait().state, SessionState::Done);

    let stats = runtime.shutdown();
    assert_eq!(stats.sessions_shed_expired, 1);
    assert_eq!(
        stats.sessions_shed_deadline + stats.sessions_shed_breaker,
        0
    );
}

/// A full queue refuses with a drain-rate-derived `retry_after` hint,
/// mirroring the breaker's `CircuitOpen` hint.
#[test]
fn queue_full_rejections_carry_a_retry_hint() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_max_queue_depth(1),
    );

    let sources: Vec<_> = (0..4)
        .map(|_| load_source(&doc, &schema, &mf).unwrap())
        .collect();
    let mut rejections = 0;
    for (i, source) in sources.into_iter().enumerate() {
        match runtime.submit(ExchangeRequest::new(
            format!("s{i}"),
            source,
            mf.clone(),
            lf.clone(),
        )) {
            Ok(handle) => {
                handle.wait();
            }
            Err(SubmitError::QueueFull { depth, retry_after }) => {
                assert_eq!(depth, 1);
                assert!(retry_after >= Duration::from_millis(1), "{retry_after:?}");
                assert!(retry_after <= Duration::from_secs(10), "{retry_after:?}");
                rejections += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    // Waiting each handle drains the queue, so rejections need the race
    // between the submit and the worker's pop — they may or may not
    // happen here; the dedicated depth-2 test in `concurrent.rs` pins
    // the rejection itself. This test pins the hint's bounds whenever
    // one occurs.
    let stats = runtime.shutdown();
    assert_eq!(stats.rejected, rejections);
}

/// With a warm service estimator, a deadline no schedule could meet is
/// refused at admission — before it occupies a queue slot — with the
/// estimate and a retry hint attached.
#[test]
fn warm_estimator_sheds_unattainable_deadlines_at_admission() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), RuntimeConfig::default().with_workers(1));

    // Warm the estimator with one completed session.
    let warm = runtime
        .submit(ExchangeRequest::new(
            "warm",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap();
    assert_eq!(warm.wait().state, SessionState::Done);

    let refusal = runtime.submit(
        ExchangeRequest::new(
            "impossible",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        )
        .with_deadline(Duration::from_nanos(1)),
    );
    match refusal {
        Err(SubmitError::DeadlineUnattainable {
            deadline,
            estimated,
            retry_after,
        }) => {
            assert_eq!(deadline, Duration::from_nanos(1));
            assert!(estimated > deadline, "{estimated:?}");
            assert!(retry_after >= Duration::from_millis(1), "{retry_after:?}");
        }
        Err(other) => panic!("expected DeadlineUnattainable, got {other}"),
        Ok(_) => panic!("an unattainable deadline was admitted"),
    }

    assert!(runtime.events().iter().any(|e| e.kind == EventKind::Shed));
    let stats = runtime.shutdown();
    assert_eq!(stats.sessions_shed_deadline, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(
        stats.sessions_shed_expired, 0,
        "refused at admission, never queued"
    );
}

/// When a route's breaker opens, its queued sessions are drained and
/// shed immediately — none of them burns a planning probe or a retry
/// budget on a link the breaker already condemned — while other routes
/// keep completing. Shed sessions stay resumable.
#[test]
fn an_opening_breaker_drains_and_sheds_its_queued_route() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_breaker(1, Duration::from_secs(60))
            // Blocking path: the drain scenario needs the single worker
            // *occupied* until the first doomed session settles and
            // opens the breaker. The pipelined scheduler parks that
            // session mid-wire and would race the next one onto the
            // condemned link before the breaker opens (covered by the
            // chaos matrix); here the subject is the drain itself.
            .with_pipeline(false)
            .with_shipping(ShippingPolicy {
                max_attempts_per_chunk: 2,
                retry_budget: 1,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    // The doomed route loses everything; the healthy route is untouched.
    runtime.set_link_fault_profile("doomed", "hub", FaultProfile::drops(1.0, 7));

    // All sources parsed up front, submissions back-to-back: the
    // healthy session occupies the single worker while the three doomed
    // sessions pile up in the queue — so the breaker opens with two of
    // them still queued, exercising the drain.
    let mut sources: Vec<_> = (0..4)
        .map(|_| load_source(&doc, &schema, &mf).unwrap())
        .collect();
    let healthy = runtime
        .submit(
            ExchangeRequest::new("healthy", sources.remove(0), mf.clone(), lf.clone())
                .with_route("healthy", "hub"),
        )
        .unwrap();
    let mut doomed = Vec::new();
    for (i, source) in sources.into_iter().enumerate() {
        doomed.push(
            runtime
                .submit(
                    ExchangeRequest::new(format!("doomed-{i}"), source, mf.clone(), lf.clone())
                        .with_route("doomed", "hub"),
                )
                .unwrap(),
        );
    }
    assert_eq!(healthy.wait().state, SessionState::Done);

    // The first doomed session fails on the link and opens the breaker;
    // the rest are shed (drained from the queue, or refused at dequeue).
    let first = doomed.remove(0).wait();
    assert_eq!(first.state, SessionState::Failed);
    let mut shed_ids = Vec::new();
    for handle in doomed {
        let id = handle.id();
        let result = handle.wait();
        assert_eq!(result.state, SessionState::Failed);
        let diagnostic = result.diagnostic.unwrap_or_default();
        assert!(diagnostic.contains("circuit open"), "{diagnostic:?}");
        shed_ids.push(id);
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.sessions_shed_breaker, 2);
    let doomed_link = stats
        .links
        .iter()
        .find(|l| l.source == "doomed")
        .expect("doomed link registered");
    assert_eq!(doomed_link.sessions_shed, 2);
    assert!(doomed_link.breaker_open);
    assert_eq!(
        stats.planning_probes, 2,
        "one probe for the doomed route's first session, one for healthy — \
         shed sessions probed nothing"
    );
    let healthy_link = stats
        .links
        .iter()
        .find(|l| l.source == "healthy")
        .expect("healthy link registered");
    assert_eq!(healthy_link.sessions_completed, 1);
    assert_eq!(healthy_link.sessions_shed, 0);
}

/// The resumable-checkpoint map is bounded: deposits beyond
/// `max_resumables` evict the oldest checkpoint (each holds a full
/// source database — an unbounded map would defeat the flat-RSS soak).
#[test]
fn resumable_checkpoints_evict_oldest_beyond_the_cap() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_max_resumables(2),
    );

    // Three zero-deadline sessions: the cold estimator admits each, the
    // dequeue shed deposits each as a resumable checkpoint — one over
    // the cap of two.
    let handles: Vec<_> = (0..3)
        .map(|i| {
            runtime
                .submit(
                    ExchangeRequest::new(
                        format!("drop-{i}"),
                        load_source(&doc, &schema, &mf).unwrap(),
                        mf.clone(),
                        lf.clone(),
                    )
                    .with_deadline(Duration::ZERO),
                )
                .unwrap()
        })
        .collect();
    let ids: Vec<_> = handles.iter().map(|h| h.id()).collect();
    for handle in handles {
        assert_eq!(handle.wait().state, SessionState::Failed);
    }

    // The oldest deposit is gone; the two newest resume fine.
    match runtime.resume(ids[0]) {
        Err(SubmitError::UnknownSession { id }) => assert_eq!(id, ids[0]),
        Err(other) => panic!("evicted checkpoint must be unknown, got {other}"),
        Ok(_) => panic!("evicted checkpoint resumed"),
    }
    for &id in &ids[1..] {
        let resumed = runtime.resume(id).expect("within cap");
        assert_eq!(resumed.wait().state, SessionState::Done);
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.resumables_evicted, 1);
    assert_eq!(stats.sessions_shed_expired, 3);
}
