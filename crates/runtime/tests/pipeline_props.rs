//! Property tests for the streamed batch pipeline: splitting a
//! Dewey-sorted feed into operator batches, encoding each batch as its
//! own frame, and reassembling whatever arrives must be observationally
//! identical to the classic materialize-then-encode path — for both
//! wire formats, for empty feeds, and for the single-batch degenerate
//! case (where the frames must be *byte*-identical). On top of the
//! codec-level properties, the whole runtime is run A/B (pipelined vs
//! blocking) and the resulting targets compared wire-byte for wire-byte.

use proptest::prelude::*;
use xdx_codec::{decode_any, encode_in_format_into, WireFormat};
use xdx_core::exec::feed_batches;
use xdx_relational::{ColRole, Database, Dewey, Feed, FeedColumn, FeedSchema, Value};
use xdx_runtime::{ExchangeRequest, Runtime, RuntimeConfig};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// Cell vocabulary biased toward the dictionary codec's sweet spot,
/// plus the awkward cases.
const VOCAB: &[&str] = &[
    "",
    " ",
    "shipping included in price",
    "credit card",
    " leading and trailing ",
    "tab\there newline\nthere",
    "ünïcode tökens",
];

const MAX_ARITY: usize = 5;

fn cell_strategy() -> impl Strategy<Value = Value> {
    (
        0u8..8,
        any::<i64>(),
        proptest::collection::vec(0u32..500, 0..5),
        0usize..VOCAB.len(),
    )
        .prop_map(|(kind, n, path, word)| match kind {
            0 => Value::Null,
            1 | 2 => Value::Int(n),
            3 | 4 => Value::Dewey(Dewey(path)),
            _ => Value::Str(VOCAB[word].to_string()),
        })
}

fn feed_strategy() -> impl Strategy<Value = Feed> {
    (
        proptest::collection::vec(0u8..3, MAX_ARITY..=MAX_ARITY),
        proptest::collection::vec(
            proptest::collection::vec(cell_strategy(), MAX_ARITY..=MAX_ARITY),
            0..40,
        ),
    )
        .prop_map(|(roles, rows)| {
            let columns = roles
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    let role = match r {
                        0 => ColRole::NodeId,
                        1 => ColRole::ParentRef,
                        _ => ColRole::Value,
                    };
                    FeedColumn::new(format!("c{i}"), role)
                })
                .collect();
            let mut feed = Feed::new(FeedSchema::new("site", columns));
            feed.rows = rows;
            feed
        })
}

fn formats() -> [WireFormat; 2] {
    [WireFormat::Xml, WireFormat::Columnar]
}

/// Encode → decode one feed in `format`, asserting the round trip.
fn round_trip(feed: &Feed, format: WireFormat) -> Feed {
    let mut buf = Vec::new();
    encode_in_format_into(&mut buf, feed, format);
    decode_any(&buf).expect("own encoding decodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batching splits rows without loss, reorder, or duplication: the
    /// concatenation of the batches is the original feed, every batch
    /// shares the schema, and no batch except possibly the last is
    /// undersized. An empty feed still produces exactly one (empty)
    /// batch, so every cross edge ships at least one frame.
    #[test]
    fn batches_partition_the_feed(feed in feed_strategy(), batch_rows in 1usize..17) {
        let batches = feed_batches(&feed, batch_rows);
        prop_assert!(!batches.is_empty());
        if feed.rows.is_empty() {
            prop_assert_eq!(batches.len(), 1);
            prop_assert!(batches[0].rows.is_empty());
        }
        let mut rebuilt = Feed::new(feed.schema.clone());
        for (i, batch) in batches.iter().enumerate() {
            prop_assert_eq!(&batch.schema, &feed.schema);
            if i + 1 < batches.len() {
                prop_assert_eq!(batch.rows.len(), batch_rows);
            }
            rebuilt.rows.extend(batch.rows.iter().cloned());
        }
        prop_assert_eq!(&rebuilt, &feed);
    }

    /// The streamed pipeline — encode each batch as its own frame,
    /// decode what arrives, append in order — reconstructs exactly the
    /// feed the materialize-then-encode path would have delivered, in
    /// both wire formats.
    #[test]
    fn streamed_frames_reassemble_to_the_materialized_feed(
        feed in feed_strategy(),
        batch_rows in 1usize..17,
    ) {
        for format in formats() {
            let materialized = round_trip(&feed, format);
            let mut streamed: Option<Feed> = None;
            for batch in feed_batches(&feed, batch_rows) {
                let arrived = round_trip(&batch, format);
                match &mut streamed {
                    None => streamed = Some(arrived),
                    Some(acc) => acc.rows.extend(arrived.rows),
                }
            }
            let streamed = streamed.expect("at least one batch");
            prop_assert_eq!(&streamed, &materialized, "format {:?}", format);
        }
    }

    /// When the whole feed fits in one batch (including the empty
    /// feed), the pipelined path must put the *identical bytes* on the
    /// wire that the blocking path would have: same frame, bit for bit,
    /// in both formats.
    #[test]
    fn single_batch_frames_are_byte_identical(feed in feed_strategy()) {
        let batch_rows = feed.rows.len().max(1);
        for format in formats() {
            let mut whole = Vec::new();
            encode_in_format_into(&mut whole, &feed, format);
            let batches = feed_batches(&feed, batch_rows);
            prop_assert_eq!(batches.len(), 1);
            let mut framed = Vec::new();
            encode_in_format_into(&mut framed, &batches[0], format);
            prop_assert_eq!(&framed, &whole, "format {:?}", format);
        }
    }
}

/// Serializes a database to its canonical wire form for byte-exact
/// comparison.
fn wire_state(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    for name in db.table_names() {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(db.table(name).unwrap().data.to_wire().as_bytes());
    }
    out
}

fn run_exchange(doc: &str, config: RuntimeConfig) -> Database {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(schema.clone(), config);
    let source = load_source(doc, &schema, &mf).unwrap();
    let handle = runtime
        .submit(ExchangeRequest::new("ab", source, mf, lf))
        .unwrap();
    let result = handle.wait();
    assert!(
        result.state == xdx_runtime::SessionState::Done,
        "exchange failed: {:?}",
        result.diagnostic
    );
    let target = result.target.expect("done session carries its target");
    runtime.shutdown();
    target
}

/// End to end: the pipelined runtime (small batches, so multiple frames
/// stream per cross edge) delivers a target wire-identical to the
/// blocking runtime's, in both wire formats.
#[test]
fn pipelined_and_blocking_targets_are_wire_identical() {
    let doc = generate(GenConfig::sized(6_000));
    for format in formats() {
        let blocking = run_exchange(
            &doc,
            RuntimeConfig::default()
                .with_workers(2)
                .with_wire_format(format)
                .with_pipeline(false),
        );
        for batch_rows in [1usize, 7, 1024] {
            let pipelined = run_exchange(
                &doc,
                RuntimeConfig::default()
                    .with_workers(2)
                    .with_wire_format(format)
                    .with_pipeline(true)
                    .with_batch_rows(batch_rows)
                    .with_pipeline_depth(3),
            );
            assert_eq!(
                wire_state(&pipelined),
                wire_state(&blocking),
                "divergence at format {format:?}, batch_rows {batch_rows}"
            );
        }
    }
}
