//! Integration tests of the cross-site observability surface: trace
//! context propagation and stitching across a multicast publish,
//! critical-path extraction, the flight recorder's anomaly dumps, the
//! live introspection endpoint, and the completeness audit of the
//! Prometheus exposition against `RuntimeStats`/`LinkStats`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use xdx_net::{BurstLoss, FaultProfile};
use xdx_runtime::{
    ExchangeRequest, PublishRequest, Runtime, RuntimeConfig, SessionState, ShippingPolicy, STAGES,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// Pulls the integer following `"key":` out of a JSONL line.
fn json_u64(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let start = line
        .find(&needle)
        .unwrap_or_else(|| panic!("{line}: no {key}"))
        + needle.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{line}: {key} is not an integer"))
}

fn json_name(line: &str) -> String {
    let start = line.find("\"name\":\"").expect("span line has a name") + 8;
    line[start..].chars().take_while(|&c| c != '"').collect()
}

fn run_fleet(runtime: &Runtime, doc: &str, n: usize) {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let source = load_source(doc, &schema, &mf).unwrap();
            runtime
                .submit(ExchangeRequest::new(
                    format!("t{i}"),
                    source,
                    mf.clone(),
                    lf.clone(),
                ))
                .unwrap()
        })
        .collect();
    for handle in handles {
        let result = handle.wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    }
}

/// Completeness audit: every numeric `RuntimeStats` counter and every
/// `LinkStats` field must surface as a Prometheus series — a field
/// added to the structs without a series here is a bug, not a choice.
#[test]
fn every_runtime_and_link_stat_has_a_prometheus_series() {
    let doc = generate(GenConfig::sized(20_000));
    let runtime = Runtime::start(schema(), RuntimeConfig::default().with_workers(2));
    run_fleet(&runtime, &doc, 3);

    let text = runtime.metrics_text();
    // RuntimeStats numeric fields → their series, in struct order.
    let runtime_series = [
        ("admitted", "xdx_sessions_admitted_total"),
        ("rejected", "xdx_sessions_rejected_total"),
        ("completed", "xdx_sessions_completed_total"),
        ("failed", "xdx_sessions_failed_total"),
        ("cancelled", "xdx_sessions_cancelled_total"),
        ("resumed", "xdx_sessions_resumed_total"),
        ("plan_cache_hits", "xdx_plan_cache_hits_total"),
        ("plan_cache_misses", "xdx_plan_cache_misses_total"),
        ("plan_cache_expired", "xdx_plan_cache_expired_total"),
        (
            "plan_cache_stats_evicted",
            "xdx_plan_cache_stats_evicted_total",
        ),
        (
            "plan_cache_drift_evicted",
            "xdx_plan_cache_drift_evicted_total",
        ),
        ("planning_probes", "xdx_planning_probes_total"),
        ("messages_serialized", "xdx_messages_serialized_total"),
        ("bytes_shipped", "xdx_bytes_shipped_total"),
        ("bytes_encoded", "xdx_bytes_encoded_total"),
        ("encode_ns", "xdx_encode_ns_total"),
        ("chunks_shipped", "xdx_chunks_shipped_total"),
        ("chunks_resumed", "xdx_chunks_resumed_total"),
        ("chunks_deduped", "xdx_chunks_deduped_total"),
        ("chunks_retried", "xdx_chunks_retried_total"),
        ("peak_concurrent_shipments", "xdx_peak_concurrent_shipments"),
        ("latency_histogram", "xdx_session_latency_ns_bucket"),
        ("dropped_events", "xdx_events_dropped_total"),
        ("dropped_spans", "xdx_spans_dropped_total"),
        ("delta_patch_bytes", "xdx_delta_patch_bytes_total"),
        ("delta_patches_applied", "xdx_delta_patches_applied_total"),
        ("delta_full_chosen", "xdx_delta_full_chosen_total"),
        ("delta_full_fallbacks", "xdx_delta_full_fallbacks_total"),
        ("delta_chain_composed", "xdx_delta_chain_composed_total"),
        ("fanout_subscribers", "xdx_fanout_subscribers"),
        ("multicast_encode_shared", "xdx_multicast_encode_shared"),
        ("multicast_encode_fallback", "xdx_multicast_encode_fallback"),
        ("ledger_entries_pruned", "xdx_ledger_entries_pruned_total"),
        ("sessions_shed_expired", "xdx_sessions_shed_expired_total"),
        ("sessions_shed_deadline", "xdx_sessions_shed_deadline_total"),
        ("sessions_shed_breaker", "xdx_sessions_shed_breaker_total"),
        ("resumables_evicted", "xdx_resumables_evicted_total"),
        ("ledger_buffers_shed", "xdx_ledger_buffers_shed_total"),
        ("queue_depth", "xdx_queue_depth"),
    ];
    for (field, series) in runtime_series {
        assert!(
            text.contains(series),
            "RuntimeStats::{field} has no series {series}:\n{text}"
        );
    }
    // TenantStats fields, labelled per tenant.
    for series in [
        "xdx_tenant_weight{tenant=",
        "xdx_tenant_admitted_total{tenant=",
        "xdx_tenant_completed_total{tenant=",
        "xdx_tenant_shed_total{tenant=",
    ] {
        assert!(text.contains(series), "missing {series}:\n{text}");
    }
    // LinkStats fields, labelled per link pair.
    let stats = runtime.stats();
    assert!(!stats.links.is_empty());
    for link in &stats.links {
        let pair = link.pair();
        let link_series = [
            ("wire_bytes", "xdx_link_wire_bytes_total"),
            ("bytes_encoded", "xdx_link_bytes_encoded_total"),
            ("encode_ns", "xdx_link_encode_ns_total"),
            ("busy", "xdx_link_busy_ns_total"),
            ("busy", "xdx_link_utilization"),
            ("chunks_shipped", "xdx_link_chunks_shipped_total"),
            ("chunks_retried", "xdx_link_chunks_retried_total"),
            ("sessions_completed", "xdx_link_sessions_completed_total"),
            ("sessions_failed", "xdx_link_sessions_failed_total"),
            ("sessions_shed", "xdx_link_sessions_shed_total"),
            ("breaker_open", "xdx_link_breaker_open"),
            (
                "peak_concurrent_shipments",
                "xdx_link_peak_concurrent_shipments",
            ),
        ];
        for (field, series) in link_series {
            let labelled = format!("{series}{{link=\"{pair}\"}}");
            assert!(
                text.contains(&labelled),
                "LinkStats::{field} has no series {labelled}:\n{text}"
            );
        }
        // The negotiated wire format, as an info-style gauge.
        assert!(
            text.contains(&format!("xdx_link_wire_format{{link=\"{pair}\",format=")),
            "LinkStats::wire_format has no info gauge for {pair}:\n{text}"
        );
    }
    // Observability self-accounting rides the same exposition.
    for series in [
        "xdx_dropped_spans",
        "xdx_dropped_events",
        "xdx_flight_anomalies_total",
        "xdx_flight_dumps_total",
        "xdx_engine_stalled",
    ] {
        assert!(text.contains(series), "missing {series}:\n{text}");
    }
    runtime.shutdown();
}

/// Record-at-completion must not lose the spans of sessions that die
/// mid-exchange: a session failed by a dead link still flushes its
/// root `session` span (with the Failed state in the detail) and its
/// `plan` span, and the failure registers as a flight-recorder anomaly.
#[test]
fn failed_session_flushes_its_spans_and_counts_an_anomaly() {
    let doc = generate(GenConfig::sized(16_000));
    let runtime = Runtime::start(
        schema(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 1024,
                max_attempts_per_chunk: 2,
                retry_budget: 2,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    // The link is dead from the start: every chunk drops, the retry
    // budget exhausts, the session fails mid-exchange.
    runtime.set_fault_profile(FaultProfile::drops(1.0, 7));
    let schema_tree = schema();
    let mf = mf(&schema_tree);
    let lf = lf(&schema_tree);
    let result = runtime
        .submit(ExchangeRequest::new(
            "doomed",
            load_source(&doc, &schema_tree, &mf).unwrap(),
            mf,
            lf,
        ))
        .unwrap()
        .wait();
    assert_eq!(
        result.state,
        SessionState::Failed,
        "{:?}",
        result.diagnostic
    );

    let trace = runtime.trace_jsonl();
    let mut names = std::collections::HashSet::new();
    let mut failed_root = false;
    for line in trace.lines() {
        names.insert(json_name(line));
        if json_name(line) == "session" && line.contains("Failed") {
            failed_root = true;
        }
    }
    assert!(
        failed_root,
        "failed session's root span must survive: {trace}"
    );
    for name in ["queued", "plan"] {
        assert!(
            names.contains(name),
            "failed session lost its {name:?} span: {names:?}"
        );
    }
    let (anomalies, _dumps) = runtime.flight_anomalies();
    assert!(anomalies >= 1, "session failure must register an anomaly");
    runtime.shutdown();
}

/// The tentpole acceptance: a 1→3 multicast publish over a
/// Gilbert–Elliott bursty link produces ONE stitched trace tree — a
/// `publish-group` root whose trace id every lane session, receiver
/// `decode`/`stage` span and `settle` leaf carries, across all three
/// subscribers.
#[test]
fn multicast_publish_stitches_one_trace_across_three_subscribers() {
    let schema_tree = schema();
    let doc = generate(GenConfig::sized(20_000));
    let mf = mf(&schema_tree);
    let lf = lf(&schema_tree);
    let runtime = Runtime::start(
        schema_tree.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_shipping(ShippingPolicy {
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    // Bursty wide-area loss on every subscriber pair: retries and
    // backoff exercise the wire, but the group still completes.
    for i in 0..3 {
        runtime.set_link_fault_profile(
            xdx_runtime::DEFAULT_SOURCE_ENDPOINT,
            &format!("sub-{i}"),
            FaultProfile {
                burst_loss: Some(BurstLoss {
                    enter: 0.05,
                    exit: 0.4,
                    loss: 0.7,
                }),
                seed: 11 + i,
                ..FaultProfile::healthy()
            },
        );
    }
    let results = runtime
        .publish(PublishRequest::new(
            "multicast",
            load_source(&doc, &schema_tree, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
            (0..3).map(|i| format!("sub-{i}")).collect(),
        ))
        .unwrap()
        .wait();
    assert_eq!(results.len(), 3);
    for result in &results {
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    }

    // Lane handles resolve at settle; the group root records moments
    // later on the worker — poll for it.
    let mut trace = String::new();
    for _ in 0..200 {
        trace = runtime.trace_jsonl();
        if trace.contains("\"name\":\"publish-group\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Exactly one publish-group root; its span id is the trace id.
    let roots: Vec<&str> = trace
        .lines()
        .filter(|l| json_name(l) == "publish-group")
        .collect();
    assert_eq!(roots.len(), 1, "one group root: {trace}");
    let trace_id = json_u64(roots[0], "trace");
    assert_eq!(
        json_u64(roots[0], "span"),
        trace_id,
        "the group span IS the trace id"
    );
    assert_eq!(json_u64(roots[0], "parent"), 0, "the group root is a root");

    // All three lane sessions stitch under it: session roots parented
    // on the group span, carrying its trace id.
    let lane_sessions: Vec<u64> = trace
        .lines()
        .filter(|l| json_name(l) == "session" && json_u64(l, "trace") == trace_id)
        .map(|l| json_u64(l, "tid"))
        .collect();
    assert_eq!(lane_sessions.len(), 3, "three lane roots: {trace}");

    // Receiver-side stage and settle leaves on every lane, all inside
    // the same distributed trace.
    for name in ["stage", "settle"] {
        let sessions_with: std::collections::HashSet<u64> = trace
            .lines()
            .filter(|l| json_name(l) == name && json_u64(l, "trace") == trace_id)
            .map(|l| json_u64(l, "tid"))
            .collect();
        for sid in &lane_sessions {
            assert!(
                sessions_with.contains(sid),
                "lane session {sid} has no {name:?} span in trace {trace_id}: {trace}"
            );
        }
    }
    // Each shared frame decodes once — on whichever lane got it first —
    // and that decode span stitches into the group trace.
    assert!(
        trace
            .lines()
            .any(|l| json_name(l) == "decode" && json_u64(l, "trace") == trace_id),
        "no decode span stitched into trace {trace_id}: {trace}"
    );
    // Every span in the stitched tree references a live parent.
    let ids: std::collections::HashSet<u64> = trace.lines().map(|l| json_u64(l, "span")).collect();
    for line in trace.lines().filter(|l| json_u64(l, "trace") == trace_id) {
        let parent = json_u64(line, "parent");
        assert!(
            parent == 0 || ids.contains(&parent),
            "orphaned span in stitched trace: {line}"
        );
    }
    runtime.shutdown();
}

/// Critical-path extraction must attribute ≥95% of each completed
/// session's wall to the named stages, and the per-route rollup names
/// a dominant stage.
#[test]
fn critical_path_attributes_session_wall_to_named_stages() {
    let doc = generate(GenConfig::sized(30_000));
    let runtime = Runtime::start(schema(), RuntimeConfig::default().with_workers(2));
    run_fleet(&runtime, &doc, 4);

    let report = runtime.critical_path();
    assert_eq!(report.sessions.len(), 4);
    for s in &report.sessions {
        assert!(
            s.coverage >= 0.95,
            "session {} coverage {:.3} < 0.95 (stages {:?})",
            s.session,
            s.coverage,
            s.stage_ns
        );
        assert!(s.wall_ns > 0);
        assert!(
            STAGES.contains(&s.dominant),
            "dominant {:?} is not a named stage",
            s.dominant
        );
    }
    assert!(!report.routes.is_empty());
    for r in &report.routes {
        assert!(STAGES.contains(&r.dominant));
        assert_eq!(r.sessions, 4, "all sessions share the default route");
    }
    // The JSON export carries the same structure.
    let json = report.to_json();
    assert!(json.contains("\"sessions\":["));
    assert!(json.contains("\"coverage\":"));
    runtime.shutdown();
}

/// Killing a lane mid-exchange (every chunk drops once the session is
/// in flight) fires the session-failure anomaly and auto-dumps the
/// flight rings — the dump names the anomaly and holds that lane's
/// last transitions.
#[test]
fn killed_lane_dumps_flight_rings_with_its_transitions() {
    let dir = std::env::temp_dir().join(format!("xdx-observability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str: &'static str = Box::leak(dir.to_str().unwrap().to_string().into_boxed_str());

    let doc = generate(GenConfig::sized(16_000));
    let runtime = Runtime::start(
        schema(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_flight_dump_dir(dir_str)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 1024,
                max_attempts_per_chunk: 2,
                retry_budget: 2,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    let schema_tree = schema();
    let mf = mf(&schema_tree);
    let lf = lf(&schema_tree);
    // Healthy warm-up proves the route works, then the lane is killed.
    let warm = runtime
        .submit(ExchangeRequest::new(
            "warm",
            load_source(&doc, &schema_tree, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap()
        .wait();
    assert_eq!(warm.state, SessionState::Done, "{:?}", warm.diagnostic);
    runtime.set_fault_profile(FaultProfile::drops(1.0, 13));
    let killed = runtime
        .submit(ExchangeRequest::new(
            "killed",
            load_source(&doc, &schema_tree, &mf).unwrap(),
            mf,
            lf,
        ))
        .unwrap()
        .wait();
    assert_eq!(killed.state, SessionState::Failed);

    let (anomalies, dumps) = runtime.flight_anomalies();
    assert!(anomalies >= 1, "lane death must register an anomaly");
    assert!(dumps >= 1, "a dump directory is configured: must dump");
    let dump_files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .collect();
    assert!(!dump_files.is_empty(), "no flight-*.jsonl in {dir:?}");
    let body = std::fs::read_to_string(dump_files[0].path()).unwrap();
    let first = body.lines().next().unwrap();
    assert!(
        first.starts_with("{\"anomaly\":"),
        "dump leads with the anomaly: {first}"
    );
    // The rings captured the killed lane's transitions.
    assert!(
        body.contains("\"subsystem\":\"lane\""),
        "dump has no lane ring entries:\n{body}"
    );
    // The in-memory rings agree with what was dumped.
    assert!(runtime.flight_jsonl().contains("\"subsystem\":\"lane\""));
    runtime.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The live introspection endpoint serves every observability surface
/// over plain HTTP while the runtime runs, and refuses what it should.
#[test]
fn introspection_endpoint_serves_all_routes() {
    let doc = generate(GenConfig::sized(16_000));
    let runtime = Runtime::start(
        schema(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_introspect_addr("127.0.0.1:0".parse().unwrap()),
    );
    run_fleet(&runtime, &doc, 2);
    let addr = runtime.introspect_addr().expect("endpoint enabled");

    let fetch = |path: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: xdx\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    let (status, health) = fetch("/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"healthy\":true"), "{health}");
    assert!(health.contains("\"open_breakers\":[]"), "{health}");

    let (status, metrics) = fetch("/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("xdx_sessions_completed_total 2"),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE"), "exposition format: {metrics}");

    let (status, stats) = fetch("/stats.json");
    assert_eq!(status, 200);
    assert!(stats.starts_with('{'), "{stats}");
    assert!(stats.contains("\"completed\":2"), "{stats}");
    assert!(stats.contains("\"links\":["), "{stats}");
    assert!(stats.contains("\"latency_p50_ns\":"), "{stats}");

    let (status, traces) = fetch("/traces");
    assert_eq!(status, 200);
    assert!(traces.contains("\"name\":\"session\""), "{traces}");

    let (status, cp) = fetch("/critical-path");
    assert_eq!(status, 200);
    assert!(cp.contains("\"sessions\":["), "{cp}");

    let (status, calib) = fetch("/calibration");
    assert_eq!(status, 200);
    assert!(calib.starts_with('{'), "{calib}");

    let (status, _flight) = fetch("/flight");
    assert_eq!(status, 200);

    let (status, index) = fetch("/");
    assert_eq!(status, 200);
    assert!(index.contains("/metrics"), "{index}");

    let (status, _) = fetch("/no-such-route");
    assert_eq!(status, 404);

    // Query strings are stripped before routing.
    let (status, _) = fetch("/healthz?verbose=1");
    assert_eq!(status, 200);

    // The endpoint dies with the runtime.
    runtime.shutdown();
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        TcpStream::connect(addr).is_err(),
        "endpoint still listening after shutdown"
    );
}
