//! Seeded chaos harness: adversarial link models against the recovery
//! layer.
//!
//! Every adversarial [`FaultProfile`] — Gilbert–Elliott burst loss,
//! reordering, duplication, multi-byte burst corruption, and all of them
//! at once — is run across several deterministic seeds, and the surviving
//! target databases must be **byte-identical** (same wire serialization)
//! to a healthy-link baseline. On top of the matrix: resume re-ships only
//! the never-acknowledged chunks, the circuit breaker opens/half-opens/
//! closes around a link outage, and deadlines fail sessions without
//! blaming the link.
//!
//! Set `XDX_CHAOS_SEED=<u64>` to extend the seed list (the CI chaos job
//! feeds its matrix through this).

use std::time::Duration;
use xdx_net::{BurstLoss, FaultProfile, Link, NetworkProfile};
use xdx_relational::Database;
use xdx_runtime::{
    EventKind, ExchangeRequest, Runtime, RuntimeConfig, SessionState, ShippingPolicy, SubmitError,
    WireFormat,
};
use xdx_xmark::{generate, lf, load_source, mf, schema, GenConfig};

/// The ground truth: the same exchange over a perfect link.
fn reference_target(doc: &str) -> Database {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let mut source = load_source(doc, &schema, &mf).unwrap();
    let mut target = Database::new("reference");
    let mut link = Link::new(NetworkProfile::lan());
    let exchange = xdx_core::DataExchange::new(&schema, mf, lf);
    exchange.run(&mut source, &mut target, &mut link).unwrap();
    target
}

/// Serializes a database to its canonical wire form: table names in
/// sorted order, each followed by its feed's wire serialization. Two
/// databases with equal wire state are byte-identical for our purposes.
fn wire_state(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    for name in db.table_names() {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(db.table(name).unwrap().data.to_wire().as_bytes());
    }
    out
}

/// The adversarial profiles of the matrix. Severities are chosen so the
/// retry policy can still win — the *data* must survive, that is the
/// point — while leaving each failure mode clearly exercised.
fn adversarial_profiles(seed: u64) -> Vec<(&'static str, FaultProfile)> {
    vec![
        (
            "burst-loss",
            FaultProfile {
                burst_loss: Some(BurstLoss {
                    enter: 0.08,
                    exit: 0.35,
                    loss: 0.9,
                }),
                seed,
                ..FaultProfile::healthy()
            },
        ),
        (
            "reorder",
            FaultProfile {
                reorder_probability: 0.25,
                seed,
                ..FaultProfile::healthy()
            },
        ),
        (
            "duplicate",
            FaultProfile {
                duplicate_probability: 0.25,
                seed,
                ..FaultProfile::healthy()
            },
        ),
        (
            "corrupt-burst",
            FaultProfile {
                corrupt_probability: 0.20,
                corrupt_burst: 16,
                seed,
                ..FaultProfile::healthy()
            },
        ),
        (
            "everything",
            FaultProfile {
                drop_probability: 0.05,
                timeout_probability: 0.03,
                corrupt_probability: 0.05,
                corrupt_burst: 8,
                reorder_probability: 0.10,
                duplicate_probability: 0.10,
                burst_loss: Some(BurstLoss {
                    enter: 0.04,
                    exit: 0.5,
                    loss: 0.8,
                }),
                seed,
            },
        ),
    ]
}

/// Built-in seeds, extended by `XDX_CHAOS_SEED` when set.
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![0x1CDE_2004, 0xBAD_5EED, 42];
    if let Ok(extra) = std::env::var("XDX_CHAOS_SEED") {
        seeds.push(extra.trim().parse().expect("XDX_CHAOS_SEED must be a u64"));
    }
    seeds
}

/// The matrix: every adversarial profile × every seed × both wire
/// formats, two concurrent sessions each, and every surviving target
/// byte-identical to the healthy baseline. Running the full matrix under
/// the columnar codec too proves the recovery layer is format-blind:
/// loss, reordering, duplication and corruption are survived (or
/// detected and retried) identically whether the payload is XML text or
/// binary columnar frames.
#[test]
fn every_adversarial_profile_yields_byte_identical_state_across_seeds() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);

    for format in [WireFormat::Xml, WireFormat::Columnar] {
        let mut total_retried = 0;
        let mut total_deduped = 0;
        for seed in chaos_seeds() {
            for (name, profile) in adversarial_profiles(seed) {
                let runtime = Runtime::start(
                    schema.clone(),
                    RuntimeConfig::default()
                        .with_workers(2)
                        .with_wire_format(format)
                        .with_fault_profile(profile)
                        .with_shipping(ShippingPolicy {
                            chunk_bytes: 2 * 1024,
                            backoff_base: Duration::from_millis(1),
                            ..ShippingPolicy::default()
                        }),
                );
                let handles: Vec<_> = (0..2)
                    .map(|i| {
                        let source = load_source(&doc, &schema, &mf).unwrap();
                        runtime
                            .submit(ExchangeRequest::new(
                                format!("{name}-{seed:x}-{format}-{i}"),
                                source,
                                mf.clone(),
                                lf.clone(),
                            ))
                            .unwrap()
                    })
                    .collect();
                for handle in handles {
                    let session = handle.name().to_string();
                    let result = handle.wait();
                    assert_eq!(
                        result.state,
                        SessionState::Done,
                        "{session}: {:?}",
                        result.diagnostic
                    );
                    assert_eq!(result.metrics.wire_format, format, "{session}");
                    let target = result.target.expect("done sessions carry their target");
                    assert_eq!(
                        wire_state(&target),
                        reference,
                        "{session}: target state diverged from the healthy baseline"
                    );
                }
                let stats = runtime.shutdown();
                assert_eq!(stats.completed, 2, "{name}/{seed:x}/{format}");
                total_retried += stats.chunks_retried;
                total_deduped += stats.chunks_deduped;
            }
        }
        // The matrix genuinely exercised the failure modes in this format.
        assert!(
            total_retried > 0,
            "{format}: no profile ever forced a retry"
        );
        assert!(
            total_deduped > 0,
            "{format}: no duplicate delivery was ever dropped"
        );
    }
}

/// A session dies on a dead link, the link is repaired, and `resume`
/// finishes the job re-shipping *only* the chunks that never landed —
/// through the cached plan and the shipping checkpoint.
#[test]
fn resume_reships_only_unacknowledged_chunks() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let shipping = ShippingPolicy {
        chunk_bytes: 1024,
        max_attempts_per_chunk: 3,
        retry_budget: 16,
        backoff_base: Duration::from_millis(1),
        ..ShippingPolicy::default()
    };

    // Baseline on a healthy runtime: how many chunks one clean run ships.
    let healthy = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_shipping(shipping),
    );
    let baseline = healthy
        .submit(ExchangeRequest::new(
            "baseline",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap()
        .wait();
    assert_eq!(baseline.state, SessionState::Done);
    let total_chunks = baseline.metrics.chunks_shipped;
    healthy.shutdown();

    // The real runtime starts with a link that eats a third of the
    // frames — enough to defeat 3 attempts per chunk partway through.
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_fault_profile(FaultProfile {
                drop_probability: 0.35,
                seed: 3,
                ..FaultProfile::healthy()
            })
            .with_shipping(shipping),
    );
    let handle = runtime
        .submit(ExchangeRequest::new(
            "checkpointed",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap();
    let session_id = handle.id();
    let failed = handle.wait();
    assert_eq!(
        failed.state,
        SessionState::Failed,
        "{:?}",
        failed.diagnostic
    );
    let landed = failed.metrics.chunks_shipped;
    assert!(
        landed > 0 && landed < total_chunks,
        "need a partial shipment to make resume interesting: {landed}/{total_chunks}"
    );
    // Rolled back: nothing half-loaded survives the failure.
    assert_eq!(failed.target.expect("rollback travels").total_rows(), 0);

    // Operator repairs the link and resumes the session.
    runtime.set_fault_profile(FaultProfile::healthy());
    let resumed = runtime.resume(session_id).expect("session is resumable");
    assert_eq!(resumed.id(), session_id, "resume keeps the session id");
    let result = resumed.wait();
    assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);

    // The heart of the checkpoint contract: everything that landed
    // before the failure is skipped, only the remainder crosses again.
    assert_eq!(result.metrics.chunks_resumed, landed);
    assert_eq!(result.metrics.chunks_shipped, total_chunks - landed);
    assert_eq!(
        failed.metrics.chunks_shipped + result.metrics.chunks_shipped,
        total_chunks
    );
    // The plan came from the checkpoint, not a re-run of the optimizer:
    // the resumed run probes zero statistics and — because the ledger
    // persisted the assembled messages — serializes zero messages.
    assert!(result.metrics.plan_cache_hit, "resume re-planned");
    assert_eq!(
        result.metrics.planning_probes, 0,
        "resume re-probed the source"
    );
    assert_eq!(failed.metrics.planning_probes, 1);
    // Exactly-once serialization: every message the failed run assembled
    // is replayed from the ledger, never serialized again; the resume
    // only serializes the shipments the failed run never reached.
    assert!(failed.metrics.messages_serialized > 0);
    assert_eq!(
        failed.metrics.messages_serialized + result.metrics.messages_serialized,
        baseline.metrics.messages_serialized,
        "a message was serialized twice across failure and resume"
    );
    assert!(
        result.metrics.messages_serialized < baseline.metrics.messages_serialized,
        "resume replayed no checkpointed message"
    );
    // Zero re-encodes: the ledger checkpoints the *encoded* message
    // bytes, so resume ships them verbatim — the encode counters tick
    // only for shipments the failed run never assembled, and across
    // failure + resume every message pays its encode cost exactly once.
    assert!(failed.metrics.bytes_encoded > 0);
    assert_eq!(
        failed.metrics.bytes_encoded + result.metrics.bytes_encoded,
        baseline.metrics.bytes_encoded,
        "a checkpointed message was re-encoded on resume"
    );
    assert!(
        result.metrics.bytes_encoded < baseline.metrics.bytes_encoded,
        "resume re-encoded every message instead of replaying the ledger"
    );
    // And the data is exactly right.
    assert_eq!(wire_state(&result.target.unwrap()), reference);

    // A second resume of the same id has nothing to resume.
    match runtime.resume(session_id) {
        Err(SubmitError::UnknownSession { id }) => assert_eq!(id, session_id),
        other => panic!("expected UnknownSession, got {:?}", other.map(|h| h.id())),
    }
    let events = runtime.events();
    assert!(events.iter().any(|e| e.kind == EventKind::Resumed));
    assert!(events.iter().any(|e| e.kind == EventKind::ShipmentResumed));
    let stats = runtime.shutdown();
    assert_eq!(stats.resumed, 1);
    assert_eq!(stats.chunks_resumed, landed);
}

/// K consecutive link failures open the circuit breaker: submissions are
/// refused with a retry hint, a cooldown half-opens it, and a successful
/// probe over the repaired link closes it again.
#[test]
fn circuit_breaker_opens_half_opens_and_closes() {
    let schema = schema();
    let doc = generate(GenConfig::sized(4_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_fault_profile(FaultProfile::drops(1.0, 9))
            .with_breaker(2, Duration::from_millis(50))
            .with_shipping(ShippingPolicy {
                chunk_bytes: 1024,
                max_attempts_per_chunk: 2,
                retry_budget: 4,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );

    // Two sessions die on the dead link: that trips the threshold.
    for i in 0..2 {
        let handle = runtime
            .submit(ExchangeRequest::new(
                format!("victim-{i}"),
                load_source(&doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            ))
            .unwrap();
        assert_eq!(handle.wait().state, SessionState::Failed);
    }

    // The breaker is open: admission refused with a retry hint.
    let refused = runtime.submit(ExchangeRequest::new(
        "refused",
        load_source(&doc, &schema, &mf).unwrap(),
        mf.clone(),
        lf.clone(),
    ));
    let retry_after = match refused {
        Err(SubmitError::CircuitOpen { retry_after }) => retry_after,
        Err(other) => panic!("expected CircuitOpen, got {other}"),
        Ok(handle) => panic!("open breaker admitted session {}", handle.id()),
    };
    assert!(retry_after <= Duration::from_millis(50));

    // Cooldown passes, the operator repairs the link; the next
    // submission goes through as the half-open probe and succeeds.
    std::thread::sleep(Duration::from_millis(60));
    runtime.set_fault_profile(FaultProfile::healthy());
    let probe = runtime
        .submit(ExchangeRequest::new(
            "probe",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .expect("cooldown elapsed: probe admitted");
    assert_eq!(probe.wait().state, SessionState::Done);

    // Closed again: ordinary submissions flow.
    let after = runtime
        .submit(ExchangeRequest::new(
            "after",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .expect("breaker closed after probe success");
    assert_eq!(after.wait().state, SessionState::Done);

    let events = runtime.events();
    for kind in [
        EventKind::CircuitOpened,
        EventKind::CircuitHalfOpened,
        EventKind::CircuitClosed,
    ] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "missing breaker event {kind:?}"
        );
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 2);
    assert!(stats.rejected >= 1);
}

/// A deadline fails the session with a diagnostic — without opening the
/// breaker, because a slow exchange says nothing about the link — and
/// the session can be resumed, the operator's decision lifting the
/// original deadline.
#[test]
fn deadlines_fail_sessions_without_tripping_the_breaker() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_breaker(1, Duration::from_secs(60)),
    );

    let handle = runtime
        .submit(
            ExchangeRequest::new(
                "impatient",
                load_source(&doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_deadline(Duration::ZERO),
        )
        .unwrap();
    let session_id = handle.id();
    let result = handle.wait();
    assert_eq!(result.state, SessionState::Failed);
    assert!(
        result
            .diagnostic
            .as_deref()
            .unwrap_or_default()
            .contains("deadline exceeded"),
        "{:?}",
        result.diagnostic
    );
    assert!(runtime
        .events()
        .iter()
        .any(|e| e.kind == EventKind::DeadlineExceeded));

    // Breaker threshold is 1, yet the deadline failure did not trip it:
    // the next submission is admitted...
    let unbounded = runtime
        .submit(ExchangeRequest::new(
            "unbounded",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .expect("deadline failures must not open the breaker");
    assert_eq!(unbounded.wait().state, SessionState::Done);

    // ...and the timed-out session resumes, its deadline lifted.
    let resumed = runtime
        .resume(session_id)
        .expect("resumable after deadline");
    let result = resumed.wait();
    assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    runtime.shutdown();
}

/// Multi-pair chaos fleet: one route per adversarial profile plus a
/// healthy control route, all exchanging concurrently through the link
/// registry. Every surviving target — whatever its pair suffered — is
/// byte-identical to the healthy baseline, the control pair never
/// retries, and the registry observed overlapping shipment windows.
#[test]
fn heterogeneous_multi_pair_fleet_is_byte_identical_per_pair() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);

    let mut lossy_retries = 0;
    let mut peak_shipments = 0;
    for seed in chaos_seeds() {
        // Paced links give shipment windows real wall duration, so the
        // concurrency assertion below observes genuine overlap instead
        // of depending on scheduling order (the weighted-fair queue
        // staggers same-pair sessions that the old strict-FIFO queue
        // happened to run back to back).
        let runtime = Runtime::start(
            schema.clone(),
            RuntimeConfig::default()
                .with_workers(4)
                .with_link_pacing(1.0)
                .with_shipping(ShippingPolicy {
                    chunk_bytes: 2 * 1024,
                    backoff_base: Duration::from_millis(1),
                    ..ShippingPolicy::default()
                }),
        );
        let mut routes = vec![("control", FaultProfile::healthy())];
        routes.extend(adversarial_profiles(seed));
        for (name, profile) in &routes {
            runtime.set_link_fault_profile(name, "hub", *profile);
        }
        let mut handles = Vec::new();
        for (name, _) in &routes {
            for i in 0..2 {
                let source = load_source(&doc, &schema, &mf).unwrap();
                handles.push(
                    runtime
                        .submit(
                            ExchangeRequest::new(
                                format!("{name}-{seed:x}-{i}"),
                                source,
                                mf.clone(),
                                lf.clone(),
                            )
                            .with_route(*name, "hub"),
                        )
                        .unwrap(),
                );
            }
        }
        for handle in handles {
            let session = handle.name().to_string();
            let result = handle.wait();
            assert_eq!(
                result.state,
                SessionState::Done,
                "{session}: {:?}",
                result.diagnostic
            );
            assert_eq!(
                wire_state(&result.target.unwrap()),
                reference,
                "{session}: target diverged from the healthy baseline"
            );
        }
        let stats = runtime.shutdown();
        assert_eq!(stats.completed as usize, routes.len() * 2, "seed {seed:x}");
        assert_eq!(stats.links.len(), routes.len(), "seed {seed:x}");
        for link in &stats.links {
            assert_eq!(link.sessions_completed, 2, "{}", link.pair());
            assert_eq!(link.sessions_failed, 0, "{}", link.pair());
            if link.source == "control" {
                assert_eq!(link.chunks_retried, 0, "control pair saw faults");
            } else {
                lossy_retries += link.chunks_retried;
            }
        }
        peak_shipments = peak_shipments.max(stats.peak_concurrent_shipments);
    }
    assert!(lossy_retries > 0, "no adversarial pair ever forced a retry");
    assert!(
        peak_shipments >= 2,
        "4 workers over disjoint pairs never shipped concurrently (peak {peak_shipments})"
    );
}

/// Overload meets chaos: the fleet is driven at roughly 2x its worker
/// capacity while one route suffers a Gilbert–Elliott burst-loss link
/// hostile enough to defeat its retry budget. The degraded route must
/// fail fast and shed its queued backlog through the breaker; the
/// healthy route must stay clean — every session done, zero retries,
/// zero sheds — and the overload accounting must balance exactly:
/// every submission is completed or failed, every breaker shed is
/// billed to the degraded link, and no counter goes inconsistent.
#[test]
fn overloaded_fleet_sheds_the_degraded_route_and_keeps_the_healthy_one_clean() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(2)
            .with_breaker(2, Duration::from_secs(60))
            // Cap in-flight sessions at one per worker: the pipelined
            // scheduler parks sessions mid-wire and frees their workers,
            // and at the default cap (4/worker) the whole twelve-session
            // burst fits in the parked pool — the queue drains before the
            // breaker opens and there is no backlog left to shed. With
            // the cap at 2 the overload stays a visible queue, which is
            // the scenario under test.
            .with_pipeline_sessions_per_worker(1)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 2 * 1024,
                max_attempts_per_chunk: 2,
                retry_budget: 2,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    // A burst-loss channel that is almost always in its bad state and
    // drops everything while there: two attempts per chunk and a
    // two-retry budget cannot win against it.
    runtime.set_link_fault_profile(
        "degraded",
        "hub",
        FaultProfile {
            burst_loss: Some(BurstLoss {
                enter: 0.9,
                exit: 0.05,
                loss: 1.0,
            }),
            seed: 0x1CDE_2004,
            ..FaultProfile::healthy()
        },
    );

    // 2x overload on two workers: twelve sessions submitted back to
    // back (sources pre-parsed so the whole burst lands before the
    // first failure can open the breaker and refuse admissions).
    let mut sources: Vec<_> = (0..12)
        .map(|_| load_source(&doc, &schema, &mf).unwrap())
        .collect();
    let mut healthy = Vec::new();
    let mut degraded = Vec::new();
    for i in 0..4 {
        healthy.push(
            runtime
                .submit(
                    ExchangeRequest::new(
                        format!("healthy-{i}"),
                        sources.remove(0),
                        mf.clone(),
                        lf.clone(),
                    )
                    .with_route("healthy", "hub"),
                )
                .unwrap(),
        );
    }
    for (i, source) in sources.into_iter().enumerate() {
        degraded.push(
            runtime
                .submit(
                    ExchangeRequest::new(format!("degraded-{i}"), source, mf.clone(), lf.clone())
                        .with_route("degraded", "hub"),
                )
                .unwrap(),
        );
    }

    // The healthy route rides through the overload untouched.
    for handle in healthy {
        let session = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Done,
            "{session}: {:?}",
            result.diagnostic
        );
    }
    // The degraded route fails — on the link or shed from the queue.
    let mut degraded_failures = 0u64;
    for handle in degraded {
        let session = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Failed,
            "{session} survived a dead link"
        );
        degraded_failures += 1;
    }

    let events = runtime.events();
    assert!(events.iter().any(|e| e.kind == EventKind::CircuitOpened));
    assert!(events.iter().any(|e| e.kind == EventKind::Shed));

    let stats = runtime.shutdown();
    // Accounting identities under overload: nothing lost, nothing
    // double-counted, nothing negative (every counter is unsigned, so
    // consistency is the real assertion).
    assert_eq!(stats.completed, 4, "healthy sessions all completed");
    assert_eq!(stats.failed, degraded_failures);
    assert_eq!(
        stats.completed + stats.failed,
        12,
        "every submission accounted"
    );
    assert!(
        stats.sessions_shed_breaker >= 1,
        "an open breaker with a queued backlog must shed"
    );
    assert!(
        stats.sessions_shed_breaker + stats.sessions_shed_expired <= stats.failed,
        "every shed session is also a failed session"
    );
    let healthy_link = stats
        .links
        .iter()
        .find(|l| l.source == "healthy")
        .expect("healthy link tracked");
    assert_eq!(healthy_link.sessions_completed, 4);
    assert_eq!(healthy_link.sessions_failed, 0);
    assert_eq!(healthy_link.sessions_shed, 0);
    assert_eq!(healthy_link.chunks_retried, 0, "healthy link saw faults");
    let degraded_link = stats
        .links
        .iter()
        .find(|l| l.source == "degraded")
        .expect("degraded link tracked");
    assert!(
        degraded_link.breaker_open,
        "the dead route's breaker opened"
    );
    assert_eq!(
        degraded_link.sessions_failed + degraded_link.sessions_shed,
        degraded_failures,
        "every degraded failure is billed to its link, once"
    );
    assert_eq!(
        stats.links.iter().map(|l| l.sessions_shed).sum::<u64>(),
        stats.sessions_shed_breaker,
        "breaker sheds and per-link shed billing agree"
    );
    // Per-tenant accounting agrees with the global counters.
    let degraded_tenant = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "degraded→hub")
        .expect("degraded tenant tracked");
    assert_eq!(degraded_tenant.admitted, 8);
    let healthy_tenant = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "healthy→hub")
        .expect("healthy tenant tracked");
    assert_eq!(healthy_tenant.admitted, 4);
    assert_eq!(healthy_tenant.completed, 4);
    assert_eq!(healthy_tenant.shed, 0);
}

/// Format negotiation under chaos: one source ships to a columnar-capable
/// target and to a legacy XML-only target over equally hostile links. The
/// agreeing pair negotiates columnar frames; the disagreeing pair falls
/// back to XML text (a pair ships columnar only when BOTH endpoints
/// prefer it). Whatever each pair speaks, the recovery layer must deliver
/// byte-identical target tables — and the columnar pair must have paid
/// fewer encoded bytes for the identical workload.
#[test]
fn mixed_format_fleet_falls_back_per_pair_and_stays_byte_identical() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);

    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(4)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 2 * 1024,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    // The source and one target upgraded to columnar; the legacy target
    // never did, so its pair must stay on XML text despite the source's
    // preference.
    runtime.set_endpoint_format("modern-src", WireFormat::Columnar);
    runtime.set_endpoint_format("modern-dst", WireFormat::Columnar);
    runtime.set_endpoint_format("legacy-dst", WireFormat::Xml);
    let chaos = FaultProfile {
        drop_probability: 0.05,
        corrupt_probability: 0.10,
        corrupt_burst: 8,
        seed: 0x1CDE_2004,
        ..FaultProfile::healthy()
    };
    runtime.set_link_fault_profile("modern-src", "modern-dst", chaos);
    runtime.set_link_fault_profile("modern-src", "legacy-dst", chaos);

    let mut handles = Vec::new();
    for target in ["modern-dst", "legacy-dst"] {
        for i in 0..2 {
            let source = load_source(&doc, &schema, &mf).unwrap();
            handles.push(
                runtime
                    .submit(
                        ExchangeRequest::new(
                            format!("{target}-{i}"),
                            source,
                            mf.clone(),
                            lf.clone(),
                        )
                        .with_route("modern-src", target),
                    )
                    .unwrap(),
            );
        }
    }
    for handle in handles {
        let session = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Done,
            "{session}: {:?}",
            result.diagnostic
        );
        let expected = if session.starts_with("modern-dst") {
            WireFormat::Columnar
        } else {
            WireFormat::Xml
        };
        assert_eq!(result.metrics.wire_format, expected, "{session}");
        assert_eq!(
            wire_state(&result.target.unwrap()),
            reference,
            "{session}: target diverged from the healthy baseline"
        );
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.completed, 4);
    let columnar = stats
        .links
        .iter()
        .find(|l| l.target == "modern-dst")
        .expect("columnar pair tracked");
    let legacy = stats
        .links
        .iter()
        .find(|l| l.target == "legacy-dst")
        .expect("legacy pair tracked");
    assert_eq!(columnar.wire_format, WireFormat::Columnar);
    assert_eq!(legacy.wire_format, WireFormat::Xml);
    assert!(columnar.bytes_encoded > 0 && legacy.bytes_encoded > 0);
    // Identical workload, negotiated formats: the columnar pair's
    // encoded payload must be strictly smaller than the XML pair's.
    assert!(
        columnar.bytes_encoded < legacy.bytes_encoded,
        "columnar pair encoded {} bytes vs XML pair's {}",
        columnar.bytes_encoded,
        legacy.bytes_encoded
    );
}

/// The adversarial matrix again, but with the pipeline streaming *many
/// small batches* per cross edge (tiny `batch_rows`, depth 3): faults
/// now land mid-stream — between batches of one session, inside a
/// chunked batch, across interleaved sessions — and every surviving
/// target must still be byte-identical to the healthy baseline in both
/// wire formats. This is the pipelined counterpart of the blocking
/// matrix above.
#[test]
fn pipelined_batch_streams_survive_the_adversarial_matrix() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);

    for format in [WireFormat::Xml, WireFormat::Columnar] {
        let mut total_retried = 0;
        let mut total_messages = 0;
        for (name, profile) in adversarial_profiles(0x1CDE_2004) {
            let runtime = Runtime::start(
                schema.clone(),
                RuntimeConfig::default()
                    .with_workers(2)
                    .with_wire_format(format)
                    .with_fault_profile(profile)
                    .with_pipeline(true)
                    .with_batch_rows(64)
                    .with_pipeline_depth(3)
                    .with_shipping(ShippingPolicy {
                        chunk_bytes: 2 * 1024,
                        backoff_base: Duration::from_millis(1),
                        ..ShippingPolicy::default()
                    }),
            );
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let source = load_source(&doc, &schema, &mf).unwrap();
                    runtime
                        .submit(ExchangeRequest::new(
                            format!("pipe-{name}-{format}-{i}"),
                            source,
                            mf.clone(),
                            lf.clone(),
                        ))
                        .unwrap()
                })
                .collect();
            for handle in handles {
                let session = handle.name().to_string();
                let result = handle.wait();
                assert_eq!(
                    result.state,
                    SessionState::Done,
                    "{session}: {:?}",
                    result.diagnostic
                );
                // Tiny batches: the session genuinely streamed many
                // frames, it did not degenerate to one message per edge.
                assert!(
                    result.metrics.messages > 4,
                    "{session}: only {} messages — not pipelined",
                    result.metrics.messages
                );
                total_messages += result.metrics.messages;
                let target = result.target.expect("done sessions carry their target");
                assert_eq!(
                    wire_state(&target),
                    reference,
                    "{session}: pipelined target diverged from the healthy baseline"
                );
            }
            let stats = runtime.shutdown();
            assert_eq!(stats.completed, 2, "pipelined {name}/{format}");
            total_retried += stats.chunks_retried;
        }
        assert!(
            total_retried > 0,
            "{format}: the matrix never forced a retry"
        );
        assert!(total_messages > 0);
    }
}

/// A pipelined session dies mid-stream — some batches landed and were
/// staged, later ones defeated the retry policy — and the contract
/// holds end to end: the target rolls back to zero rows (no torn
/// applies), the breaker opens between batches, and after repair
/// `resume` re-ships only the never-acknowledged chunks, re-encoding
/// only the batches the failed run never submitted.
#[test]
fn mid_stream_failure_rolls_back_and_resume_reships_only_unacked_batches() {
    let schema = schema();
    let doc = generate(GenConfig::sized(8_000));
    let reference = wire_state(&reference_target(&doc));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let shipping = ShippingPolicy {
        chunk_bytes: 1024,
        max_attempts_per_chunk: 3,
        retry_budget: 16,
        backoff_base: Duration::from_millis(1),
        ..ShippingPolicy::default()
    };
    let config = || {
        RuntimeConfig::default()
            .with_workers(1)
            .with_pipeline(true)
            .with_batch_rows(64)
            .with_pipeline_depth(3)
            .with_breaker(1, Duration::from_secs(60))
            .with_shipping(shipping)
    };

    // Healthy pipelined baseline: total chunks and per-batch messages.
    let healthy = Runtime::start(schema.clone(), config());
    let baseline = healthy
        .submit(ExchangeRequest::new(
            "pipe-baseline",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap()
        .wait();
    assert_eq!(baseline.state, SessionState::Done);
    assert!(
        baseline.metrics.messages > 4,
        "baseline must stream multiple batches, got {}",
        baseline.metrics.messages
    );
    let total_chunks = baseline.metrics.chunks_shipped;
    healthy.shutdown();

    // A link lossy enough to defeat 3 attempts × 16 budget mid-stream.
    let runtime = Runtime::start(schema.clone(), config());
    runtime.set_fault_profile(FaultProfile {
        drop_probability: 0.35,
        seed: 3,
        ..FaultProfile::healthy()
    });
    let handle = runtime
        .submit(ExchangeRequest::new(
            "pipe-checkpointed",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap();
    let session_id = handle.id();
    let failed = handle.wait();
    assert_eq!(
        failed.state,
        SessionState::Failed,
        "{:?}",
        failed.diagnostic
    );
    let landed = failed.metrics.chunks_shipped;
    assert!(
        landed > 0 && landed < total_chunks,
        "need a mid-stream failure: {landed}/{total_chunks} chunks landed"
    );
    // Batches staged before the failure are rolled back with everything
    // else: the target carries zero rows, never a torn prefix.
    assert_eq!(
        failed.target.expect("rollback travels").total_rows(),
        0,
        "staged batches survived the rollback"
    );
    // The failure was the link's fault, between/inside batches, so the
    // breaker (threshold 1) opened on it.
    let events = runtime.events();
    assert!(
        events.iter().any(|e| e.kind == EventKind::CircuitOpened),
        "mid-stream link failure did not open the breaker"
    );

    // Repair and resume: bypasses the open breaker by design.
    runtime.set_fault_profile(FaultProfile::healthy());
    let result = runtime
        .resume(session_id)
        .expect("failed pipelined session is resumable")
        .wait();
    assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);

    // Only never-acknowledged chunks crossed again.
    assert_eq!(result.metrics.chunks_resumed, landed);
    assert_eq!(result.metrics.chunks_shipped, total_chunks - landed);
    // Exactly-once encoding per batch across failure + resume: batches
    // the failed run submitted were checkpointed and replay verbatim;
    // the resume encodes only the remainder.
    assert!(failed.metrics.messages_serialized > 0);
    assert_eq!(
        failed.metrics.messages_serialized + result.metrics.messages_serialized,
        baseline.metrics.messages_serialized,
        "a batch was encoded twice across failure and resume"
    );
    assert!(
        result.metrics.messages_serialized < baseline.metrics.messages_serialized,
        "resume replayed no checkpointed batch"
    );
    // And the streamed, resumed target is exactly the reference.
    assert_eq!(wire_state(&result.target.unwrap()), reference);
}
