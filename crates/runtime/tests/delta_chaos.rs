//! Delta-exchange chaos harness: versioned patch sessions against
//! faulty links and stale version preconditions.
//!
//! The contract under test, per route: a full session establishes feed
//! version 1; a follow-up session declaring `with_base_version(1)`
//! ships a Patch frame instead of the full document and leaves the
//! target byte-identical to a full re-ship of the mutated document; a
//! patch session that dies mid-ship leaves the target at the
//! precondition version (rolled back, nothing torn) and `resume`
//! re-ships only the never-acknowledged patch chunks; a stale patch —
//! its base version no longer the route head — rolls back cleanly and
//! falls back to a full re-ship inside the same session.

use std::time::Duration;
use xdx_net::{BurstLoss, FaultProfile, Link, NetworkProfile};
use xdx_relational::Database;
use xdx_runtime::{
    EventKind, ExchangeRequest, Runtime, RuntimeConfig, SessionState, ShippingPolicy, WireFormat,
    DEFAULT_SOURCE_ENDPOINT, DEFAULT_TARGET_ENDPOINT,
};
use xdx_xmark::{churn, generate, lf, load_source, mf, schema, GenConfig};

/// The ground truth: the same exchange over a perfect link.
fn reference_target(doc: &str) -> Database {
    let schema = schema();
    let mf = mf(&schema);
    let lf = lf(&schema);
    let mut source = load_source(doc, &schema, &mf).unwrap();
    let mut target = Database::new("reference");
    let mut link = Link::new(NetworkProfile::lan());
    let exchange = xdx_core::DataExchange::new(&schema, mf, lf);
    exchange.run(&mut source, &mut target, &mut link).unwrap();
    target
}

/// Canonical wire form of a database: table names in sorted order, each
/// followed by its feed's wire serialization.
fn wire_state(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    for name in db.table_names() {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(db.table(name).unwrap().data.to_wire().as_bytes());
    }
    out
}

/// Head version of the default route.
fn default_route_version(runtime: &Runtime, source_frag: &str, target_frag: &str) -> u64 {
    runtime.feed_version(
        DEFAULT_SOURCE_ENDPOINT,
        DEFAULT_TARGET_ENDPOINT,
        source_frag,
        target_frag,
    )
}

/// A 5%-churn delta session ships a small fraction of the full re-ship
/// bytes in both wire formats, applies exactly one patch, and leaves
/// the target byte-identical to a full exchange of the mutated
/// document.
#[test]
fn delta_session_ships_fraction_of_full_and_matches_reference() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let churned = churn(&doc, 5, 7);
    assert_ne!(doc, churned, "5% churn must actually mutate the document");
    let reference = wire_state(&reference_target(&churned));
    let mf = mf(&schema);
    let lf = lf(&schema);

    for format in [WireFormat::Xml, WireFormat::Columnar] {
        let runtime = Runtime::start(
            schema.clone(),
            RuntimeConfig::default()
                .with_workers(1)
                .with_wire_format(format)
                .with_shipping(ShippingPolicy {
                    chunk_bytes: 2 * 1024,
                    backoff_base: Duration::from_millis(1),
                    ..ShippingPolicy::default()
                }),
        );

        // Session 1: full exchange establishes feed version 1.
        let seed = runtime
            .submit(ExchangeRequest::new(
                format!("seed-{format}"),
                load_source(&doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            ))
            .unwrap()
            .wait();
        assert_eq!(seed.state, SessionState::Done, "{:?}", seed.diagnostic);
        assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 1);

        // Session 2: the source mutated 5% of its items; the target
        // declares it holds v1, so the planner ships a patch.
        let delta = runtime
            .submit(
                ExchangeRequest::new(
                    format!("delta-{format}"),
                    load_source(&churned, &schema, &mf).unwrap(),
                    mf.clone(),
                    lf.clone(),
                )
                .with_base_version(1),
            )
            .unwrap()
            .wait();
        assert_eq!(delta.state, SessionState::Done, "{:?}", delta.diagnostic);
        assert_eq!(delta.metrics.delta_patches_applied, 1, "{format}");
        assert_eq!(delta.metrics.delta_full_fallbacks, 0, "{format}");
        assert!(delta.metrics.delta_patch_bytes > 0, "{format}");
        assert_eq!(
            wire_state(&delta.target.expect("done sessions carry their target")),
            reference,
            "{format}: patched target diverged from a full re-ship of the mutated document"
        );
        assert_eq!(
            default_route_version(&runtime, &mf.name, &lf.name),
            2,
            "{format}: applied patch advances the feed version"
        );

        // Session 3: the same mutated document shipped in full — the
        // yardstick the patch has to beat.
        let full = runtime
            .submit(ExchangeRequest::new(
                format!("full-{format}"),
                load_source(&churned, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            ))
            .unwrap()
            .wait();
        assert_eq!(full.state, SessionState::Done, "{:?}", full.diagnostic);
        assert!(
            delta.metrics.bytes_shipped * 2 < full.metrics.bytes_shipped,
            "{format}: patch shipped {} wire bytes vs {} for the full re-ship",
            delta.metrics.bytes_shipped,
            full.metrics.bytes_shipped
        );

        assert!(runtime
            .events()
            .iter()
            .any(|e| e.kind == EventKind::DeltaApplied));
        let stats = runtime.shutdown();
        assert_eq!(stats.delta_patches_applied, 1, "{format}");
        assert!(stats.delta_patch_bytes > 0, "{format}");
        assert_eq!(stats.delta_full_fallbacks, 0, "{format}");
    }
}

/// A patch session that dies on a lossy link leaves the target at the
/// precondition version — rolled back, feed head unmoved — and resuming
/// it after the link is repaired re-ships only the never-acknowledged
/// patch chunks before applying.
#[test]
fn failed_patch_session_rolls_back_and_resume_reships_only_unacked_chunks() {
    let schema = schema();
    let doc = generate(GenConfig::sized(16_000));
    let churned = churn(&doc, 40, 11);
    let reference = wire_state(&reference_target(&churned));
    let mf = mf(&schema);
    let lf = lf(&schema);

    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 512,
                max_attempts_per_chunk: 2,
                retry_budget: 4,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );

    // Establish v1 over the still-healthy link.
    let seed = runtime
        .submit(ExchangeRequest::new(
            "seed",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap()
        .wait();
    assert_eq!(seed.state, SessionState::Done, "{:?}", seed.diagnostic);
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 1);

    // The link degrades; the patch shipment dies partway through.
    runtime.set_fault_profile(FaultProfile {
        drop_probability: 0.7,
        seed: 3,
        ..FaultProfile::healthy()
    });
    let handle = runtime
        .submit(
            ExchangeRequest::new(
                "patch",
                load_source(&churned, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_base_version(1),
        )
        .unwrap();
    let session_id = handle.id();
    let failed = handle.wait();
    assert_eq!(
        failed.state,
        SessionState::Failed,
        "{:?}",
        failed.diagnostic
    );
    // No torn apply: the target is back at the precondition version —
    // zero staged rows survive, and the feed head never moved.
    assert_eq!(failed.target.expect("rollback travels").total_rows(), 0);
    assert_eq!(failed.metrics.delta_patches_applied, 0);
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 1);
    let landed = failed.metrics.chunks_shipped;
    assert!(
        landed > 0,
        "need a partial patch shipment to make resume interesting"
    );

    // Operator repairs the link and resumes the session: the plan and
    // the already-acknowledged patch chunks come from the checkpoint.
    runtime.set_fault_profile(FaultProfile::healthy());
    let resumed = runtime.resume(session_id).expect("session is resumable");
    let result = resumed.wait();
    assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    assert!(result.metrics.plan_cache_hit, "resume re-planned");
    assert_eq!(
        result.metrics.chunks_resumed, landed,
        "resume must skip exactly the chunks that already landed"
    );
    assert_eq!(result.metrics.delta_patches_applied, 1);
    assert_eq!(
        wire_state(&result.target.unwrap()),
        reference,
        "resumed patch session diverged from a full re-ship of the mutated document"
    );
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 2);
    assert!(runtime
        .events()
        .iter()
        .any(|e| e.kind == EventKind::ShipmentResumed));
    let stats = runtime.shutdown();
    assert_eq!(stats.delta_patches_applied, 1);
    assert_eq!(stats.chunks_resumed, landed);
}

/// Stale and unknown base versions take the fallback ladder: an unknown
/// base skips the patch entirely, a stale patch ships, fails its
/// precondition at apply time, rolls back, and completes as a full
/// re-ship — all inside one session, ending at the correct state.
#[test]
fn stale_and_unknown_base_versions_fall_back_to_full_reship() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 2 * 1024,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );

    // v1 (full), then v2 (patch applied) — the honest fast path.
    let seed = runtime
        .submit(ExchangeRequest::new(
            "seed",
            load_source(&doc, &schema, &mf).unwrap(),
            mf.clone(),
            lf.clone(),
        ))
        .unwrap()
        .wait();
    assert_eq!(seed.state, SessionState::Done, "{:?}", seed.diagnostic);
    let churned = churn(&doc, 5, 7);
    let applied = runtime
        .submit(
            ExchangeRequest::new(
                "fresh",
                load_source(&churned, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_base_version(1),
        )
        .unwrap()
        .wait();
    assert_eq!(applied.metrics.delta_patches_applied, 1);
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 2);

    // Stale: the target claims v1, but the route head is already v2.
    // The patch ships, its precondition fails at apply, the staged rows
    // roll back, and the session completes as a full re-ship.
    let rechurned = churn(&doc, 5, 23);
    let stale = runtime
        .submit(
            ExchangeRequest::new(
                "stale",
                load_source(&rechurned, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_base_version(1),
        )
        .unwrap()
        .wait();
    assert_eq!(stale.state, SessionState::Done, "{:?}", stale.diagnostic);
    assert_eq!(stale.metrics.delta_patches_applied, 0);
    assert_eq!(stale.metrics.delta_full_fallbacks, 1);
    assert_eq!(
        wire_state(&stale.target.unwrap()),
        wire_state(&reference_target(&rechurned)),
        "fallback re-ship diverged from the reference"
    );
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 3);

    // Unknown: no snapshot for v99 was ever recorded — the session
    // falls back before encoding a patch at all.
    let unknown = runtime
        .submit(
            ExchangeRequest::new(
                "unknown",
                load_source(&rechurned, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_base_version(99),
        )
        .unwrap()
        .wait();
    assert_eq!(
        unknown.state,
        SessionState::Done,
        "{:?}",
        unknown.diagnostic
    );
    assert_eq!(unknown.metrics.delta_full_fallbacks, 1);
    assert_eq!(unknown.metrics.delta_patch_bytes, 0);
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 4);

    assert!(runtime
        .events()
        .iter()
        .any(|e| e.kind == EventKind::DeltaFellBack));
    let stats = runtime.shutdown();
    assert_eq!(stats.delta_patches_applied, 1);
    assert_eq!(stats.delta_full_fallbacks, 2);
}

/// Multi-route fleet: patches race adversarial link faults on every
/// route at once. The chunk-level recovery layer must deliver every
/// patch intact (corruption detected and retried, never applied), every
/// target must match a full re-ship of the mutated document, every
/// route must land on feed version 2, and the reassembly ledger must
/// have pruned the acknowledged shipment state of completed sessions.
#[test]
fn delta_fleet_races_link_faults_without_torn_applies() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let churned = churn(&doc, 5, 7);
    let reference = wire_state(&reference_target(&churned));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let seed = 0x1CDE_2004;

    let routes: Vec<(&str, FaultProfile)> = vec![
        ("control", FaultProfile::healthy()),
        (
            "burst-loss",
            FaultProfile {
                burst_loss: Some(BurstLoss {
                    enter: 0.08,
                    exit: 0.35,
                    loss: 0.9,
                }),
                seed,
                ..FaultProfile::healthy()
            },
        ),
        (
            "corrupt-burst",
            FaultProfile {
                corrupt_probability: 0.20,
                corrupt_burst: 16,
                seed,
                ..FaultProfile::healthy()
            },
        ),
        (
            "everything",
            FaultProfile {
                drop_probability: 0.05,
                timeout_probability: 0.03,
                corrupt_probability: 0.05,
                corrupt_burst: 8,
                reorder_probability: 0.10,
                duplicate_probability: 0.10,
                burst_loss: Some(BurstLoss {
                    enter: 0.04,
                    exit: 0.5,
                    loss: 0.8,
                }),
                seed,
            },
        ),
    ];

    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(4)
            .with_shipping(ShippingPolicy {
                chunk_bytes: 2 * 1024,
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );
    for (name, profile) in &routes {
        runtime.set_link_fault_profile(name, "hub", *profile);
    }

    // Wave 1: full sessions establish v1 on every route, concurrently.
    let handles: Vec<_> = routes
        .iter()
        .map(|(name, _)| {
            runtime
                .submit(
                    ExchangeRequest::new(
                        format!("seed-{name}"),
                        load_source(&doc, &schema, &mf).unwrap(),
                        mf.clone(),
                        lf.clone(),
                    )
                    .with_route(*name, "hub"),
                )
                .unwrap()
        })
        .collect();
    for handle in handles {
        let session = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Done,
            "{session}: {:?}",
            result.diagnostic
        );
    }
    for (name, _) in &routes {
        assert_eq!(runtime.feed_version(name, "hub", &mf.name, &lf.name), 1);
    }

    // Wave 2: every route ships its 5%-churn patch while its link
    // misbehaves underneath it.
    let handles: Vec<_> = routes
        .iter()
        .map(|(name, _)| {
            runtime
                .submit(
                    ExchangeRequest::new(
                        format!("patch-{name}"),
                        load_source(&churned, &schema, &mf).unwrap(),
                        mf.clone(),
                        lf.clone(),
                    )
                    .with_route(*name, "hub")
                    .with_base_version(1),
                )
                .unwrap()
        })
        .collect();
    for handle in handles {
        let session = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(
            result.state,
            SessionState::Done,
            "{session}: {:?}",
            result.diagnostic
        );
        assert_eq!(
            wire_state(&result.target.unwrap()),
            reference,
            "{session}: patched target diverged from the healthy reference"
        );
    }
    for (name, _) in &routes {
        assert_eq!(
            runtime.feed_version(name, "hub", &mf.name, &lf.name),
            2,
            "{name}: route must land on v2, applied or fallen back"
        );
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.completed as usize, routes.len() * 2);
    // Every delta session resolved through exactly one rung of the
    // ladder: applied, deliberately full, or fallen back.
    assert_eq!(
        stats.delta_patches_applied + stats.delta_full_chosen + stats.delta_full_fallbacks,
        routes.len() as u64
    );
    assert!(
        stats.delta_patches_applied >= 1,
        "no route ever applied a patch"
    );
    // Satellite: completed sessions release their reassembly state.
    assert!(
        stats.ledger_entries_pruned > 0,
        "no acknowledged shipment state was pruned after commit"
    );
}

/// Chained-delta follow-up: a subscriber whose base version aged out of
/// the snapshot retention window still gets a delta. Six full sessions
/// advance the route to v6, evicting the v1 snapshot (retention is 4);
/// a session then declaring `with_base_version(1)` must *compose* the
/// retained per-step patches back to v1 instead of falling back to a
/// full re-ship — observable as `delta_chain_composed`, exactly one
/// applied patch, and a target byte-identical to the full exchange.
#[test]
fn aged_out_base_composes_retained_step_patches() {
    let schema = schema();
    let doc = generate(GenConfig::sized(12_000));
    let final_doc = churn(&doc, 5, 7);
    assert_ne!(doc, final_doc);
    let reference = wire_state(&reference_target(&final_doc));
    let mf = mf(&schema);
    let lf = lf(&schema);
    let runtime = Runtime::start(
        schema.clone(),
        RuntimeConfig::default()
            .with_workers(1)
            .with_shipping(ShippingPolicy {
                backoff_base: Duration::from_millis(1),
                ..ShippingPolicy::default()
            }),
    );

    // v1 is the original document; five more full sessions (each a
    // small churn of it) advance the head to v6, pushing v1 out of the
    // 4-deep snapshot window while its step patches stay retained.
    for (i, version_doc) in std::iter::once(doc.clone())
        .chain((1..=5).map(|i| churn(&doc, 2, i)))
        .enumerate()
    {
        let result = runtime
            .submit(ExchangeRequest::new(
                format!("full-v{}", i + 1),
                load_source(&version_doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            ))
            .unwrap()
            .wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
    }
    assert_eq!(default_route_version(&runtime, &mf.name, &lf.name), 6);

    // The old subscriber asks for a delta from v1.
    let chained = runtime
        .submit(
            ExchangeRequest::new(
                "chained",
                load_source(&final_doc, &schema, &mf).unwrap(),
                mf.clone(),
                lf.clone(),
            )
            .with_base_version(1),
        )
        .unwrap()
        .wait();
    assert_eq!(
        chained.state,
        SessionState::Done,
        "{:?}",
        chained.diagnostic
    );
    assert_eq!(
        chained.metrics.delta_chain_composed, 1,
        "the aged-out base must be reconstructed from step patches"
    );
    assert_eq!(chained.metrics.delta_patches_applied, 1);
    assert_eq!(
        chained.metrics.delta_full_fallbacks, 0,
        "a retained chain must not fall back to a full re-ship"
    );
    assert_eq!(
        wire_state(&chained.target.expect("done sessions carry their target")),
        reference,
        "chain-composed patch diverged from the full exchange"
    );
    assert!(runtime
        .events()
        .iter()
        .any(|e| e.kind == EventKind::DeltaChainComposed));

    let stats = runtime.shutdown();
    assert_eq!(stats.delta_chain_composed, 1);
    assert_eq!(stats.delta_patches_applied, 1);
}
