//! Parser for the DTD subset used by the paper's Figure 7.
//!
//! Supported declarations:
//!
//! * `<!ELEMENT name (child1, child2*, child3?) >` — sequence content with
//!   `?`, `*`, `+` cardinalities, including a cardinality on the whole group
//!   (`(category+)` is normalized to a single repeated child),
//! * `<!ELEMENT name (#PCDATA)>` and `<!ELEMENT name EMPTY>` — leaves,
//! * `<!ATTLIST name attr CDATA|ID #REQUIRED|#IMPLIED>` — recorded but not
//!   enforced (the exchange model only cares about the element tree),
//! * the paper's shorthand `(id ID)` for "this element just carries an
//!   identifier" — treated as a text leaf.
//!
//! The result is a [`SchemaTree`], the same model the XSD reader produces,
//! so DTD-described and XSD-described services are interchangeable.

use crate::error::{Error, Result};
use crate::parser::is_valid_name;
use crate::schema::{NodeId, Occurs, SchemaTree};
use std::collections::HashMap;

/// One parsed `<!ELEMENT>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// The declared element.
    pub name: String,
    /// Children in order with cardinalities; empty for leaves.
    pub children: Vec<(String, Occurs)>,
    /// True for `(#PCDATA)`, `(id ID)` and `EMPTY`-with-attributes leaves.
    pub is_leaf: bool,
}

/// One parsed `<!ATTLIST>` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Owning element.
    pub element: String,
    /// Attribute name.
    pub name: String,
    /// Declared type token (`ID`, `CDATA`, ...).
    pub ty: String,
    /// `true` for `#REQUIRED`.
    pub required: bool,
}

/// A parsed DTD: element declarations plus attribute lists.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    /// Element declarations in document order.
    pub elements: Vec<ElementDecl>,
    /// Attribute declarations in document order.
    pub attributes: Vec<AttrDecl>,
}

impl Dtd {
    /// Parses the body of a DTD (a sequence of `<!ELEMENT>` / `<!ATTLIST>`
    /// declarations; comments allowed).
    pub fn parse(src: &str) -> Result<Dtd> {
        let mut dtd = Dtd::default();
        let mut rest = src;
        let mut offset = 0usize;
        loop {
            let trimmed_len = rest.len() - rest.trim_start().len();
            rest = rest.trim_start();
            offset += trimmed_len;
            if rest.is_empty() {
                break;
            }
            if let Some(after) = rest.strip_prefix("<!--") {
                let end = after.find("-->").ok_or(Error::UnexpectedEof {
                    offset,
                    context: "DTD comment",
                })?;
                offset += 4 + end + 3;
                rest = &after[end + 3..];
                continue;
            }
            let close = rest.find('>').ok_or(Error::UnexpectedEof {
                offset,
                context: "DTD declaration",
            })?;
            let decl = &rest[..close];
            if let Some(body) = decl.strip_prefix("<!ELEMENT") {
                dtd.elements.push(parse_element_decl(body, offset)?);
            } else if let Some(body) = decl.strip_prefix("<!ATTLIST") {
                dtd.attributes.extend(parse_attlist(body, offset)?);
            } else {
                return Err(Error::Dtd {
                    offset,
                    detail: format!("unsupported declaration: {}", truncate(decl, 40)),
                });
            }
            offset += close + 1;
            rest = &rest[close + 1..];
        }
        Ok(dtd)
    }

    /// Builds the element tree rooted at `root`.
    ///
    /// Every element reachable from `root` must be declared (elements
    /// declared but unreachable are ignored). Errors on cycles, on elements
    /// used under two different parents (the tree model requires unique
    /// parents), and on undeclared children.
    pub fn to_schema_tree(&self, root: &str) -> Result<SchemaTree> {
        let by_name: HashMap<&str, &ElementDecl> =
            self.elements.iter().map(|e| (e.name.as_str(), e)).collect();
        if !by_name.contains_key(root) {
            return Err(Error::Schema {
                detail: format!("root element {root:?} not declared"),
            });
        }
        let mut tree = SchemaTree::new(root);
        let mut stack: Vec<(NodeId, &str)> = vec![(tree.root(), root)];
        while let Some((id, name)) = stack.pop() {
            let decl = by_name.get(name).ok_or_else(|| Error::Schema {
                detail: format!("element {name:?} not declared"),
            })?;
            if decl.is_leaf {
                tree.set_text(id);
                continue;
            }
            for (child, occurs) in &decl.children {
                let cid =
                    tree.add_child(id, child.clone(), *occurs)
                        .map_err(|_| Error::Schema {
                            detail: format!(
                        "element {child:?} appears under more than one parent (or a cycle exists)"
                    ),
                        })?;
                stack.push((cid, child));
            }
        }
        Ok(tree)
    }

    /// Attribute declarations for `element`.
    pub fn attrs_of(&self, element: &str) -> Vec<&AttrDecl> {
        self.attributes
            .iter()
            .filter(|a| a.element == element)
            .collect()
    }

    /// Serializes back to DTD text (normalized form).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.elements {
            if e.is_leaf {
                out.push_str(&format!("<!ELEMENT {} (#PCDATA)>\n", e.name));
            } else {
                let items: Vec<String> = e
                    .children
                    .iter()
                    .map(|(n, o)| format!("{}{}", n, o.dtd_suffix()))
                    .collect();
                out.push_str(&format!("<!ELEMENT {} ({})>\n", e.name, items.join(", ")));
            }
        }
        for a in &self.attributes {
            out.push_str(&format!(
                "<!ATTLIST {} {} {} {}>\n",
                a.element,
                a.name,
                a.ty,
                if a.required { "#REQUIRED" } else { "#IMPLIED" }
            ));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        let mut end = n;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        &s[..end]
    }
}

fn parse_element_decl(body: &str, offset: usize) -> Result<ElementDecl> {
    let body = body.trim();
    let (name, rest) = split_name(body, offset)?;
    let rest = rest.trim();
    if rest == "EMPTY" || rest == "ANY" {
        return Ok(ElementDecl {
            name,
            children: Vec::new(),
            is_leaf: true,
        });
    }
    let inner = rest.strip_prefix('(').ok_or(Error::Dtd {
        offset,
        detail: format!("expected content model for {name}"),
    })?;
    // A trailing cardinality may follow the closing paren: `(category+)`
    // has it inside; `(a, b)*` outside. Handle both.
    let (inner, group_occurs) = match inner.rfind(')') {
        Some(i) => {
            let tail = inner[i + 1..].trim();
            let occ = parse_occurs_suffix(tail, offset)?;
            (&inner[..i], occ)
        }
        None => {
            return Err(Error::UnexpectedEof {
                offset,
                context: "content model",
            })
        }
    };
    let inner = inner.trim();
    if inner == "#PCDATA" {
        return Ok(ElementDecl {
            name,
            children: Vec::new(),
            is_leaf: true,
        });
    }
    // The paper's `(id ID)` shorthand: a parenthesized token pair that is
    // not a valid sequence of element names — treat as an opaque leaf.
    if inner.split_whitespace().count() == 2 && !inner.contains(',') {
        return Ok(ElementDecl {
            name,
            children: Vec::new(),
            is_leaf: true,
        });
    }
    let mut children = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(Error::Dtd {
                offset,
                detail: format!("empty item in model of {name}"),
            });
        }
        let (base, occurs) = match item.chars().last().unwrap() {
            '?' => (&item[..item.len() - 1], Occurs::Optional),
            '*' => (&item[..item.len() - 1], Occurs::Many),
            '+' => (&item[..item.len() - 1], Occurs::OneOrMore),
            _ => (item, Occurs::One),
        };
        let base = base.trim();
        if !is_valid_name(base) {
            return Err(Error::Dtd {
                offset,
                detail: format!("bad element name {base:?} in model of {name}"),
            });
        }
        // A group-level `+`/`*` distributes over single-child groups, which
        // is the only place Figure 7 uses it (`(category+)`, `(item*)`).
        let occurs = combine_occurs(occurs, group_occurs);
        children.push((base.to_string(), occurs));
    }
    Ok(ElementDecl {
        name,
        children,
        is_leaf: false,
    })
}

fn parse_occurs_suffix(tail: &str, offset: usize) -> Result<Occurs> {
    match tail {
        "" => Ok(Occurs::One),
        "?" => Ok(Occurs::Optional),
        "*" => Ok(Occurs::Many),
        "+" => Ok(Occurs::OneOrMore),
        other => Err(Error::Dtd {
            offset,
            detail: format!("unexpected trailing tokens {other:?}"),
        }),
    }
}

/// Combines an item cardinality with its enclosing group's cardinality.
fn combine_occurs(item: Occurs, group: Occurs) -> Occurs {
    use Occurs::*;
    match (item, group) {
        (x, One) => x,
        (One, g) => g,
        (Optional, Optional) => Optional,
        (OneOrMore, OneOrMore) => OneOrMore,
        // Any mix involving `*`, or `?`+`+`, admits zero and many.
        _ => Many,
    }
}

fn split_name(body: &str, offset: usize) -> Result<(String, &str)> {
    let body = body.trim_start();
    let end = body
        .find(|c: char| c.is_whitespace() || c == '(')
        .ok_or(Error::UnexpectedEof {
            offset,
            context: "element name",
        })?;
    let name = &body[..end];
    if !is_valid_name(name) {
        return Err(Error::BadName {
            offset,
            name: name.to_string(),
        });
    }
    Ok((name.to_string(), &body[end..]))
}

fn parse_attlist(body: &str, offset: usize) -> Result<Vec<AttrDecl>> {
    let mut toks = body.split_whitespace();
    let element = toks
        .next()
        .ok_or(Error::UnexpectedEof {
            offset,
            context: "ATTLIST element name",
        })?
        .to_string();
    let toks: Vec<&str> = toks.collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks.len() - i < 2 {
            return Err(Error::Dtd {
                offset,
                detail: format!("truncated ATTLIST for {element}"),
            });
        }
        let name = toks[i].to_string();
        let ty = toks[i + 1].to_string();
        let default = toks.get(i + 2).copied().unwrap_or("#IMPLIED");
        out.push(AttrDecl {
            element: element.clone(),
            name,
            ty,
            required: default == "#REQUIRED",
        });
        i += 3;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7_SNIPPET: &str = r#"
        <!-- DTD for subset of auction database -->
        <!ELEMENT site (regions, categories, catgraph, people, openauctions, closedauctions)>
        <!ELEMENT categories (category+)>
        <!ELEMENT category (cname, cdescription)>
        <!ATTLIST category id ID #REQUIRED>
        <!ELEMENT cname (#PCDATA)>
        <!ELEMENT cdescription (id ID)>
        <!ELEMENT catgraph (id ID)>
        <!ELEMENT regions (africa, asia)>
        <!ELEMENT africa (item*)>
        <!ELEMENT asia (item*)>
        <!ELEMENT item (location, quantity)>
        <!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
        <!ELEMENT location (#PCDATA)>
        <!ELEMENT quantity (#PCDATA)>
        <!ELEMENT people (id ID)>
        <!ELEMENT openauctions (id ID)>
        <!ELEMENT closedauctions (id ID)>
    "#;

    #[test]
    fn parses_figure7_style_dtd() {
        let dtd = Dtd::parse(FIG7_SNIPPET).unwrap();
        assert_eq!(dtd.elements.len(), 15);
        let site = &dtd.elements[0];
        assert_eq!(site.name, "site");
        assert_eq!(site.children.len(), 6);
        let categories = dtd
            .elements
            .iter()
            .find(|e| e.name == "categories")
            .unwrap();
        assert_eq!(
            categories.children,
            vec![("category".to_string(), Occurs::OneOrMore)]
        );
        let africa = dtd.elements.iter().find(|e| e.name == "africa").unwrap();
        assert_eq!(africa.children, vec![("item".to_string(), Occurs::Many)]);
        let cdesc = dtd
            .elements
            .iter()
            .find(|e| e.name == "cdescription")
            .unwrap();
        assert!(cdesc.is_leaf);
    }

    #[test]
    fn attlist_parsed() {
        let dtd = Dtd::parse(FIG7_SNIPPET).unwrap();
        let item_attrs = dtd.attrs_of("item");
        assert_eq!(item_attrs.len(), 2);
        assert!(item_attrs[0].required);
        assert_eq!(item_attrs[1].name, "featured");
        assert!(!item_attrs[1].required);
    }

    #[test]
    fn builds_schema_tree_sharing_detected() {
        let dtd = Dtd::parse(FIG7_SNIPPET).unwrap();
        // `item` appears under both africa and asia: the element-tree model
        // requires unique parents, so this must be rejected...
        let err = dtd.to_schema_tree("site").unwrap_err();
        assert!(err.to_string().contains("item"));
    }

    #[test]
    fn builds_schema_tree() {
        let dtd = Dtd::parse(
            "<!ELEMENT site (regions, categories)>
             <!ELEMENT regions (item*)>
             <!ELEMENT item (location)>
             <!ELEMENT location (#PCDATA)>
             <!ELEMENT categories (category+)>
             <!ELEMENT category (#PCDATA)>",
        )
        .unwrap();
        let tree = dtd.to_schema_tree("site").unwrap();
        assert_eq!(tree.len(), 6);
        let item = tree.by_name("item").unwrap();
        assert_eq!(tree.node(item).occurs, Occurs::Many);
        let category = tree.by_name("category").unwrap();
        assert_eq!(tree.node(category).occurs, Occurs::OneOrMore);
        assert!(tree.node(tree.by_name("location").unwrap()).has_text);
    }

    #[test]
    fn undeclared_child_rejected() {
        let dtd = Dtd::parse("<!ELEMENT a (b)>").unwrap();
        assert!(dtd.to_schema_tree("a").is_err());
        assert!(dtd.to_schema_tree("nosuch").is_err());
    }

    #[test]
    fn empty_and_any() {
        let dtd = Dtd::parse("<!ELEMENT a EMPTY><!ELEMENT b ANY>").unwrap();
        assert!(dtd.elements.iter().all(|e| e.is_leaf));
    }

    #[test]
    fn group_cardinality_outside_parens() {
        let dtd = Dtd::parse("<!ELEMENT a (b)*><!ELEMENT b (#PCDATA)>").unwrap();
        assert_eq!(dtd.elements[0].children[0].1, Occurs::Many);
    }

    #[test]
    fn cycle_rejected() {
        let dtd = Dtd::parse("<!ELEMENT a (b)><!ELEMENT b (a)>").unwrap();
        assert!(dtd.to_schema_tree("a").is_err());
    }

    #[test]
    fn roundtrip_text() {
        let dtd = Dtd::parse("<!ELEMENT a (b?, c*)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>")
            .unwrap();
        let text = dtd.to_text();
        let again = Dtd::parse(&text).unwrap();
        assert_eq!(again.elements, dtd.elements);
    }

    #[test]
    fn bad_declarations_rejected() {
        assert!(Dtd::parse("<!NOTATION x>").is_err());
        assert!(Dtd::parse("<!ELEMENT 1bad (#PCDATA)>").is_err());
        assert!(Dtd::parse("<!ELEMENT a (b,,c)>").is_err());
        assert!(Dtd::parse("<!ELEMENT a (b").is_err());
    }

    #[test]
    fn combine_occurs_table() {
        use Occurs::*;
        assert_eq!(combine_occurs(One, OneOrMore), OneOrMore);
        assert_eq!(combine_occurs(Many, One), Many);
        assert_eq!(combine_occurs(Optional, OneOrMore), Many);
        assert_eq!(combine_occurs(Optional, Optional), Optional);
    }
}
