//! Streaming XML writer.
//!
//! The merge-and-tag publisher in `xdx-core` produces documents by walking
//! sorted feeds and emitting tags; this writer is its output layer. It
//! escapes text and attribute values, validates names in debug builds, and
//! supports an optional pretty-printing mode for human-readable output.

use crate::escape::{escape_attr, escape_text};
use crate::parser::is_valid_name;
use std::fmt::Write as _;

/// Streaming writer building a `String`.
///
/// # Example
/// ```
/// use xdx_xml::Writer;
/// let mut w = Writer::new();
/// w.start("Customer");
/// w.attr("ID", "c1");
/// w.text_element("CustName", "Alice & Bob");
/// w.end();
/// assert_eq!(w.finish(), "<Customer ID=\"c1\"><CustName>Alice &amp; Bob</CustName></Customer>");
/// ```
pub struct Writer {
    out: String,
    stack: Vec<String>,
    /// True while the current start tag is still open (`<name` written but
    /// not yet `>`), i.e. attributes may still be added.
    tag_open: bool,
    pretty: bool,
    /// Suppress the indent before a closing tag when the element held text.
    had_text: bool,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// A compact writer (no insignificant whitespace).
    pub fn new() -> Self {
        Writer {
            out: String::new(),
            stack: Vec::new(),
            tag_open: false,
            pretty: false,
            had_text: false,
        }
    }

    /// A pretty-printing writer (two-space indentation).
    pub fn pretty() -> Self {
        Writer {
            pretty: true,
            ..Self::new()
        }
    }

    /// A compact writer with pre-reserved output capacity, for large
    /// documents whose approximate size is known (the publisher uses this).
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            out: String::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Emits the standard XML declaration.
    pub fn xml_decl(&mut self) {
        debug_assert!(self.out.is_empty(), "declaration must come first");
        self.out
            .push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.pretty {
            self.out.push('\n');
        }
    }

    fn close_pending_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn indent(&mut self) {
        if self.pretty && !self.out.is_empty() {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    /// Opens `<name`. Attributes may be added with [`Writer::attr`] until
    /// the next content call.
    pub fn start(&mut self, name: &str) {
        debug_assert!(is_valid_name(name), "invalid element name {name:?}");
        self.close_pending_tag();
        self.indent();
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push(name.to_string());
        self.tag_open = true;
        self.had_text = false;
    }

    /// Adds an attribute to the currently open start tag.
    ///
    /// # Panics
    /// Panics (debug builds) if no start tag is open.
    pub fn attr(&mut self, name: &str, value: &str) {
        debug_assert!(self.tag_open, "attr() outside a start tag");
        debug_assert!(is_valid_name(name), "invalid attribute name {name:?}");
        let _ = write!(self.out, " {}=\"{}\"", name, escape_attr(value));
    }

    /// Writes escaped character data inside the current element.
    pub fn text(&mut self, text: &str) {
        self.close_pending_tag();
        self.out.push_str(&escape_text(text));
        self.had_text = true;
    }

    /// Writes pre-escaped/raw markup verbatim. The caller is responsible
    /// for well-formedness; used to splice already-serialized fragments.
    pub fn raw(&mut self, markup: &str) {
        self.close_pending_tag();
        self.out.push_str(markup);
        self.had_text = true;
    }

    /// Writes a comment (`--` in the body is replaced by `- -`).
    pub fn comment(&mut self, body: &str) {
        self.close_pending_tag();
        self.indent();
        self.out.push_str("<!--");
        self.out.push_str(&body.replace("--", "- -"));
        self.out.push_str("-->");
    }

    /// Closes the most recently opened element.
    ///
    /// Collapses `<a></a>` to `<a/>` when the element had no content.
    pub fn end(&mut self) {
        let name = self.stack.pop().expect("end() with no open element");
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
        } else {
            if !self.had_text {
                self.indent();
            }
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
        self.had_text = false;
    }

    /// Convenience: `<name>text</name>`.
    pub fn text_element(&mut self, name: &str, text: &str) {
        self.start(name);
        self.text(text);
        self.end();
    }

    /// Convenience: `<name/>` with no attributes or content.
    pub fn empty_element(&mut self, name: &str) {
        self.start(name);
        self.end();
    }

    /// Number of elements still open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Bytes written so far (useful for size-targeted generation).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Finishes the document and returns the serialized text.
    ///
    /// # Panics
    /// Panics if elements remain open, which would produce malformed XML.
    pub fn finish(mut self) -> String {
        self.close_pending_tag();
        assert!(
            self.stack.is_empty(),
            "finish() with {} open element(s)",
            self.stack.len()
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_events;

    #[test]
    fn basic_document() {
        let mut w = Writer::new();
        w.start("a");
        w.attr("x", "1");
        w.start("b");
        w.end();
        w.text("hi");
        w.end();
        assert_eq!(w.finish(), r#"<a x="1"><b/>hi</a>"#);
    }

    #[test]
    fn empty_element_collapses() {
        let mut w = Writer::new();
        w.empty_element("only");
        assert_eq!(w.finish(), "<only/>");
    }

    #[test]
    fn escaping_applied() {
        let mut w = Writer::new();
        w.start("e");
        w.attr("q", "a\"b<c");
        w.text("1 < 2 & 3");
        w.end();
        let doc = w.finish();
        assert_eq!(doc, "<e q=\"a&quot;b&lt;c\">1 &lt; 2 &amp; 3</e>");
        // And the parser can read back what we wrote.
        assert!(parse_events(&doc).is_ok());
    }

    #[test]
    fn pretty_mode_indents() {
        let mut w = Writer::pretty();
        w.start("a");
        w.start("b");
        w.end();
        w.end();
        assert_eq!(w.finish(), "<a>\n  <b/>\n</a>");
    }

    #[test]
    fn text_element_and_decl() {
        let mut w = Writer::new();
        w.xml_decl();
        w.start("root");
        w.text_element("k", "v");
        w.end();
        assert_eq!(
            w.finish(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><root><k>v</k></root>"
        );
    }

    #[test]
    #[should_panic(expected = "open element")]
    fn finish_with_open_elements_panics() {
        let mut w = Writer::new();
        w.start("a");
        let _ = w.finish();
    }

    #[test]
    fn comment_neutralizes_double_dash() {
        let mut w = Writer::new();
        w.start("a");
        w.comment("x--y");
        w.end();
        assert_eq!(w.finish(), "<a><!--x- -y--></a>");
    }

    #[test]
    fn roundtrip_through_parser() {
        let mut w = Writer::new();
        w.start("site");
        for i in 0..3 {
            w.start("item");
            w.attr("id", &format!("i{i}"));
            w.text_element("name", &format!("thing {i} <&>"));
            w.end();
        }
        w.end();
        let doc = w.finish();
        let events = parse_events(&doc).unwrap();
        let starts = events.iter().filter(|e| e.start_name().is_some()).count();
        assert_eq!(starts, 7); // site + 3*(item+name)
    }
}
