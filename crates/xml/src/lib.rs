//! # xdx-xml — XML substrate for the XML data-exchange stack
//!
//! A from-scratch, dependency-free XML toolkit providing exactly what the
//! data-exchange middleware of Amer-Yahia & Kotidis (ICDE 2004) needs:
//!
//! * [`escape`] — text/attribute escaping and unescaping,
//! * [`parser`] — a non-validating pull parser producing [`event::Event`]s,
//! * [`sax`] — a SAX-style push driver over the pull parser (used by the
//!   shredder in `xdx-core`, mirroring the paper's use of expat),
//! * [`writer`] — a streaming, optionally pretty-printing writer (used by
//!   the merge-and-tag publisher),
//! * [`dom`] — a lightweight owned document tree for tests, examples and
//!   the WSDL layer,
//! * [`dtd`] — a parser for the DTD subset of the paper's Figure 7,
//! * [`schema`] — the *schema tree* model: XML Schemas viewed as trees
//!   (paper Section 3.1), the foundation for fragments and fragmentations.
//!
//! The paper treats XML Schemas and DTDs interchangeably as element trees;
//! [`schema::SchemaTree`] is the common target both [`dtd`] and the
//! XSD-subset reader in [`schema`] convert into.

pub mod dom;
pub mod dtd;
pub mod error;
pub mod escape;
pub mod event;
pub mod parser;
pub mod sax;
pub mod schema;
pub mod writer;

pub use dom::{Document, Element, Node};
pub use error::{Error, Result};
pub use event::Event;
pub use parser::Parser;
pub use schema::{NodeId, Occurs, SchemaNode, SchemaTree};
pub use writer::Writer;
