//! Error type shared by every parsing layer in this crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// An error raised while parsing or validating XML, a DTD, or a schema.
///
/// Every variant carries the byte offset in the input at which the problem
/// was detected, so callers can produce actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended while a construct was still open.
    UnexpectedEof {
        offset: usize,
        context: &'static str,
    },
    /// A character that is illegal at this position.
    UnexpectedChar {
        offset: usize,
        found: char,
        expected: &'static str,
    },
    /// `</b>` closing an element opened as `<a>`.
    MismatchedTag {
        offset: usize,
        open: String,
        close: String,
    },
    /// An entity reference that is not one of the five predefined ones
    /// and not a valid character reference.
    BadEntity { offset: usize, entity: String },
    /// A name (element, attribute) that violates XML name rules.
    BadName { offset: usize, name: String },
    /// The same attribute appears twice on one element.
    DuplicateAttribute { offset: usize, name: String },
    /// Text content found outside the document element.
    TextOutsideRoot { offset: usize },
    /// More than one document element, or none at all.
    BadDocumentStructure { offset: usize, detail: &'static str },
    /// A DTD declaration this subset does not accept.
    Dtd { offset: usize, detail: String },
    /// A schema-level inconsistency (unknown element, cycle, ...).
    Schema { detail: String },
}

impl Error {
    /// Byte offset of the error in the source text, when known.
    pub fn offset(&self) -> Option<usize> {
        match self {
            Error::UnexpectedEof { offset, .. }
            | Error::UnexpectedChar { offset, .. }
            | Error::MismatchedTag { offset, .. }
            | Error::BadEntity { offset, .. }
            | Error::BadName { offset, .. }
            | Error::DuplicateAttribute { offset, .. }
            | Error::TextOutsideRoot { offset }
            | Error::BadDocumentStructure { offset, .. }
            | Error::Dtd { offset, .. } => Some(*offset),
            Error::Schema { .. } => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { offset, context } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset} while parsing {context}"
                )
            }
            Error::UnexpectedChar {
                offset,
                found,
                expected,
            } => {
                write!(
                    f,
                    "unexpected character {found:?} at byte {offset}, expected {expected}"
                )
            }
            Error::MismatchedTag {
                offset,
                open,
                close,
            } => {
                write!(
                    f,
                    "closing tag </{close}> at byte {offset} does not match <{open}>"
                )
            }
            Error::BadEntity { offset, entity } => {
                write!(f, "unknown entity &{entity}; at byte {offset}")
            }
            Error::BadName { offset, name } => {
                write!(f, "invalid XML name {name:?} at byte {offset}")
            }
            Error::DuplicateAttribute { offset, name } => {
                write!(f, "duplicate attribute {name:?} at byte {offset}")
            }
            Error::TextOutsideRoot { offset } => {
                write!(
                    f,
                    "text content outside the document element at byte {offset}"
                )
            }
            Error::BadDocumentStructure { offset, detail } => {
                write!(f, "malformed document at byte {offset}: {detail}")
            }
            Error::Dtd { offset, detail } => write!(f, "DTD error at byte {offset}: {detail}"),
            Error::Schema { detail } => write!(f, "schema error: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

/// A human-oriented source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters, not bytes).
    pub column: usize,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Converts a byte offset into a [`Position`] within `src`. Offsets past
/// the end clamp to the final position.
pub fn position_of(src: &str, offset: usize) -> Position {
    let offset = offset.min(src.len());
    let mut line = 1;
    let mut column = 1;
    for (i, c) in src.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    Position { line, column }
}

impl Error {
    /// Renders the error with a line/column position resolved against the
    /// source it came from — what a CLI shows its user.
    pub fn display_in(&self, src: &str) -> String {
        match self.offset() {
            Some(off) => format!("{} ({})", self, position_of(src, off)),
            None => self.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = Error::BadEntity {
            offset: 17,
            entity: "nbsp".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("nbsp"));
        assert_eq!(e.offset(), Some(17));
    }

    #[test]
    fn positions_resolve_lines_and_columns() {
        let src = "first\nsecond line\nthird";
        assert_eq!(position_of(src, 0), Position { line: 1, column: 1 });
        assert_eq!(position_of(src, 6), Position { line: 2, column: 1 });
        assert_eq!(position_of(src, 13), Position { line: 2, column: 8 });
        assert_eq!(position_of(src, 9999), Position { line: 3, column: 6 });
    }

    #[test]
    fn display_in_attaches_position() {
        let src = "<a>\n  <b oops</a>";
        let err = crate::parser::parse_events(src).unwrap_err();
        let rendered = err.display_in(src);
        assert!(rendered.contains("line 2"), "{rendered}");
    }

    #[test]
    fn multibyte_columns_count_characters() {
        let src = "é✓x";
        // Offset of 'x' is 4 bytes in, but it is the 3rd character.
        let off = src.char_indices().nth(2).unwrap().0;
        assert_eq!(position_of(src, off).column, 3);
    }

    #[test]
    fn schema_error_has_no_offset() {
        let e = Error::Schema {
            detail: "cycle".into(),
        };
        assert_eq!(e.offset(), None);
        assert!(e.to_string().contains("cycle"));
    }
}
