//! Pull-parser events.

/// One attribute on a start tag, with entities already resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (no namespace processing).
    pub name: String,
    /// Attribute value with entity/character references resolved.
    pub value: String,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// An event produced by [`crate::parser::Parser`].
///
/// The parser is non-validating: it checks well-formedness (tag balance,
/// attribute uniqueness, entity syntax) but performs no DTD validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<?xml version="1.0" ...?>` — at most one, at the start.
    XmlDecl {
        version: String,
        encoding: Option<String>,
    },
    /// `<name attr="v" ...>`; `empty` is true for `<name/>`, in which case
    /// no matching [`Event::End`] follows.
    Start {
        name: String,
        attributes: Vec<Attribute>,
        empty: bool,
    },
    /// `</name>` (not emitted for self-closing tags).
    End { name: String },
    /// Character data with entities resolved. Whitespace-only runs between
    /// elements are still reported; callers filter as needed.
    Text(String),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(String),
    /// `<!-- ... -->` content, verbatim.
    Comment(String),
    /// `<?target data?>` other than the XML declaration.
    ProcessingInstruction { target: String, data: String },
    /// `<!DOCTYPE ...>` raw body (between the keyword and the closing `>`),
    /// including an internal subset if present. Parsed further by
    /// [`crate::dtd`] when the caller wants the content model.
    Doctype(String),
    /// End of input; returned exactly once, after the document element has
    /// been closed.
    Eof,
}

impl Event {
    /// True for events that carry no markup information (comments, PIs).
    pub fn is_ignorable(&self) -> bool {
        matches!(
            self,
            Event::Comment(_) | Event::ProcessingInstruction { .. }
        )
    }

    /// If this is a `Start` event, its element name.
    pub fn start_name(&self) -> Option<&str> {
        match self {
            Event::Start { name, .. } => Some(name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignorable_classification() {
        assert!(Event::Comment("c".into()).is_ignorable());
        assert!(Event::ProcessingInstruction {
            target: "t".into(),
            data: String::new()
        }
        .is_ignorable());
        assert!(!Event::Text("x".into()).is_ignorable());
    }

    #[test]
    fn start_name_accessor() {
        let e = Event::Start {
            name: "a".into(),
            attributes: vec![],
            empty: false,
        };
        assert_eq!(e.start_name(), Some("a"));
        assert_eq!(Event::Eof.start_name(), None);
    }
}
