//! A non-validating XML pull parser.
//!
//! The parser checks well-formedness — balanced tags, unique attributes,
//! legal names, resolvable entities, a single document element — but does
//! not read external DTDs or validate content models. This matches the
//! capabilities of the expat-based pipeline the paper built its shredder on.
//!
//! # Example
//! ```
//! use xdx_xml::{Parser, Event};
//! let mut p = Parser::new("<a x=\"1\"><b/>hi</a>");
//! assert!(matches!(p.next_event().unwrap(), Event::Start { .. }));
//! ```

use crate::error::{Error, Result};
use crate::escape::unescape;
use crate::event::{Attribute, Event};

/// Returns true if `c` may start an XML name.
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// Returns true if `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Validates a full XML name (used by the writer too).
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => chars.all(is_name_char),
        _ => false,
    }
}

/// Streaming pull parser over an in-memory document.
///
/// Cursor-based over `&str`; produces [`Event`]s one at a time via
/// [`Parser::next_event`], or all at once via [`Parser::into_events`].
pub struct Parser<'a> {
    src: &'a str,
    pos: usize,
    stack: Vec<String>,
    seen_root: bool,
    done: bool,
    at_start: bool,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `src`.
    pub fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            stack: Vec::new(),
            seen_root: false,
            done: false,
            at_start: true,
        }
    }

    /// Current byte offset into the source.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Depth of currently-open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self, c: char) {
        self.pos += c.len_utf8();
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump(c);
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, prefix: &str, context: &'static str) -> Result<()> {
        if self.eat(prefix) {
            Ok(())
        } else if self.rest().is_empty() {
            Err(Error::UnexpectedEof {
                offset: self.pos,
                context,
            })
        } else {
            Err(Error::UnexpectedChar {
                offset: self.pos,
                found: self.peek().unwrap(),
                expected: context,
            })
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => self.bump(c),
            Some(c) => {
                return Err(Error::UnexpectedChar {
                    offset: self.pos,
                    found: c,
                    expected: "name",
                })
            }
            None => {
                return Err(Error::UnexpectedEof {
                    offset: self.pos,
                    context: "name",
                })
            }
        }
        while let Some(c) = self.peek() {
            if is_name_char(c) {
                self.bump(c);
            } else {
                break;
            }
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn read_until(&mut self, delim: &str, context: &'static str) -> Result<&'a str> {
        match self.rest().find(delim) {
            Some(i) => {
                let s = &self.rest()[..i];
                self.pos += i + delim.len();
                Ok(s)
            }
            None => Err(Error::UnexpectedEof {
                offset: self.pos,
                context,
            }),
        }
    }

    fn read_attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => {
                return Err(Error::UnexpectedChar {
                    offset: self.pos,
                    found: c,
                    expected: "quoted attribute value",
                })
            }
            None => {
                return Err(Error::UnexpectedEof {
                    offset: self.pos,
                    context: "attribute value",
                })
            }
        };
        self.bump(quote);
        let start = self.pos;
        let raw = self.read_until(
            if quote == '"' { "\"" } else { "'" },
            "closing attribute quote",
        )?;
        Ok(unescape(raw, start)?.into_owned())
    }

    /// Returns the next event, or [`Event::Eof`] once the document is done.
    pub fn next_event(&mut self) -> Result<Event> {
        if self.done {
            return Ok(Event::Eof);
        }
        if self.at_start {
            self.at_start = false;
            // Optional XML declaration must be first, with no leading space.
            if self.rest().starts_with("<?xml") {
                return self.parse_xml_decl();
            }
        }
        if self.stack.is_empty() {
            // Prolog or epilog: only whitespace, comments, PIs, doctype,
            // and (in the prolog) the document element are allowed.
            self.skip_ws();
        }
        let Some(c) = self.peek() else {
            if !self.stack.is_empty() {
                return Err(Error::UnexpectedEof {
                    offset: self.pos,
                    context: "element",
                });
            }
            if !self.seen_root {
                return Err(Error::BadDocumentStructure {
                    offset: self.pos,
                    detail: "no document element",
                });
            }
            self.done = true;
            return Ok(Event::Eof);
        };
        if c == '<' {
            return self.parse_markup();
        }
        if self.stack.is_empty() {
            return Err(Error::TextOutsideRoot { offset: self.pos });
        }
        self.parse_text()
    }

    fn parse_xml_decl(&mut self) -> Result<Event> {
        self.expect("<?xml", "xml declaration")?;
        let start = self.pos;
        let body = self.read_until("?>", "xml declaration")?;
        let mut version = "1.0".to_string();
        let mut encoding = None;
        // Tolerant pseudo-attribute scan; the declaration is advisory here.
        for piece in body.split_whitespace() {
            if let Some((k, v)) = piece.split_once('=') {
                let v = v.trim_matches(|c| c == '"' || c == '\'');
                match k {
                    "version" => version = v.to_string(),
                    "encoding" => encoding = Some(v.to_string()),
                    _ => {}
                }
            }
        }
        let _ = start;
        Ok(Event::XmlDecl { version, encoding })
    }

    fn parse_markup(&mut self) -> Result<Event> {
        debug_assert_eq!(self.peek(), Some('<'));
        if self.eat("<!--") {
            let body = self.read_until("-->", "comment")?;
            return Ok(Event::Comment(body.to_string()));
        }
        if self.eat("<![CDATA[") {
            if self.stack.is_empty() {
                return Err(Error::TextOutsideRoot { offset: self.pos });
            }
            let body = self.read_until("]]>", "CDATA section")?;
            return Ok(Event::CData(body.to_string()));
        }
        if self.rest().starts_with("<!DOCTYPE") {
            self.pos += "<!DOCTYPE".len();
            return self.parse_doctype();
        }
        if self.eat("<?") {
            let target = self.read_name()?;
            let body = self.read_until("?>", "processing instruction")?;
            return Ok(Event::ProcessingInstruction {
                target,
                data: body.trim_start().to_string(),
            });
        }
        if self.eat("</") {
            let name = self.read_name()?;
            self.skip_ws();
            self.expect(">", "'>' after closing tag name")?;
            match self.stack.pop() {
                Some(open) if open == name => Ok(Event::End { name }),
                Some(open) => Err(Error::MismatchedTag {
                    offset: self.pos,
                    open,
                    close: name,
                }),
                None => Err(Error::BadDocumentStructure {
                    offset: self.pos,
                    detail: "closing tag with no open element",
                }),
            }
        } else {
            self.expect("<", "start tag")?;
            self.parse_start_tag()
        }
    }

    fn parse_doctype(&mut self) -> Result<Event> {
        // Consume up to the matching '>', honoring an internal subset in
        // square brackets (which itself contains '>' characters).
        let start = self.pos;
        let mut depth = 0usize;
        let bytes = self.src.as_bytes();
        let mut i = self.pos;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    let body = self.src[start..i].trim().to_string();
                    self.pos = i + 1;
                    return Ok(Event::Doctype(body));
                }
                _ => {}
            }
            i += 1;
        }
        Err(Error::UnexpectedEof {
            offset: self.pos,
            context: "DOCTYPE declaration",
        })
    }

    fn parse_start_tag(&mut self) -> Result<Event> {
        if self.stack.is_empty() && self.seen_root {
            return Err(Error::BadDocumentStructure {
                offset: self.pos,
                detail: "multiple document elements",
            });
        }
        let name = self.read_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump('>');
                    self.stack.push(name.clone());
                    self.seen_root = true;
                    return Ok(Event::Start {
                        name,
                        attributes,
                        empty: false,
                    });
                }
                Some('/') => {
                    self.bump('/');
                    self.expect(">", "'>' after '/'")?;
                    self.seen_root = true;
                    return Ok(Event::Start {
                        name,
                        attributes,
                        empty: true,
                    });
                }
                Some(c) if is_name_start(c) => {
                    let attr_offset = self.pos;
                    let aname = self.read_name()?;
                    self.skip_ws();
                    self.expect("=", "'=' after attribute name")?;
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    if attributes.iter().any(|a| a.name == aname) {
                        return Err(Error::DuplicateAttribute {
                            offset: attr_offset,
                            name: aname,
                        });
                    }
                    attributes.push(Attribute { name: aname, value });
                }
                Some(c) => {
                    return Err(Error::UnexpectedChar {
                        offset: self.pos,
                        found: c,
                        expected: "attribute, '>' or '/>'",
                    })
                }
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: self.pos,
                        context: "start tag",
                    })
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<Event> {
        let start = self.pos;
        let end = self
            .rest()
            .find('<')
            .map(|i| self.pos + i)
            .unwrap_or(self.src.len());
        let raw = &self.src[start..end];
        self.pos = end;
        if raw.contains("]]>") {
            return Err(Error::UnexpectedChar {
                offset: start + raw.find("]]>").unwrap(),
                found: ']',
                expected: "']]>' must not appear in character data",
            });
        }
        Ok(Event::Text(unescape(raw, start)?.into_owned()))
    }

    /// Parses the whole document into a vector of events (excluding the
    /// trailing [`Event::Eof`]).
    pub fn into_events(mut self) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        loop {
            match self.next_event()? {
                Event::Eof => return Ok(out),
                e => out.push(e),
            }
        }
    }
}

/// Parses an entire document, returning its events. Convenience wrapper.
pub fn parse_events(src: &str) -> Result<Vec<Event>> {
    Parser::new(src).into_events()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        parse_events(src).expect("parse failed")
    }

    #[test]
    fn minimal_document() {
        let ev = events("<a/>");
        assert_eq!(
            ev,
            vec![Event::Start {
                name: "a".into(),
                attributes: vec![],
                empty: true
            }]
        );
    }

    #[test]
    fn nested_elements_and_text() {
        let ev = events("<a><b>hi</b></a>");
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[2], Event::Text("hi".into()));
        assert_eq!(ev[4], Event::End { name: "a".into() });
    }

    #[test]
    fn attributes_with_entities() {
        let ev = events(r#"<a x="1 &amp; 2" y='z'/>"#);
        match &ev[0] {
            Event::Start { attributes, .. } => {
                assert_eq!(attributes[0].value, "1 & 2");
                assert_eq!(attributes[1].value, "z");
            }
            _ => panic!("expected start"),
        }
    }

    #[test]
    fn xml_decl_and_doctype() {
        let ev = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE site [<!ELEMENT site (a)>]>\n<site><a/></site>");
        assert!(matches!(&ev[0], Event::XmlDecl { encoding: Some(e), .. } if e == "UTF-8"));
        assert!(matches!(&ev[1], Event::Doctype(d) if d.contains("ELEMENT")));
    }

    #[test]
    fn comments_and_pis() {
        let ev = events("<a><!-- note --><?php echo ?></a>");
        assert_eq!(ev[1], Event::Comment(" note ".into()));
        assert!(matches!(&ev[2], Event::ProcessingInstruction { target, .. } if target == "php"));
    }

    #[test]
    fn cdata_passthrough() {
        let ev = events("<a><![CDATA[<not-a-tag> & raw]]></a>");
        assert_eq!(ev[1], Event::CData("<not-a-tag> & raw".into()));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse_events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, Error::MismatchedTag { .. }));
    }

    #[test]
    fn duplicate_attribute_error() {
        let err = parse_events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err, Error::DuplicateAttribute { .. }));
    }

    #[test]
    fn text_outside_root_error() {
        assert!(matches!(
            parse_events("hello<a/>"),
            Err(Error::TextOutsideRoot { .. })
        ));
        assert!(matches!(
            parse_events("<a/>junk"),
            Err(Error::TextOutsideRoot { .. })
        ));
    }

    #[test]
    fn multiple_roots_error() {
        let err = parse_events("<a/><b/>").unwrap_err();
        assert!(matches!(err, Error::BadDocumentStructure { .. }));
    }

    #[test]
    fn empty_input_error() {
        assert!(parse_events("").is_err());
        assert!(parse_events("   \n ").is_err());
    }

    #[test]
    fn unclosed_element_error() {
        assert!(matches!(
            parse_events("<a><b>"),
            Err(Error::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn cdata_end_in_text_error() {
        assert!(parse_events("<a>x]]>y</a>").is_err());
    }

    #[test]
    fn whitespace_between_elements_reported() {
        let ev = events("<a>\n  <b/>\n</a>");
        assert!(matches!(&ev[1], Event::Text(t) if t.trim().is_empty()));
    }

    #[test]
    fn names_validated() {
        assert!(parse_events("<1a/>").is_err());
        assert!(is_valid_name("a-b.c_d:e1"));
        assert!(!is_valid_name("-a"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("a b"));
    }

    #[test]
    fn depth_tracking() {
        let mut p = Parser::new("<a><b></b></a>");
        p.next_event().unwrap();
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap();
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn doctype_with_internal_subset() {
        let src = "<!DOCTYPE site [\n<!ELEMENT site (regions)>\n<!ELEMENT regions (#PCDATA)>\n]><site><regions/></site>";
        let ev = events(src);
        match &ev[0] {
            Event::Doctype(d) => assert!(d.contains("regions")),
            other => panic!("expected doctype, got {other:?}"),
        }
    }

    #[test]
    fn eof_is_sticky() {
        let mut p = Parser::new("<a/>");
        p.next_event().unwrap();
        assert_eq!(p.next_event().unwrap(), Event::Eof);
        assert_eq!(p.next_event().unwrap(), Event::Eof);
    }
}
