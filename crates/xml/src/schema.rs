//! XML Schemas viewed as trees (paper Section 3.1).
//!
//! The data-exchange model never needs the full XML Schema language: it
//! views a schema as a *tree of elements*, where each element occurs within
//! its parent with a given cardinality (`1`, `?`, `*`, `+`) and leaves carry
//! typed text. Both the DTD subset of Figure 7 and the XSD fragment embedded
//! in the paper's WSDL example reduce to this tree, which is what fragments
//! and fragmentations (in `xdx-core`) are defined over.
//!
//! Element names are required to be unique within a schema tree. The paper
//! relies on this implicitly (fragments are named after their elements, and
//! the mapping between fragmentations matches fragments by element).

use crate::dom::{Document, Element};
use crate::error::{Error, Result};
use crate::writer::Writer;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its [`SchemaTree`]. The root is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    /// Index into the tree's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Cardinality of an element within its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Occurs {
    /// Exactly once (DTD `a`).
    #[default]
    One,
    /// Zero or one (DTD `a?`).
    Optional,
    /// Zero or more (DTD `a*`).
    Many,
    /// One or more (DTD `a+`).
    OneOrMore,
}

impl Occurs {
    /// True when more than one instance may occur (`*` or `+`).
    ///
    /// Repetition is what makes a Combine inline repeated child rows under
    /// one parent, and what introduces NULL padding in sorted feeds.
    pub fn is_repeated(self) -> bool {
        matches!(self, Occurs::Many | Occurs::OneOrMore)
    }

    /// True when zero instances are allowed (`?` or `*`).
    pub fn is_optional(self) -> bool {
        matches!(self, Occurs::Optional | Occurs::Many)
    }

    /// DTD suffix for this cardinality.
    pub fn dtd_suffix(self) -> &'static str {
        match self {
            Occurs::One => "",
            Occurs::Optional => "?",
            Occurs::Many => "*",
            Occurs::OneOrMore => "+",
        }
    }
}

/// One element declaration in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaNode {
    /// Element name (unique in the tree).
    pub name: String,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in declaration order.
    pub children: Vec<NodeId>,
    /// Cardinality within the parent (ignored for the root).
    pub occurs: Occurs,
    /// Whether the element carries text content (leaf value).
    pub has_text: bool,
}

/// An XML Schema reduced to its element tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaTree {
    nodes: Vec<SchemaNode>,
    by_name: HashMap<String, NodeId>,
}

impl SchemaTree {
    /// Creates a tree with only the root element.
    pub fn new(root_name: impl Into<String>) -> Self {
        let name = root_name.into();
        let mut by_name = HashMap::new();
        by_name.insert(name.clone(), NodeId::ROOT);
        SchemaTree {
            nodes: vec![SchemaNode {
                name,
                parent: None,
                children: Vec::new(),
                occurs: Occurs::One,
                has_text: false,
            }],
            by_name,
        }
    }

    /// Adds a child element under `parent`.
    ///
    /// Errors if `parent` is out of range or `name` already exists.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        occurs: Occurs,
    ) -> Result<NodeId> {
        let name = name.into();
        if parent.index() >= self.nodes.len() {
            return Err(Error::Schema {
                detail: format!("unknown parent node {parent}"),
            });
        }
        if self.by_name.contains_key(&name) {
            return Err(Error::Schema {
                detail: format!("duplicate element name {name:?}"),
            });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(SchemaNode {
            name: name.clone(),
            parent: Some(parent),
            children: Vec::new(),
            occurs,
            has_text: false,
        });
        self.nodes[parent.index()].children.push(id);
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Marks `id` as carrying text content (a typed leaf value).
    pub fn set_text(&mut self, id: NodeId) {
        self.nodes[id.index()].has_text = true;
    }

    /// The root node id (always `NodeId(0)`).
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &SchemaNode {
        &self.nodes[id.index()]
    }

    /// Element name of `id`.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Looks an element up by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Number of elements in the schema.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a tree has at least a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over all node ids in creation order (root first; parents
    /// always precede children).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Node ids of the subtree rooted at `id`, in pre-order.
    pub fn subtree(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children reversed so pre-order pops left-to-right.
            for &c in self.nodes[n.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// True when `anc` is an ancestor of `id` (or equal to it).
    pub fn is_ancestor_or_self(&self, anc: NodeId, id: NodeId) -> bool {
        let mut cur = Some(id);
        while let Some(n) = cur {
            if n == anc {
                return true;
            }
            cur = self.nodes[n.index()].parent;
        }
        false
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.nodes[id.index()].parent;
        while let Some(n) = cur {
            d += 1;
            cur = self.nodes[n.index()].parent;
        }
        d
    }

    /// Path from the root to `id`, inclusive.
    pub fn path(&self, id: NodeId) -> Vec<NodeId> {
        let mut p = vec![id];
        let mut cur = self.nodes[id.index()].parent;
        while let Some(n) = cur {
            p.push(n);
            cur = self.nodes[n.index()].parent;
        }
        p.reverse();
        p
    }

    /// Height of the tree (a lone root has height 0).
    pub fn height(&self) -> usize {
        self.ids().map(|id| self.depth(id)).max().unwrap_or(0)
    }

    /// Leaf node ids (no children).
    pub fn leaves(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|id| self.node(*id).children.is_empty())
            .collect()
    }

    /// Builds a *balanced* schema tree: every interior node has `fanout`
    /// children, down to the given `height`. Node names are `e0`, `e1`, ...
    /// in breadth-first order; all non-root nodes repeat (`*`) when
    /// `repeated` is true. This is the shape the paper's simulator studies
    /// (Section 5.4: "the DTD was a balanced tree with 3 levels and fan-out
    /// 4", "a DTD of height 2 with fan-out 5, resulting in a tree with 31
    /// nodes").
    pub fn balanced(height: usize, fanout: usize, repeated: bool) -> SchemaTree {
        let mut tree = SchemaTree::new("e0");
        let mut frontier = vec![NodeId::ROOT];
        let mut next = 1usize;
        let occurs = if repeated { Occurs::Many } else { Occurs::One };
        for _ in 0..height {
            let mut new_frontier = Vec::new();
            for parent in frontier {
                for _ in 0..fanout {
                    let id = tree
                        .add_child(parent, format!("e{next}"), occurs)
                        .expect("generated names are unique");
                    next += 1;
                    new_frontier.push(id);
                }
            }
            frontier = new_frontier;
        }
        for leaf in tree.leaves() {
            tree.set_text(leaf);
        }
        tree
    }

    // ------------------------------------------------------------------
    // XSD-subset serialization (the form embedded in WSDL `<types>`)
    // ------------------------------------------------------------------

    /// Serializes this tree as the XSD subset used in the paper's WSDL
    /// example: nested `<element name=...>` with `<sequence>` groups,
    /// `type="string"` leaves and `maxOccurs`/`minOccurs` cardinalities.
    pub fn to_xsd(&self) -> String {
        let mut w = Writer::pretty();
        w.start("schema");
        w.attr("xmlns", "http://www.w3.org/XMLSchema");
        self.write_element(&mut w, self.root());
        w.end();
        w.finish()
    }

    fn write_element(&self, w: &mut Writer, id: NodeId) {
        let node = self.node(id);
        w.start("element");
        w.attr("name", &node.name);
        if node.has_text && node.children.is_empty() {
            w.attr("type", "string");
        }
        match node.occurs {
            Occurs::One => {}
            Occurs::Optional => w.attr("minOccurs", "0"),
            Occurs::Many => {
                w.attr("minOccurs", "0");
                w.attr("maxOccurs", "unbounded");
            }
            Occurs::OneOrMore => w.attr("maxOccurs", "unbounded"),
        }
        if !node.children.is_empty() {
            w.start("sequence");
            for &c in &node.children {
                self.write_element(w, c);
            }
            w.end();
        }
        w.end();
    }

    /// Parses the XSD subset produced by [`SchemaTree::to_xsd`] (also
    /// tolerates the hand-written style of the paper's Figure 1).
    pub fn from_xsd(src: &str) -> Result<SchemaTree> {
        let doc = Document::parse(src)?;
        let schema = if doc.root.name == "schema" || doc.root.name.ends_with(":schema") {
            &doc.root
        } else {
            doc.root.descendant("schema").ok_or(Error::Schema {
                detail: "no <schema> element".into(),
            })?
        };
        let root_elem = schema.child("element").ok_or(Error::Schema {
            detail: "schema has no root <element>".into(),
        })?;
        let root_name = root_elem.attr("name").ok_or(Error::Schema {
            detail: "root element has no name".into(),
        })?;
        let mut tree = SchemaTree::new(root_name);
        if root_elem.attr("type").is_some() {
            tree.set_text(tree.root());
        }
        Self::parse_children(&mut tree, NodeId::ROOT, root_elem)?;
        Ok(tree)
    }

    fn parse_children(tree: &mut SchemaTree, parent: NodeId, elem: &Element) -> Result<()> {
        for child in elem.elements() {
            match child.name.as_str() {
                "sequence" | "complexType" | "all" | "choice" => {
                    Self::parse_children(tree, parent, child)?
                }
                "element" => {
                    let name = child.attr("name").ok_or(Error::Schema {
                        detail: "element without a name attribute".into(),
                    })?;
                    let min = child.attr("minOccurs").unwrap_or("1");
                    let max = child.attr("maxOccurs").unwrap_or("1");
                    let occurs = match (min, max) {
                        ("0", "unbounded") => Occurs::Many,
                        (_, "unbounded") => Occurs::OneOrMore,
                        ("0", _) => Occurs::Optional,
                        _ => Occurs::One,
                    };
                    let id = tree.add_child(parent, name, occurs)?;
                    if child.attr("type").is_some() {
                        tree.set_text(id);
                    }
                    Self::parse_children(tree, id, child)?;
                }
                // `attribute` declarations (ID/PARENT) are structural
                // metadata of fragments, not schema elements: skip.
                "attribute" => {}
                other => {
                    return Err(Error::Schema {
                        detail: format!("unsupported XSD construct <{other}>"),
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Customer schema of the paper's Section 1.1 (Figure 1).
    pub fn customer_schema() -> SchemaTree {
        let mut t = SchemaTree::new("Customer");
        let cust_name = t.add_child(t.root(), "CustName", Occurs::One).unwrap();
        t.set_text(cust_name);
        let order = t.add_child(t.root(), "Order", Occurs::Many).unwrap();
        let service = t.add_child(order, "Service", Occurs::One).unwrap();
        let sname = t.add_child(service, "ServiceName", Occurs::One).unwrap();
        t.set_text(sname);
        let line = t.add_child(service, "Line", Occurs::Many).unwrap();
        let telno = t.add_child(line, "TelNo", Occurs::One).unwrap();
        t.set_text(telno);
        let switch = t.add_child(line, "Switch", Occurs::One).unwrap();
        let swid = t.add_child(switch, "SwitchID", Occurs::One).unwrap();
        t.set_text(swid);
        let feature = t.add_child(line, "Feature", Occurs::Many).unwrap();
        let fid = t.add_child(feature, "FeatureID", Occurs::One).unwrap();
        t.set_text(fid);
        t
    }

    #[test]
    fn build_and_navigate() {
        let t = customer_schema();
        assert_eq!(t.len(), 11);
        assert_eq!(t.name(t.root()), "Customer");
        let line = t.by_name("Line").unwrap();
        assert_eq!(t.depth(line), 3);
        assert!(t.node(line).occurs.is_repeated());
        let path: Vec<_> = t
            .path(line)
            .iter()
            .map(|&n| t.name(n).to_string())
            .collect();
        assert_eq!(path, ["Customer", "Order", "Service", "Line"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = SchemaTree::new("a");
        t.add_child(t.root(), "b", Occurs::One).unwrap();
        assert!(t.add_child(t.root(), "b", Occurs::One).is_err());
        assert!(t.add_child(t.root(), "a", Occurs::One).is_err());
    }

    #[test]
    fn subtree_preorder() {
        let t = customer_schema();
        let service = t.by_name("Service").unwrap();
        let names: Vec<_> = t
            .subtree(service)
            .iter()
            .map(|&n| t.name(n).to_string())
            .collect();
        assert_eq!(
            names,
            [
                "Service",
                "ServiceName",
                "Line",
                "TelNo",
                "Switch",
                "SwitchID",
                "Feature",
                "FeatureID"
            ]
        );
    }

    #[test]
    fn ancestry() {
        let t = customer_schema();
        let order = t.by_name("Order").unwrap();
        let fid = t.by_name("FeatureID").unwrap();
        assert!(t.is_ancestor_or_self(order, fid));
        assert!(!t.is_ancestor_or_self(fid, order));
        assert!(t.is_ancestor_or_self(fid, fid));
    }

    #[test]
    fn balanced_tree_shape() {
        let t = SchemaTree::balanced(2, 5, true);
        assert_eq!(t.len(), 31); // 1 + 5 + 25, the paper's Table-5 DTD
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves().len(), 25);
        let t2 = SchemaTree::balanced(3, 4, true);
        assert_eq!(t2.len(), 85); // 1 + 4 + 16 + 64
    }

    #[test]
    fn xsd_roundtrip() {
        let t = customer_schema();
        let xsd = t.to_xsd();
        let back = SchemaTree::from_xsd(&xsd).unwrap();
        assert_eq!(back.len(), t.len());
        for id in t.ids() {
            let b = back.by_name(t.name(id)).unwrap();
            assert_eq!(
                back.node(b).occurs,
                t.node(id).occurs,
                "occurs of {}",
                t.name(id)
            );
            assert_eq!(back.node(b).has_text, t.node(id).has_text);
            assert_eq!(
                back.node(b).parent.map(|p| back.name(p).to_string()),
                t.node(id).parent.map(|p| t.name(p).to_string())
            );
        }
    }

    #[test]
    fn heights_and_leaves() {
        let t = customer_schema();
        assert_eq!(t.height(), 5); // Customer/Order/Service/Line/Switch/SwitchID
        assert!(t.leaves().iter().all(|&l| t.node(l).children.is_empty()));
    }

    #[test]
    fn occurs_predicates() {
        assert!(Occurs::Many.is_repeated() && Occurs::Many.is_optional());
        assert!(Occurs::OneOrMore.is_repeated() && !Occurs::OneOrMore.is_optional());
        assert!(!Occurs::One.is_repeated() && !Occurs::One.is_optional());
        assert!(Occurs::Optional.is_optional());
        assert_eq!(Occurs::Many.dtd_suffix(), "*");
    }
}
