//! Escaping and unescaping of XML character data and attribute values.
//!
//! Only the five predefined entities (`&amp;`, `&lt;`, `&gt;`, `&apos;`,
//! `&quot;`) and numeric character references are supported, which matches
//! what a non-validating processor without an external DTD may resolve.

use crate::error::{Error, Result};
use std::borrow::Cow;

/// Escapes `text` for use as element character data.
///
/// `&` and `<` must be escaped; we also escape `>` so that the sequence
/// `]]>` can never appear un-escaped. Returns `Cow::Borrowed` when no
/// escaping is needed, avoiding an allocation on the (dominant) clean path.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, false)
}

/// Escapes `value` for use inside a double-quoted attribute value.
pub fn escape_attr(value: &str) -> Cow<'_, str> {
    escape_with(value, true)
}

fn escape_with(text: &str, attr: bool) -> Cow<'_, str> {
    let needs = text
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\n' | b'\t')));
    if !needs {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            // Whitespace in attribute values would be normalized away by a
            // conforming parser; keep it round-trippable with char refs.
            '\n' if attr => out.push_str("&#10;"),
            '\t' if attr => out.push_str("&#9;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolves entity and character references in raw character data.
///
/// `offset` is the byte position of `raw` in the enclosing document and is
/// only used to report precise error locations.
pub fn unescape(raw: &str, offset: usize) -> Result<Cow<'_, str>> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    let mut consumed = 0usize;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(Error::UnexpectedEof {
            offset: offset + consumed + amp,
            context: "entity reference",
        })?;
        let entity = &after[..semi];
        out.push(resolve_entity(entity, offset + consumed + amp)?);
        let step = amp + 1 + semi + 1;
        consumed += step;
        rest = &rest[step..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

/// Resolves a single entity body (the text between `&` and `;`).
fn resolve_entity(entity: &str, offset: usize) -> Result<char> {
    let bad = || Error::BadEntity {
        offset,
        entity: entity.to_string(),
    };
    match entity {
        "amp" => Ok('&'),
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        _ => {
            let body = entity.strip_prefix('#').ok_or_else(bad)?;
            let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).map_err(|_| bad())?
            } else {
                body.parse::<u32>().map_err(|_| bad())?
            };
            char::from_u32(code).ok_or_else(bad)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_borrows() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(unescape("hello", 0).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
    }

    #[test]
    fn attr_escapes_whitespace() {
        assert_eq!(escape_attr("a\tb\nc"), "a&#9;b&#10;c");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("a&lt;b&amp;c&gt;d&quot;&apos;", 0).unwrap(),
            "a<b&c>d\"'"
        );
    }

    #[test]
    fn unescape_char_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
    }

    #[test]
    fn unescape_reports_position() {
        let err = unescape("xy&bogus;", 100).unwrap_err();
        assert_eq!(err.offset(), Some(102));
    }

    #[test]
    fn unterminated_entity_is_error() {
        assert!(unescape("a&amp", 0).is_err());
    }

    #[test]
    fn bad_char_ref_is_error() {
        assert!(unescape("&#xD800;", 0).is_err()); // surrogate
        assert!(unescape("&#zz;", 0).is_err());
    }

    #[test]
    fn roundtrip_text() {
        for s in ["", "plain", "a<b>&c", "quotes \" and ' mix", "unicode é✓"] {
            let escaped = escape_text(s);
            assert_eq!(unescape(&escaped, 0).unwrap(), s);
        }
    }
}
