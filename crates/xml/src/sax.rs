//! SAX-style push interface over the pull parser.
//!
//! The paper's publish&map baseline shreds documents with the expat SAX C
//! API, maintaining a stack of open paths and flushing tuples as elements
//! close. [`Handler`] + [`drive`] reproduce that programming model so the
//! shredder in `xdx-core` reads like the original.

use crate::error::Result;
use crate::event::{Attribute, Event};
use crate::parser::Parser;

/// Callbacks invoked by [`drive`] as the document is parsed.
///
/// All methods have default no-op implementations, so a handler only
/// implements what it needs (like expat's optional callbacks).
pub trait Handler {
    /// Called for `<name ...>` and self-closing `<name .../>` alike.
    fn start_element(&mut self, name: &str, attributes: &[Attribute]) -> Result<()> {
        let _ = (name, attributes);
        Ok(())
    }
    /// Called for `</name>`, and immediately after `start_element` for
    /// self-closing tags.
    fn end_element(&mut self, name: &str) -> Result<()> {
        let _ = name;
        Ok(())
    }
    /// Character data (entities resolved) and CDATA content.
    fn characters(&mut self, text: &str) -> Result<()> {
        let _ = text;
        Ok(())
    }
    /// Comments; rarely needed.
    fn comment(&mut self, text: &str) -> Result<()> {
        let _ = text;
        Ok(())
    }
    /// Processing instructions other than the XML declaration.
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<()> {
        let _ = (target, data);
        Ok(())
    }
}

/// Parses `src` and pushes every structural event into `handler`.
///
/// Returns the number of elements seen (start tags), which callers use as a
/// cheap progress metric.
pub fn drive<H: Handler>(src: &str, handler: &mut H) -> Result<u64> {
    let mut parser = Parser::new(src);
    let mut elements = 0u64;
    loop {
        match parser.next_event()? {
            Event::Start {
                name,
                attributes,
                empty,
            } => {
                elements += 1;
                handler.start_element(&name, &attributes)?;
                if empty {
                    handler.end_element(&name)?;
                }
            }
            Event::End { name } => handler.end_element(&name)?,
            Event::Text(t) | Event::CData(t) => handler.characters(&t)?,
            Event::Comment(c) => handler.comment(&c)?,
            Event::ProcessingInstruction { target, data } => {
                handler.processing_instruction(&target, &data)?
            }
            Event::XmlDecl { .. } | Event::Doctype(_) => {}
            Event::Eof => return Ok(elements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<String>,
    }

    impl Handler for Recorder {
        fn start_element(&mut self, name: &str, attributes: &[Attribute]) -> Result<()> {
            self.log.push(format!("+{}({})", name, attributes.len()));
            Ok(())
        }
        fn end_element(&mut self, name: &str) -> Result<()> {
            self.log.push(format!("-{name}"));
            Ok(())
        }
        fn characters(&mut self, text: &str) -> Result<()> {
            if !text.trim().is_empty() {
                self.log.push(format!("t:{}", text.trim()));
            }
            Ok(())
        }
    }

    #[test]
    fn drives_events_in_order() {
        let mut r = Recorder::default();
        let n = drive("<a x=\"1\"><b/>hi</a>", &mut r).unwrap();
        assert_eq!(n, 2);
        assert_eq!(r.log, vec!["+a(1)", "+b(0)", "-b", "t:hi", "-a"]);
    }

    #[test]
    fn self_closing_gets_end_callback() {
        let mut r = Recorder::default();
        drive("<root/>", &mut r).unwrap();
        assert_eq!(r.log, vec!["+root(0)", "-root"]);
    }

    #[test]
    fn handler_errors_propagate() {
        struct Failing;
        impl Handler for Failing {
            fn start_element(&mut self, _: &str, _: &[Attribute]) -> Result<()> {
                Err(crate::Error::Schema {
                    detail: "boom".into(),
                })
            }
        }
        assert!(drive("<a/>", &mut Failing).is_err());
    }

    #[test]
    fn cdata_reaches_characters() {
        let mut r = Recorder::default();
        drive("<a><![CDATA[x<y]]></a>", &mut r).unwrap();
        assert!(r.log.contains(&"t:x<y".to_string()));
    }
}
