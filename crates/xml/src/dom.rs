//! A lightweight owned document tree.
//!
//! Used where random access beats streaming: the WSDL layer, tests, and the
//! examples. Intentionally minimal — namespaces are not resolved, and
//! comments/PIs are dropped on parse (they carry no data in this system).

use crate::error::{Error, Result};
use crate::event::{Attribute, Event};
use crate::parser::Parser;
use crate::writer::Writer;

/// A node in the tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A text run (entities already resolved; CDATA merged in).
    Text(String),
}

/// An element with attributes and ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name as written.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A parsed document: the root element plus the raw DOCTYPE body, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Raw text of the `<!DOCTYPE ...>` body, when present.
    pub doctype: Option<String>,
    /// The document element.
    pub root: Element,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute::new(name, value));
        self
    }

    /// Builder-style: appends a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: appends a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Value of the attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Iterator over child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// First child element named `name`.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements named `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of this element's direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Recursively counts elements in this subtree (including `self`).
    pub fn count_elements(&self) -> usize {
        1 + self.elements().map(Element::count_elements).sum::<usize>()
    }

    /// Finds the first descendant (depth-first, including self) named `name`.
    pub fn descendant(&self, name: &str) -> Option<&Element> {
        if self.name == name {
            return Some(self);
        }
        self.elements().find_map(|e| e.descendant(name))
    }

    fn write_into(&self, w: &mut Writer) {
        w.start(&self.name);
        for a in &self.attributes {
            w.attr(&a.name, &a.value);
        }
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_into(w),
                Node::Text(t) => w.text(t),
            }
        }
        w.end();
    }

    /// Serializes this element (compact form).
    pub fn to_xml(&self) -> String {
        let mut w = Writer::new();
        self.write_into(&mut w);
        w.finish()
    }

    /// Serializes this element with indentation.
    pub fn to_xml_pretty(&self) -> String {
        let mut w = Writer::pretty();
        self.write_into(&mut w);
        w.finish()
    }
}

impl Document {
    /// Parses a document into a tree.
    ///
    /// Whitespace-only text nodes between elements are dropped (they are
    /// insignificant in every schema this system handles); other text is
    /// preserved verbatim.
    pub fn parse(src: &str) -> Result<Document> {
        let mut parser = Parser::new(src);
        let mut doctype = None;
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        loop {
            match parser.next_event()? {
                Event::XmlDecl { .. } => {}
                Event::Doctype(d) => doctype = Some(d),
                Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
                Event::Start {
                    name,
                    attributes,
                    empty,
                } => {
                    let elem = Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    };
                    if empty {
                        attach(&mut stack, &mut root, elem);
                    } else {
                        stack.push(elem);
                    }
                }
                Event::End { .. } => {
                    let done = stack.pop().expect("parser guarantees balance");
                    attach(&mut stack, &mut root, done);
                }
                Event::Text(t) | Event::CData(t) => {
                    if let Some(top) = stack.last_mut() {
                        if !t.trim().is_empty() {
                            // Merge adjacent text runs for a canonical tree.
                            if let Some(Node::Text(prev)) = top.children.last_mut() {
                                prev.push_str(&t);
                            } else {
                                top.children.push(Node::Text(t));
                            }
                        }
                    }
                }
                Event::Eof => break,
            }
        }
        let root = root.ok_or(Error::BadDocumentStructure {
            offset: src.len(),
            detail: "no document element",
        })?;
        Ok(Document { doctype, root })
    }

    /// Serializes back to XML (compact, with declaration).
    pub fn to_xml(&self) -> String {
        let mut w = Writer::new();
        w.xml_decl();
        self.root.write_into(&mut w);
        w.finish()
    }
}

fn attach(stack: &mut [Element], root: &mut Option<Element>, elem: Element) {
    if let Some(parent) = stack.last_mut() {
        parent.children.push(Node::Element(elem));
    } else {
        *root = Some(elem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<order id="7"><line qty="2">widget</line><line qty="1">gadget &amp; co</line><note/></order>"#;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse(SAMPLE).unwrap();
        assert_eq!(doc.root.name, "order");
        assert_eq!(doc.root.attr("id"), Some("7"));
        let lines: Vec<_> = doc.root.children_named("line").collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].text(), "gadget & co");
        assert!(doc.root.child("note").is_some());
        assert!(doc.root.child("missing").is_none());
    }

    #[test]
    fn count_and_descendant() {
        let doc = Document::parse(SAMPLE).unwrap();
        assert_eq!(doc.root.count_elements(), 4);
        assert_eq!(doc.root.descendant("line").unwrap().attr("qty"), Some("2"));
    }

    #[test]
    fn serialization_roundtrip() {
        let doc = Document::parse(SAMPLE).unwrap();
        let xml = doc.root.to_xml();
        let again = Document::parse(&xml).unwrap();
        assert_eq!(doc.root, again.root);
    }

    #[test]
    fn builder_api() {
        let e = Element::new("a")
            .with_attr("k", "v")
            .with_child(Element::new("b").with_text("t"))
            .with_text("tail");
        assert_eq!(e.to_xml(), r#"<a k="v"><b>t</b>tail</a>"#);
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let doc = Document::parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
    }

    #[test]
    fn doctype_captured() {
        let doc = Document::parse("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>").unwrap();
        assert!(doc.doctype.unwrap().contains("ELEMENT"));
    }

    #[test]
    fn adjacent_text_merged() {
        let doc = Document::parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
        assert_eq!(doc.root.text(), "xyz");
    }

    #[test]
    fn pretty_output_parses_back() {
        let doc = Document::parse(SAMPLE).unwrap();
        let pretty = doc.root.to_xml_pretty();
        let again = Document::parse(&pretty).unwrap();
        assert_eq!(again.root.children_named("line").count(), 2);
    }
}
