//! Property-based tests for the XML substrate: serialization and parsing
//! must be exact inverses on the constructs this system produces.

use proptest::prelude::*;
use xdx_xml::escape::{escape_attr, escape_text, unescape};
use xdx_xml::{Document, Element, Occurs, SchemaTree};

/// Strategy for text content (any printable unicode including specials).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~é✓&<>\"']{0,40}").unwrap()
}

/// Strategy for XML names.
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z_][A-Za-z0-9_.-]{0,12}").unwrap()
}

/// Recursive strategy for random element trees.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), text_strategy()).prop_map(|(name, text)| {
        let mut e = Element::new(name);
        if !text.trim().is_empty() {
            e = e.with_text(text);
        }
        e
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                let mut seen = std::collections::HashSet::new();
                for (an, av) in attrs {
                    if seen.insert(an.clone()) {
                        e = e.with_attr(an, av);
                    }
                }
                for c in children {
                    e = e.with_child(c);
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn escape_unescape_roundtrip(s in text_strategy()) {
        let escaped_text = escape_text(&s);
        prop_assert_eq!(unescape(&escaped_text, 0).unwrap(), s.as_str());
        let escaped_attr = escape_attr(&s);
        prop_assert_eq!(unescape(&escaped_attr, 0).unwrap(), s.as_str());
    }

    #[test]
    fn dom_serialization_roundtrip(root in element_strategy()) {
        let xml = root.to_xml();
        let parsed = Document::parse(&xml).unwrap();
        // Whitespace-only text runs are dropped on parse; our generator
        // never produces them, so trees must match exactly.
        prop_assert_eq!(parsed.root, root);
    }

    #[test]
    fn pretty_and_compact_parse_identically(root in element_strategy()) {
        // Pretty-printing inserts insignificant whitespace only; element
        // structure and attributes must survive.
        let compact = Document::parse(&root.to_xml()).unwrap();
        let pretty = Document::parse(&root.to_xml_pretty()).unwrap();
        prop_assert_eq!(compact.root.count_elements(), pretty.root.count_elements());
        prop_assert_eq!(compact.root.name, pretty.root.name);
    }

    #[test]
    fn balanced_schema_xsd_roundtrip(height in 0usize..4, fanout in 1usize..4) {
        let tree = SchemaTree::balanced(height, fanout, true);
        let back = SchemaTree::from_xsd(&tree.to_xsd()).unwrap();
        prop_assert_eq!(back.len(), tree.len());
        for id in tree.ids() {
            let b = back.by_name(tree.name(id)).unwrap();
            prop_assert_eq!(back.node(b).occurs, tree.node(id).occurs);
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        // Any input must produce Ok or Err, never a panic.
        let _ = xdx_xml::parser::parse_events(&s);
    }

    #[test]
    fn subtree_sizes_partition(height in 1usize..4, fanout in 1usize..4) {
        let tree = SchemaTree::balanced(height, fanout, false);
        let root_subtree = tree.subtree(tree.root());
        prop_assert_eq!(root_subtree.len(), tree.len());
        // Children's subtrees partition the root's subtree minus the root.
        let child_total: usize = tree
            .node(tree.root())
            .children
            .iter()
            .map(|&c| tree.subtree(c).len())
            .sum();
        prop_assert_eq!(child_total + 1, tree.len());
    }
}

#[test]
fn occurs_suffix_matrix() {
    assert_eq!(Occurs::One.dtd_suffix(), "");
    assert_eq!(Occurs::Optional.dtd_suffix(), "?");
    assert_eq!(Occurs::OneOrMore.dtd_suffix(), "+");
}
