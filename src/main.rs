//! `xdx` — command-line driver for the XML data-exchange stack.
//!
//! ```text
//! xdx generate --bytes 2500000 --out auction.xml
//! xdx wsdl --fragmentation LF
//! xdx plan --source MF --target LF --target-speed 10
//! xdx exchange --doc auction.xml --source MF --target LF --network internet
//! xdx compare --doc auction.xml --source MF --target LF
//! xdx advise --doc auction.xml --side source --peer LF
//! ```
//!
//! All commands operate on the paper's Figure-7 auction schema; `--source`
//! / `--target` / `--peer` accept `MF`, `LF` or `WHOLE`.

use std::collections::HashMap;
use std::process::ExitCode;
use xdx::core::advisor::{Advisor, Side};
use xdx::core::cost::SystemProfile;
use xdx::core::exchange::{DataExchange, Optimizer};
use xdx::core::pm::publish_and_map;
use xdx::core::selection::{Selection, ValuePred};
use xdx::core::Fragmentation;
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;
use xdx::wsdl::WsdlDefinition;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "shred" => cmd_shred(&opts),
        "wsdl" => cmd_wsdl(&opts),
        "plan" => cmd_plan(&opts),
        "exchange" => cmd_exchange(&opts),
        "compare" => cmd_compare(&opts),
        "advise" => cmd_advise(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "xdx — fragmented XML data exchange (ICDE 2004 reproduction)

USAGE: xdx <command> [options]

COMMANDS
  generate   generate an auction document        --bytes N [--seed S] [--out FILE]
  shred      shred a document into a database    --doc FILE --fragmentation F --out DIR
  wsdl       print WSDL + fragmentation XML      --fragmentation MF|LF|WHOLE
  plan       plan an exchange and show the DAG   --source F --target F
             [--optimizer greedy|optimal] [--source-speed X] [--target-speed X]
             [--dumb-client] [--doc FILE]
  exchange   run an optimized exchange           --doc FILE --source F --target F
             [--source-dir DIR] [--network lan|internet] [--parallel N]
             [--select anchor:leaf=value] [--save-target DIR]
  compare    optimized exchange vs publish&map   --doc FILE --source F --target F
             [--network lan|internet]
  advise     recommend a fragmentation           --doc FILE --side source|target --peer F
";

/// Minimal `--key value` / `--flag` option parser.
struct Opts {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {a:?}"))?;
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), it.next().unwrap().clone());
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Opts { values, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
            None => Ok(default),
        }
    }
}

fn fragmentation(name: &str, schema: &xdx::xml::SchemaTree) -> Result<Fragmentation, String> {
    match name.to_uppercase().as_str() {
        "MF" => Ok(xdx::xmark::mf(schema)),
        "LF" => Ok(xdx::xmark::lf(schema)),
        "WHOLE" => Ok(Fragmentation::whole_document("WHOLE", schema)),
        other => Err(format!(
            "unknown fragmentation {other:?} (expected MF, LF or WHOLE)"
        )),
    }
}

fn network(opts: &Opts) -> Result<NetworkProfile, String> {
    match opts.get("network").unwrap_or("lan") {
        "lan" => Ok(NetworkProfile::lan()),
        "internet" => Ok(NetworkProfile::internet_2004()),
        other => Err(format!(
            "unknown network {other:?} (expected lan or internet)"
        )),
    }
}

fn load_doc(opts: &Opts) -> Result<String, String> {
    match opts.get("doc") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("--doc {path}: {e}")),
        None => Ok(xdx::xmark::generate(xdx::xmark::GenConfig::sized(500_000))),
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let bytes: usize = opts.parse_num("bytes", 2_500_000)?;
    let seed: u64 = opts.parse_num("seed", 0x1CDE_2004)?;
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig {
        target_bytes: bytes,
        seed,
    });
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &doc).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("wrote {} bytes to {path}", doc.len());
        }
        None => println!("{doc}"),
    }
    Ok(())
}

fn cmd_shred(opts: &Opts) -> Result<(), String> {
    let schema = xdx::xmark::schema();
    let frag = fragmentation(opts.require("fragmentation")?, &schema)?;
    let doc = load_doc(opts)?;
    let db = xdx::xmark::load_source(&doc, &schema, &frag).map_err(|e| e.to_string())?;
    let out = std::path::PathBuf::from(opts.require("out")?);
    let n = xdx::relational::storage::save(&db, &out).map_err(|e| e.to_string())?;
    eprintln!(
        "shredded {} bytes into {n} table(s) under {}",
        doc.len(),
        out.display()
    );
    Ok(())
}

/// Resolves the source database: a persisted directory when `--source-dir`
/// is given, else shred `--doc` (or a default document) fresh.
fn source_db(
    opts: &Opts,
    schema: &xdx::xml::SchemaTree,
    frag: &xdx::core::Fragmentation,
) -> Result<Database, String> {
    if let Some(dir) = opts.get("source-dir") {
        let db =
            xdx::relational::storage::load(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
        for f in &frag.fragments {
            if !db.has_table(&f.name) {
                return Err(format!(
                    "--source-dir {dir}: table {} missing (was it shredded with --fragmentation {}?)",
                    f.name, frag.name
                ));
            }
        }
        return Ok(db);
    }
    let doc = load_doc(opts)?;
    xdx::xmark::load_source(&doc, schema, frag).map_err(|e| e.to_string())
}

fn cmd_wsdl(opts: &Opts) -> Result<(), String> {
    let schema = xdx::xmark::schema();
    let frag = fragmentation(opts.get("fragmentation").unwrap_or("LF"), &schema)?;
    let wsdl = WsdlDefinition::single_service(
        "AuctionInfo",
        "http://auctions.wsdl",
        schema.clone(),
        "AuctionInfoService",
        "http://auctioninfo",
    );
    println!("{}", wsdl.to_xml());
    println!();
    println!(
        "{}",
        frag.to_decl(&schema)
            .to_xml(&schema)
            .map_err(|e| e.to_string())?
    );
    Ok(())
}

fn build_exchange<'a>(
    opts: &Opts,
    schema: &'a xdx::xml::SchemaTree,
) -> Result<DataExchange<'a>, String> {
    let source = fragmentation(opts.require("source")?, schema)?;
    let target = fragmentation(opts.require("target")?, schema)?;
    let mut ex = DataExchange::new(schema, source, target);
    let optimizer = match opts.get("optimizer").unwrap_or("greedy") {
        "greedy" => Optimizer::Greedy,
        "optimal" => Optimizer::Optimal {
            ordering_cap: 50_000,
        },
        other => return Err(format!("unknown optimizer {other:?}")),
    };
    ex = ex.with_optimizer(optimizer);
    let src_speed: f64 = opts.parse_num("source-speed", 1.0)?;
    let tgt_speed: f64 = opts.parse_num("target-speed", 1.0)?;
    let mut tgt_profile = SystemProfile::with_speed(tgt_speed);
    if opts.flag("dumb-client") {
        tgt_profile.can_combine = false;
    }
    ex = ex.with_profiles(SystemProfile::with_speed(src_speed), tgt_profile);
    if let Some(spec) = opts.get("select") {
        // anchor:leaf=value
        let (anchor, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("--select expects anchor:leaf=value, got {spec:?}"))?;
        let (leaf, value) = rest
            .split_once('=')
            .ok_or_else(|| format!("--select expects anchor:leaf=value, got {spec:?}"))?;
        let sel = Selection::new(schema, anchor, leaf, ValuePred::Equals(value.to_string()))
            .map_err(|e| e.to_string())?;
        ex = ex.with_selection(sel);
    }
    Ok(ex)
}

fn cmd_plan(opts: &Opts) -> Result<(), String> {
    let schema = xdx::xmark::schema();
    let ex = build_exchange(opts, &schema)?;
    let source = source_db(opts, &schema, &ex.source_frag)?;
    let model = ex.probe(&source).map_err(|e| e.to_string())?;
    let (program, cost) = ex.plan(&model).map_err(|e| e.to_string())?;
    println!("{}", program.display(&schema));
    let (s, c, sp, w) = program.op_counts();
    println!("ops: {s} scans, {c} combines, {sp} splits, {w} writes");
    println!("cross-edges: {}", program.cross_edges().len());
    println!("estimated cost: {cost:.0}");
    Ok(())
}

fn cmd_exchange(opts: &Opts) -> Result<(), String> {
    let schema = xdx::xmark::schema();
    let ex = build_exchange(opts, &schema)?;
    let mut source = source_db(opts, &schema, &ex.source_frag)?;
    let mut target = Database::new("target");
    let mut link = Link::new(network(opts)?);
    let threads: usize = opts.parse_num("parallel", 1)?;
    if threads > 1 {
        // Parallel path: plan explicitly, then run the component-parallel
        // executor.
        let model = ex.probe(&source).map_err(|e| e.to_string())?;
        let (program, _) = ex.plan(&model).map_err(|e| e.to_string())?;
        let outcome = xdx::core::exec_parallel::execute_parallel(
            &schema,
            &ex.source_frag,
            &ex.target_frag,
            &program,
            &mut source,
            &mut target,
            &mut link,
            threads,
        )
        .map_err(|e| e.to_string())?;
        println!("parallel x{threads}: {}", outcome.times);
        println!(
            "shipped {} bytes in {} messages; {} rows loaded",
            outcome.bytes_shipped, outcome.messages, outcome.rows_loaded
        );
    } else {
        let (report, program) = ex
            .run(&mut source, &mut target, &mut link)
            .map_err(|e| e.to_string())?;
        println!("{}", program.display(&schema));
        println!("{report}");
    }
    println!("\ntarget tables:");
    for name in target.table_names() {
        println!(
            "  {name}: {} rows",
            target.table(name).map_err(|e| e.to_string())?.len()
        );
    }
    if let Some(dir) = opts.get("save-target") {
        let n = xdx::relational::storage::save(&target, std::path::Path::new(dir))
            .map_err(|e| e.to_string())?;
        eprintln!("saved {n} target table(s) under {dir}");
    }
    Ok(())
}

fn cmd_compare(opts: &Opts) -> Result<(), String> {
    let schema = xdx::xmark::schema();
    let ex = build_exchange(opts, &schema)?;
    let profile = network(opts)?;

    let mut de_source = source_db(opts, &schema, &ex.source_frag)?;
    let mut de_target = Database::new("de");
    let mut de_link = Link::new(profile);
    let (de, _) = ex
        .run(&mut de_source, &mut de_target, &mut de_link)
        .map_err(|e| e.to_string())?;

    let mut pm_source = source_db(opts, &schema, &ex.source_frag)?;
    let mut pm_target = Database::new("pm");
    let mut pm_link = Link::new(profile);
    let pm = publish_and_map(
        &schema,
        &ex.source_frag,
        &ex.target_frag,
        &mut pm_source,
        &mut pm_target,
        &mut pm_link,
    )
    .map_err(|e| e.to_string())?;

    println!("{de}");
    println!("{pm}");
    let save = 1.0 - de.times.total().as_secs_f64() / pm.times.total().as_secs_f64();
    println!("optimized exchange saves {:.1}% end-to-end", save * 100.0);
    Ok(())
}

fn cmd_advise(opts: &Opts) -> Result<(), String> {
    let schema = xdx::xmark::schema();
    let side = match opts.require("side")? {
        "source" => Side::Source,
        "target" => Side::Target,
        other => return Err(format!("--side must be source or target, got {other:?}")),
    };
    let peer = fragmentation(opts.require("peer")?, &schema)?;
    let doc = load_doc(opts)?;
    // Probe statistics from the peer's own layout (any layout gives the
    // same per-element counts).
    let db = xdx::xmark::load_source(&doc, &schema, &peer).map_err(|e| e.to_string())?;
    let stats =
        xdx::core::cost::SchemaStats::probe(&schema, &db, &peer).map_err(|e| e.to_string())?;
    let model = xdx::core::cost::CostModel::fast_network(stats);
    let advisor = Advisor::new(&schema, &model);
    let advice = advisor.advise(side, &peer).map_err(|e| e.to_string())?;
    println!(
        "advised fragmentation ({} candidates evaluated, planned cost {:.0}):",
        advice.candidates_evaluated, advice.cost
    );
    for frag in &advice.fragmentation.fragments {
        println!("  {}", frag.name);
    }
    Ok(())
}
