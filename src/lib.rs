//! # xdx — a web-services architecture for efficient XML data exchange
//!
//! A production-quality Rust reproduction of *Amer-Yahia & Kotidis, "A
//! Web-Services Architecture for Efficient XML Data Exchange" (ICDE
//! 2004)*: instead of publishing a full XML document at the source and
//! re-shredding it at the target (*publish&map*), the two systems register
//! **fragmentations** of the agreed-upon XML Schema through a WSDL
//! extension, and a middle-tier discovery agency compiles a cost-optimized
//! distributed **data-transfer program** over four primitive operations
//! (`Scan`, `Combine`, `Split`, `Write`).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`xml`] — XML parser/writer/DOM/DTD/schema-tree substrate
//! * [`relational`] — instrumented in-memory relational engine (feeds,
//!   joins, indexes, bulk loads)
//! * [`directory`] — LDAP-like directory store (the motivating example's
//!   provisioning target)
//! * [`net`] — simulated wide-area link, HTTP framing, SOAP envelopes
//! * [`wsdl`] — WSDL subset + the fragmentation extension + registry
//! * [`core`] — the paper's contribution: fragments, mappings, programs,
//!   cost model, optimal & greedy optimizers, executor, publish&map
//!   baseline
//! * [`xmark`] — the Figure-7 XMark workload generator
//! * [`sim`] — the Section-5.4 simulator
//! * [`runtime`] — multi-tenant exchange-session runtime: concurrent
//!   sessions, fault-tolerant chunked shipping, plan caching, metrics
//!
//! ## Quickstart
//!
//! ```
//! use xdx::core::DataExchange;
//! use xdx::net::{Link, NetworkProfile};
//! use xdx::relational::Database;
//!
//! // The agreed-upon schema and a generated document.
//! let schema = xdx::xmark::schema();
//! let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(40_000));
//!
//! // The source stores MF (a table per element); the target wants LF.
//! let mf = xdx::xmark::mf(&schema);
//! let lf = xdx::xmark::lf(&schema);
//! let mut source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
//! let mut target = Database::new("target");
//! let mut link = Link::new(NetworkProfile::internet_2004());
//!
//! // Plan + execute the optimized exchange.
//! let exchange = DataExchange::new(&schema, mf.clone(), lf.clone());
//! let (report, program) = exchange.run(&mut source, &mut target, &mut link).unwrap();
//! assert!(report.rows_loaded > 0);
//! assert!(program.op_counts().1 > 0); // combines ran
//! ```

pub use xdx_core as core;
pub use xdx_directory as directory;
pub use xdx_net as net;
pub use xdx_relational as relational;
pub use xdx_runtime as runtime;
pub use xdx_sim as sim;
pub use xdx_wsdl as wsdl;
pub use xdx_xmark as xmark;
pub use xdx_xml as xml;
