//! The exchange-session runtime end to end: a mixed-direction fleet of
//! concurrent XMark exchanges spread over several `(source, target)`
//! endpoint pairs — each pair with its own registry link, fault stream
//! and circuit breaker — with plan caching, priorities, a per-request
//! optimizer override, chunked fault-tolerant shipping, and per-session
//! plus per-link metrics.
//!
//! ```sh
//! cargo run --release --example runtime
//! ```

use xdx::core::Optimizer;
use xdx::net::FaultProfile;
use xdx::runtime::{
    EventKind, ExchangeRequest, Priority, Runtime, RuntimeConfig, SessionState, ShippingPolicy,
};
use xdx::xmark;

fn main() {
    let schema = xmark::schema();
    let doc = xmark::generate(xmark::GenConfig::sized(50_000));
    let mf = xmark::mf(&schema);
    let lf = xmark::lf(&schema);

    // 4 workers, 4 KB chunks, a healthy default link. Every lost chunk
    // is retried with backoff out of the session's retry budget.
    let config = RuntimeConfig::default()
        .with_workers(4)
        .with_shipping(ShippingPolicy {
            chunk_bytes: 4 * 1024,
            ..ShippingPolicy::default()
        });
    let runtime = Runtime::start(schema.clone(), config);

    // Three sites exchange with a central registry over three distinct
    // pairs — three independent links. Only the vienna→registry path is
    // lossy; the others never see its faults.
    let sites = ["vienna", "lisbon", "tartu"];
    runtime.set_link_fault_profile("vienna", "registry", FaultProfile::drops(0.10, 2004));

    // Ten sessions, alternating MF→LF and LF→MF legs (two plan shapes,
    // each optimized once and cached), spread round-robin over the
    // sites. One is high priority; one plans under the exhaustive
    // `Optimal` optimizer instead of the fleet-default greedy.
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let (from, to) = if i % 2 == 1 { (&lf, &mf) } else { (&mf, &lf) };
            let source = xmark::load_source(&doc, &schema, from).expect("load source");
            let mut request =
                ExchangeRequest::new(format!("tenant-{i}"), source, from.clone(), to.clone())
                    .with_route(sites[i % sites.len()], "registry");
            if i == 7 {
                request = request.with_priority(Priority::High);
            }
            if i == 4 {
                request = request.with_optimizer(Optimizer::Optimal { ordering_cap: 64 });
            }
            runtime.submit(request).expect("admitted")
        })
        .collect();

    println!("session   route             state  wait ms  plan ms  cache  chunks  retried  rows");
    for handle in handles {
        let name = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
        let m = &result.metrics;
        println!(
            "{name:<9} {:<17} {:<6} {:>7.2} {:>8.2}  {:<5} {:>7} {:>8} {:>5}",
            m.route,
            format!("{:?}", result.state),
            m.queue_wait.as_secs_f64() * 1e3,
            m.planning.as_secs_f64() * 1e3,
            if m.plan_cache_hit { "hit" } else { "miss" },
            m.chunks_shipped,
            m.chunks_retried,
            m.rows_loaded,
        );
    }

    let retries = runtime
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::ChunkRetried)
        .count();
    let stats = runtime.shutdown();
    println!(
        "\ncompleted {} sessions; plan cache {} hits / {} misses; \
         {} statistics probes; {} KB on the wire, {} chunk retries ({retries} retry events)",
        stats.completed,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.planning_probes,
        stats.bytes_shipped / 1024,
        stats.chunks_retried,
    );
    println!(
        "latency p50 {:.2} ms, p99 {:.2} ms; peak concurrent shipments {}\n",
        stats.latency_percentile(50.0).unwrap().as_secs_f64() * 1e3,
        stats.latency_percentile(99.0).unwrap().as_secs_f64() * 1e3,
        stats.peak_concurrent_shipments,
    );

    // The per-link rollup: retries concentrate on the lossy pair.
    println!("link               wire KB  chunks  retried  done  breaker");
    for link in &stats.links {
        println!(
            "{:<18} {:>7} {:>7} {:>8} {:>5}  {}",
            link.pair(),
            link.wire_bytes / 1024,
            link.chunks_shipped,
            link.chunks_retried,
            link.sessions_completed,
            if link.breaker_open { "open" } else { "closed" },
        );
    }
}
