//! The exchange-session runtime end to end: a mixed-direction fleet of
//! concurrent XMark exchanges spread over four `(source, target)`
//! endpoint pairs — each pair with its own registry link, fault stream,
//! negotiated wire format and circuit breaker — with plan caching,
//! priorities, a per-request optimizer override, chunked fault-tolerant
//! shipping, and the full telemetry surface: per-session and per-link
//! metrics, a Prometheus text snapshot, the structured span trace as
//! JSONL, the event log, the flight-recorder rings, the critical-path
//! report, and the cost-model calibration report. After the two-site
//! fleet, a 1→3 multicast publish over Gilbert–Elliott bursty links
//! adds one stitched cross-site trace, and the example scrapes its own
//! live introspection endpoint over plain HTTP — the same surface an
//! operator's `curl` sees. The machine-readable artifacts land in
//! `telemetry/` (CI's `telemetry-smoke` and `introspect-smoke` jobs
//! parse them).
//!
//! ```sh
//! cargo run --release --example runtime
//! ```

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use xdx::core::Optimizer;
use xdx::net::{BurstLoss, FaultProfile};
use xdx::runtime::{
    EventKind, ExchangeRequest, Priority, PublishRequest, Runtime, RuntimeConfig, SessionState,
    ShippingPolicy, WireFormat, DEFAULT_SOURCE_ENDPOINT,
};
use xdx::xmark;

fn main() {
    let schema = xmark::schema();
    let doc = xmark::generate(xmark::GenConfig::sized(50_000));
    let mf = xmark::mf(&schema);
    let lf = xmark::lf(&schema);

    // 4 workers, 4 KB chunks, a healthy default link. Every lost chunk
    // is retried with backoff out of the session's retry budget.
    let config = RuntimeConfig::default()
        .with_workers(4)
        .with_shipping(ShippingPolicy {
            chunk_bytes: 4 * 1024,
            ..ShippingPolicy::default()
        })
        .with_introspect_addr("127.0.0.1:0".parse().unwrap());
    let runtime = Runtime::start(schema.clone(), config);

    // Four sites exchange with a central registry over four distinct
    // pairs — four independent links. Only the vienna→registry path is
    // lossy; the others never see its faults. Vienna and lisbon speak
    // the columnar codec (and so does the registry), so their links
    // negotiate columnar while tartu and oslo fall back to XML text —
    // a mixed-format fleet.
    let sites = ["vienna", "lisbon", "tartu", "oslo"];
    runtime.set_link_fault_profile("vienna", "registry", FaultProfile::drops(0.10, 2004));
    runtime.set_endpoint_format("registry", WireFormat::Columnar);
    runtime.set_endpoint_format("vienna", WireFormat::Columnar);
    runtime.set_endpoint_format("lisbon", WireFormat::Columnar);

    // Sixteen sessions, alternating MF→LF and LF→MF legs (two plan
    // shapes, each optimized once and cached), spread round-robin over
    // the sites. One is high priority; one plans under the exhaustive
    // `Optimal` optimizer instead of the fleet-default greedy.
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let (from, to) = if i % 2 == 1 { (&lf, &mf) } else { (&mf, &lf) };
            let source = xmark::load_source(&doc, &schema, from).expect("load source");
            let mut request =
                ExchangeRequest::new(format!("tenant-{i}"), source, from.clone(), to.clone())
                    .with_route(sites[i % sites.len()], "registry");
            if i == 7 {
                request = request.with_priority(Priority::High);
            }
            if i == 4 {
                request = request.with_optimizer(Optimizer::Optimal { ordering_cap: 64 });
            }
            runtime.submit(request).expect("admitted")
        })
        .collect();

    println!("session    route             state  wait ms  plan ms  cache  chunks  retried  rows");
    for handle in handles {
        let name = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
        let m = &result.metrics;
        println!(
            "{name:<10} {:<17} {:<6} {:>7.2} {:>8.2}  {:<5} {:>7} {:>8} {:>5}",
            m.route,
            format!("{:?}", result.state),
            m.queue_wait.as_secs_f64() * 1e3,
            m.planning.as_secs_f64() * 1e3,
            if m.plan_cache_hit { "hit" } else { "miss" },
            m.chunks_shipped,
            m.chunks_retried,
            m.rows_loaded,
        );
    }

    // A 1→3 multicast publish over Gilbert–Elliott bursty subscriber
    // links: one shared encode feeds three lanes, and the shipped
    // frames carry the group's trace context, so the receiver-side
    // decode/stage/settle spans on all three subscribers stitch under
    // a single `publish-group` root — one distributed trace tree.
    for i in 0..3 {
        runtime.set_link_fault_profile(
            DEFAULT_SOURCE_ENDPOINT,
            &format!("mirror-{i}"),
            FaultProfile {
                burst_loss: Some(BurstLoss {
                    enter: 0.05,
                    exit: 0.4,
                    loss: 0.7,
                }),
                seed: 41 + i,
                ..FaultProfile::healthy()
            },
        );
    }
    let lanes = runtime
        .publish(PublishRequest::new(
            "mirror",
            xmark::load_source(&doc, &schema, &mf).expect("load publish source"),
            mf.clone(),
            lf.clone(),
            (0..3).map(|i| format!("mirror-{i}")).collect(),
        ))
        .expect("publish admitted")
        .wait();
    for lane in &lanes {
        assert_eq!(lane.state, SessionState::Done, "{:?}", lane.diagnostic);
    }
    // Lane results resolve at settle; the group root records moments
    // later on the worker thread — wait for it before capturing the
    // trace, so the stitched tree in the artifact has no orphans.
    let mut trace = String::new();
    for _ in 0..200 {
        trace = runtime.trace_jsonl();
        if trace.contains("\"name\":\"publish-group\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        trace.contains("\"name\":\"publish-group\""),
        "multicast group root never recorded"
    );
    println!(
        "\nmulticast: 3 lanes settled over bursty links; stitched trace rooted at publish-group"
    );

    // The whole telemetry surface, captured while the runtime is live:
    // a Prometheus text snapshot, the span trace and event log as
    // JSONL, the flight-recorder rings, the critical-path report, and
    // the predicted-vs-observed calibration report. CI's
    // `telemetry-smoke` job re-parses these files and fails on schema
    // drift.
    let metrics = runtime.metrics_text();
    let events = runtime.events_jsonl();
    let calibration = runtime.calibration_report();
    std::fs::create_dir_all("telemetry").expect("create telemetry dir");
    std::fs::write("telemetry/metrics.prom", &metrics).expect("write metrics");
    std::fs::write("telemetry/trace.jsonl", &trace).expect("write trace");
    std::fs::write("telemetry/events.jsonl", &events).expect("write events");
    std::fs::write("telemetry/calibration.json", calibration.to_json()).expect("write calibration");
    std::fs::write(
        "telemetry/critical_path.json",
        runtime.critical_path().to_json(),
    )
    .expect("write critical path");
    std::fs::write("telemetry/flight.jsonl", runtime.flight_jsonl()).expect("write flight rings");

    // Scrape the live introspection endpoint over plain HTTP — the
    // exact bytes an operator's `curl` would see — and keep the
    // replies as artifacts next to the directly-captured telemetry.
    // CI's `introspect-smoke` job cross-checks both captures.
    let addr = runtime
        .introspect_addr()
        .expect("introspection endpoint enabled");
    let fetch = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect introspection endpoint");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: xdx\r\n\r\n").as_bytes())
            .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read reply");
        assert!(raw.starts_with("HTTP/1.1 200"), "{path}: {raw}");
        raw.split_once("\r\n\r\n")
            .expect("header/body split")
            .1
            .to_string()
    };
    let healthz = fetch("/healthz");
    assert!(healthz.contains("\"healthy\":true"), "{healthz}");
    std::fs::write("telemetry/introspect_healthz.json", &healthz).expect("write healthz");
    std::fs::write("telemetry/introspect_metrics.prom", fetch("/metrics"))
        .expect("write scraped metrics");
    std::fs::write("telemetry/introspect_traces.jsonl", fetch("/traces"))
        .expect("write scraped traces");
    println!("introspection: http://{addr} scraped /healthz /metrics /traces -> telemetry/");
    println!(
        "\ntelemetry: {} metric lines, {} spans, {} events -> telemetry/",
        metrics.lines().count(),
        trace.lines().count(),
        events.lines().count(),
    );
    for line in metrics.lines().filter(|l| {
        l.starts_with("xdx_session_latency_ns") || l.starts_with("xdx_link_utilization")
    }) {
        println!("  {line}");
    }
    print!("{calibration}");

    let retries = runtime
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::ChunkRetried)
        .count();
    let stats = runtime.shutdown();
    println!(
        "\ncompleted {} sessions; plan cache {} hits / {} misses; \
         {} statistics probes; {} KB on the wire, {} chunk retries ({retries} retry events)",
        stats.completed,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.planning_probes,
        stats.bytes_shipped / 1024,
        stats.chunks_retried,
    );
    println!(
        "latency p50 {:.2} ms, p99 {:.2} ms; peak concurrent shipments {}; \
         {} events / {} spans dropped\n",
        stats.latency_percentile(50.0).unwrap().as_secs_f64() * 1e3,
        stats.latency_percentile(99.0).unwrap().as_secs_f64() * 1e3,
        stats.peak_concurrent_shipments,
        stats.dropped_events,
        stats.dropped_spans,
    );

    // The per-link rollup: retries concentrate on the lossy pair, and
    // the negotiated wire format differs per pair.
    println!("link               format    wire KB  chunks  retried  done  breaker");
    for link in &stats.links {
        println!(
            "{:<18} {:<9} {:>7} {:>7} {:>8} {:>5}  {}",
            link.pair(),
            link.wire_format.name(),
            link.wire_bytes / 1024,
            link.chunks_shipped,
            link.chunks_retried,
            link.sessions_completed,
            if link.breaker_open { "open" } else { "closed" },
        );
    }
}
