//! The exchange-session runtime end to end: a fleet of concurrent
//! XMark exchanges over one lossy wide-area link, with plan caching,
//! priorities, chunked fault-tolerant shipping and per-session metrics.
//!
//! ```sh
//! cargo run --release --example runtime
//! ```

use xdx::net::FaultProfile;
use xdx::runtime::{
    EventKind, ExchangeRequest, Priority, Runtime, RuntimeConfig, SessionState, ShippingPolicy,
};
use xdx::xmark;

fn main() {
    let schema = xmark::schema();
    let doc = xmark::generate(xmark::GenConfig::sized(50_000));
    let mf = xmark::mf(&schema);
    let lf = xmark::lf(&schema);

    // 4 workers, a 10%-drop link, 4 KB chunks. Every lost chunk is
    // retried with backoff out of the session's retry budget.
    let config = RuntimeConfig::default()
        .with_workers(4)
        .with_fault_profile(FaultProfile::drops(0.10, 2004))
        .with_shipping(ShippingPolicy {
            chunk_bytes: 4 * 1024,
            ..ShippingPolicy::default()
        });
    let runtime = Runtime::start(schema.clone(), config);

    // Ten sessions of the same MF→LF shape (the plan is optimized once
    // and cached), one of them high priority.
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let source = xmark::load_source(&doc, &schema, &mf).expect("load source");
            let mut request =
                ExchangeRequest::new(format!("tenant-{i}"), source, mf.clone(), lf.clone());
            if i == 7 {
                request = request.with_priority(Priority::High);
            }
            runtime.submit(request).expect("admitted")
        })
        .collect();

    println!("session  state      wait ms  plan ms  cache  chunks  retried  rows");
    for handle in handles {
        let name = handle.name().to_string();
        let result = handle.wait();
        assert_eq!(result.state, SessionState::Done, "{:?}", result.diagnostic);
        let m = &result.metrics;
        println!(
            "{name:<8} {:<9} {:>8.2} {:>8.2}  {:<5} {:>7} {:>8} {:>5}",
            format!("{:?}", result.state),
            m.queue_wait.as_secs_f64() * 1e3,
            m.planning.as_secs_f64() * 1e3,
            if m.plan_cache_hit { "hit" } else { "miss" },
            m.chunks_shipped,
            m.chunks_retried,
            m.rows_loaded,
        );
    }

    let retries = runtime
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::ChunkRetried)
        .count();
    let stats = runtime.shutdown();
    println!(
        "\ncompleted {} sessions; plan cache {} hits / {} misses; \
         {} KB on the wire, {} chunk retries ({retries} retry events)",
        stats.completed,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.bytes_shipped / 1024,
        stats.chunks_retried,
    );
    println!(
        "latency p50 {:.2} ms, p99 {:.2} ms",
        stats.latency_percentile(50.0).unwrap().as_secs_f64() * 1e3,
        stats.latency_percentile(99.0).unwrap().as_secs_f64() * 1e3,
    );
}
