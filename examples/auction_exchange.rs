//! Optimized data exchange vs publish&map on the auction workload — the
//! comparison of the paper's Section 5, at example scale.
//!
//! Runs both strategies for all four MF/LF scenarios over a ~1 MB
//! document, printing the Figure-9-style step breakdown and the savings.
//!
//! Run with: `cargo run --release --example auction_exchange`

use xdx::core::pm::publish_and_map;
use xdx::core::DataExchange;
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;

fn main() {
    let schema = xdx::xmark::schema();
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(1_000_000));
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);
    println!(
        "document: {} bytes; MF = {} fragments, LF = {}\n",
        doc.len(),
        mf.len(),
        lf.len()
    );

    for (src, tgt) in [(&mf, &lf), (&lf, &mf), (&mf, &mf), (&lf, &lf)] {
        let scenario = format!("{}->{}", src.name, tgt.name);

        // Optimized exchange.
        let mut de_source = xdx::xmark::load_source(&doc, &schema, src).expect("loads");
        let mut de_target = Database::new("de-target");
        let mut de_link = Link::new(NetworkProfile::internet_2004());
        let (de, _) = DataExchange::new(&schema, src.clone(), tgt.clone())
            .run(&mut de_source, &mut de_target, &mut de_link)
            .expect("DE runs");

        // Publish&map.
        let mut pm_source = xdx::xmark::load_source(&doc, &schema, src).expect("loads");
        let mut pm_target = Database::new("pm-target");
        let mut pm_link = Link::new(NetworkProfile::internet_2004());
        let pm = publish_and_map(
            &schema,
            src,
            tgt,
            &mut pm_source,
            &mut pm_target,
            &mut pm_link,
        )
        .expect("PM runs");

        println!("=== {scenario} ===");
        println!("{de}");
        println!("{pm}");
        let save = 1.0 - de.times.total().as_secs_f64() / pm.times.total().as_secs_f64();
        println!("DE saves {:.0}% end-to-end (paper: 23–43%)\n", save * 100.0);
        assert_eq!(
            de_target.total_rows(),
            pm_target.total_rows(),
            "strategies must agree"
        );
    }
}
