//! The paper's motivating example (Section 1.1): a telecom sales &
//! ordering system backed by a relational store (schema S) feeds a
//! provisioning system backed by an LDAP directory (schema T).
//!
//! Both register the `CustomerInfoService` WSDL at a discovery agency; the
//! target additionally registers the **T-fragmentation** so that orders
//! and services arrive combined (`ORDER_SERVICE_T`) while customers and
//! features arrive as their own fragments — avoiding the combines
//! publish&map would force the source to perform and the target to undo.
//!
//! Run with: `cargo run --release --example customer_provisioning`

use std::collections::BTreeSet;
use xdx::core::{DataExchange, Fragment, Fragmentation};
use xdx::directory::{Directory, ObjectClass};
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;
use xdx::wsdl::{Registry, WsdlDefinition};
use xdx::xml::{Occurs, SchemaTree, Writer};

/// The agreed-upon Customer schema of the paper's Figure 1.
fn customer_schema() -> SchemaTree {
    let mut t = SchemaTree::new("Customer");
    let n = t.add_child(t.root(), "CustName", Occurs::One).unwrap();
    t.set_text(n);
    let order = t.add_child(t.root(), "Order", Occurs::Many).unwrap();
    let service = t.add_child(order, "Service", Occurs::One).unwrap();
    let sn = t.add_child(service, "ServiceName", Occurs::One).unwrap();
    t.set_text(sn);
    let line = t.add_child(service, "Line", Occurs::Many).unwrap();
    let tel = t.add_child(line, "TelNo", Occurs::One).unwrap();
    t.set_text(tel);
    let switch = t.add_child(line, "Switch", Occurs::One).unwrap();
    let sid = t.add_child(switch, "SwitchID", Occurs::One).unwrap();
    t.set_text(sid);
    let feature = t.add_child(line, "Feature", Occurs::Many).unwrap();
    let fid = t.add_child(feature, "FeatureID", Occurs::One).unwrap();
    t.set_text(fid);
    t
}

/// The T-fragmentation of Section 3.1.
fn t_fragmentation(schema: &SchemaTree) -> Fragmentation {
    let frag = |name: &str, names: &[&str]| {
        let ids: BTreeSet<_> = names.iter().map(|n| schema.by_name(n).unwrap()).collect();
        Fragment::new(schema, name, schema.by_name(names[0]).unwrap(), ids).unwrap()
    };
    Fragmentation::new(
        "T-fragmentation",
        schema,
        vec![
            frag("Customer.xsd", &["Customer", "CustName"]),
            frag("Order_Service.xsd", &["Order", "Service", "ServiceName"]),
            frag("Line_Switch.xsd", &["Line", "TelNo", "Switch", "SwitchID"]),
            frag("Feature.xsd", &["Feature", "FeatureID"]),
        ],
    )
    .unwrap()
}

/// Synthesizes the sales system's customer document.
fn sales_document() -> String {
    let mut w = Writer::new();
    w.start("Customer");
    w.text_element("CustName", "ACME Manufacturing");
    for o in 0..3 {
        w.start("Order");
        w.start("Service");
        w.text_element(
            "ServiceName",
            ["local", "long-distance", "international"][o],
        );
        for l in 0..2 {
            w.start("Line");
            w.text_element("TelNo", &format!("973-360-8{o}{l}7"));
            w.start("Switch");
            w.text_element("SwitchID", &format!("NJ-5ESS-{o}{l}"));
            w.end();
            for feat in ["caller-id", "call-waiting"].iter().take(l + 1) {
                w.start("Feature");
                w.text_element("FeatureID", feat);
                w.end();
            }
            w.end();
        }
        w.end();
        w.end();
    }
    w.end();
    w.finish()
}

fn main() {
    let schema = customer_schema();

    // --- Step 1 (Figure 2): both systems register at the agency. -------
    let wsdl = WsdlDefinition::single_service(
        "CustomerInfo",
        "http://customers.wsdl",
        schema.clone(),
        "CustomerInfoService",
        "http://customerinfo",
    );
    let source_frag = Fragmentation::most_fragmented("S-fragmentation", &schema);
    let target_frag = t_fragmentation(&schema);
    let mut registry = Registry::new();
    registry.register("sales", wsdl.clone(), Some(source_frag.to_decl(&schema)));
    registry.register("provisioning", wsdl, Some(target_frag.to_decl(&schema)));

    println!("=== WSDL registered by both systems ===");
    println!("{}", registry.lookup("sales").unwrap().wsdl.to_xml());
    println!("\n=== The provisioning system's fragmentation extension ===");
    println!(
        "{}",
        target_frag
            .to_decl(&schema)
            .to_xml(&schema)
            .expect("declaration renders")
    );

    // --- Load the sales system (schema S, stored per element). ---------
    let doc = sales_document();
    let shredded = xdx::core::shred::shred(&doc, &schema, &source_frag).expect("shreds");
    let mut source = Database::new("sales");
    for (f, feed) in source_frag.fragments.iter().zip(shredded.feeds) {
        source.load(&f.name, feed).expect("loads");
    }

    // --- Steps 2–4: the agency plans and runs the exchange. ------------
    let exchange =
        DataExchange::from_registry(&schema, &registry, "sales", "provisioning").expect("plan");
    let mut staging = Database::new("provisioning-staging");
    let mut link = Link::new(NetworkProfile::internet_2004());
    let (report, program) = exchange
        .run(&mut source, &mut staging, &mut link)
        .expect("runs");
    println!(
        "\n=== Optimized exchange program ===\n{}",
        program.display(&schema)
    );
    println!("{report}");

    // --- The provisioning adapter stores the arrived fragments in LDAP.
    let mut directory = Directory::new("provisioning");
    directory.declare_class(ObjectClass::strings("CUSTOMER_T", &["CustName"]));
    directory.declare_class(ObjectClass::strings("ORDER_SERVICE_T", &["ServiceName"]));
    directory.declare_class(ObjectClass::strings(
        "LINE_SWITCH_T",
        &["TelNo", "SwitchID"],
    ));
    directory.declare_class(ObjectClass::strings("FEATURE_T", &["FeatureID"]));
    for (frag, class) in [
        ("Customer.xsd", "CUSTOMER_T"),
        ("Order_Service.xsd", "ORDER_SERVICE_T"),
        ("Line_Switch.xsd", "LINE_SWITCH_T"),
        ("Feature.xsd", "FEATURE_T"),
    ] {
        let feed = staging.table(frag).expect("staged").data.clone();
        let n = directory.load_feed(class, &feed).expect("directory loads");
        println!("loaded {n} {class} entries");
    }

    println!("\n=== LDAP view (first lines) ===");
    for class in directory.class_names() {
        for entry in directory.entries_of_class(class).take(2) {
            println!(
                "dn={} objectclass={} {:?}",
                entry.dn, entry.object_class, entry.attributes
            );
        }
    }
    assert_eq!(directory.entries_of_class("LINE_SWITCH_T").count(), 6);
    assert_eq!(directory.entries_of_class("FEATURE_T").count(), 9);
    println!(
        "\nprovisioning directory populated: {} entries",
        directory.len()
    );

    // --- A derived fragment: the paper's TotalMRCService. --------------
    // The sales system offers a computed fragment (here: count of lines
    // per customer as a stand-in for total monthly recurring charges)
    // "without revealing how this fragment is computed".
    use xdx::core::derived::{AggregateKind, DerivedFragment};
    let total_mrc = DerivedFragment::new(
        &schema,
        "TotalMRC",
        "Customer",
        "TelNo",
        AggregateKind::Count,
    )
    .expect("valid spec");
    let feed = total_mrc
        .compute(&schema, &source, &source_frag)
        .expect("computes");
    directory.declare_class(xdx::directory::ObjectClass::strings(
        "CUSTOMER_MRC_T",
        &["TotalMRC"],
    ));
    let n = directory.load_feed("CUSTOMER_MRC_T", &feed).expect("loads");
    println!(
        "TotalMRCService delivered {n} derived entr{}:",
        if n == 1 { "y" } else { "ies" }
    );
    for e in directory.entries_of_class("CUSTOMER_MRC_T") {
        println!(
            "  dn={} TotalMRC={}",
            e.dn,
            e.attr("TotalMRC").unwrap_or("?")
        );
    }
}
