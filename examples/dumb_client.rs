//! Capability- and speed-aware placement (paper Sections 4.1 and 5.4.1).
//!
//! The same MF→LF exchange is planned three times:
//!
//! 1. equal systems — combines stay at the source (shipping combined
//!    fragments is no worse, and the source is just as fast),
//! 2. a 10× faster target — the optimizer moves every combine to the
//!    target ("takes advantage of the very fast client and places all
//!    combines there"),
//! 3. a *dumb client* that cannot combine — combines are forced back to
//!    the source no matter how slow it is.
//!
//! Run with: `cargo run --release --example dumb_client`

use xdx::core::cost::SystemProfile;
use xdx::core::{DataExchange, Location, Op};
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;

fn main() {
    let schema = xdx::xmark::schema();
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(200_000));
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);

    let cases = [
        ("equal systems", SystemProfile::with_speed(1.0)),
        ("target 10x faster", SystemProfile::with_speed(10.0)),
        ("dumb client (no Combine)", SystemProfile::dumb_client()),
    ];
    for (label, target_profile) in cases {
        let mut source = xdx::xmark::load_source(&doc, &schema, &mf).expect("loads");
        let mut target = Database::new("target");
        let mut link = Link::new(NetworkProfile::lan());
        let exchange = DataExchange::new(&schema, mf.clone(), lf.clone())
            .with_profiles(SystemProfile::with_speed(1.0), target_profile);
        let (report, program) = exchange
            .run(&mut source, &mut target, &mut link)
            .expect("runs");

        let combines_at = |loc: Location| {
            program
                .nodes
                .iter()
                .filter(|n| matches!(n.op, Op::Combine { .. }) && n.location == loc)
                .count()
        };
        println!("=== {label} ===");
        println!(
            "combines: {} at source, {} at target; {} messages, {} bytes shipped",
            combines_at(Location::Source),
            combines_at(Location::Target),
            report.messages,
            report.bytes_shipped
        );
        println!(
            "source queries {:.1} ms, target queries {:.1} ms\n",
            report.times.source_queries.as_secs_f64() * 1000.0,
            report.times.target_queries.as_secs_f64() * 1000.0
        );
    }
}
