//! Parameterized services (paper Section 3.2): the Web-service call
//! carries arguments, the source filters the data accordingly, and only
//! the qualifying subset is exchanged — with proportionally less shipping
//! and processing.
//!
//! The request itself travels as a SOAP envelope with the arguments as
//! body parameters, exactly like the paper's
//! `CustomerInfoService(state=...)` sketch.
//!
//! Run with: `cargo run --release --example parameterized_service`

use xdx::core::selection::{Selection, ValuePred};
use xdx::core::DataExchange;
use xdx::net::{Link, NetworkProfile, SoapEnvelope};
use xdx::relational::Database;

fn main() {
    let schema = xdx::xmark::schema();
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(800_000));
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);

    // The requester's SOAP call, arguments included.
    let call = SoapEnvelope::request("GetAuctionData", &[("location", "Ghana")]);
    println!("=== service request on the wire ===\n{}\n", call.to_xml());

    // The middleware turns the argument into a Selection the source
    // resolves and pushes into every Scan.
    let location = call
        .body
        .child("location")
        .map(|e| e.text())
        .expect("argument present");
    let selection = Selection::new(&schema, "item", "location", ValuePred::Equals(location))
        .expect("valid selection");

    let run = |sel: Option<Selection>| {
        let mut source = xdx::xmark::load_source(&doc, &schema, &mf).expect("loads");
        let mut target = Database::new("target");
        let mut link = Link::new(NetworkProfile::internet_2004());
        let mut ex = DataExchange::new(&schema, mf.clone(), lf.clone());
        if let Some(s) = sel {
            ex = ex.with_selection(s);
        }
        ex.run(&mut source, &mut target, &mut link).expect("runs").0
    };

    let full = run(None);
    let subset = run(Some(selection));

    println!("=== full exchange ===\n{full}\n");
    println!("=== location=Ghana only ===\n{subset}\n");
    println!(
        "the argument cut shipping by {:.0}% ({} → {} bytes) and loaded {:.0}% fewer rows",
        (1.0 - subset.bytes_shipped as f64 / full.bytes_shipped as f64) * 100.0,
        full.bytes_shipped,
        subset.bytes_shipped,
        (1.0 - subset.rows_loaded as f64 / full.rows_loaded as f64) * 100.0,
    );
    assert!(subset.bytes_shipped < full.bytes_shipped);
}
