//! Quickstart: one optimized exchange, end to end.
//!
//! The source stores an auction document shredded per-element (MF); the
//! target wants the three coarse LF fragments. The middleware derives the
//! mapping, plans a distributed program, runs it over a simulated 2004
//! Internet link, and reports the step times.
//!
//! Run with: `cargo run --release --example quickstart`

use xdx::core::DataExchange;
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;

fn main() {
    // 1. The agreed-upon XML Schema (the paper's Figure-7 DTD subset)
    //    and a ~1 MB document.
    let schema = xdx::xmark::schema();
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(1_000_000));
    println!("document: {} bytes", doc.len());

    // 2. Source and target fragmentations.
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);
    println!(
        "source registers {} fragments (MF), target {} (LF)",
        mf.len(),
        lf.len()
    );

    // 3. Load the source system.
    let mut source = xdx::xmark::load_source(&doc, &schema, &mf).expect("source loads");
    let mut target = Database::new("target");
    let mut link = Link::new(NetworkProfile::internet_2004());

    // 4. Plan and execute the optimized exchange.
    let exchange = DataExchange::new(&schema, mf.clone(), lf.clone());
    let (report, program) = exchange
        .run(&mut source, &mut target, &mut link)
        .expect("runs");

    println!("\nplanned program:\n{}", program.display(&schema));
    println!("{report}");
    println!("\ntarget now holds:");
    for name in target.table_names() {
        println!("  {name}: {} rows", target.table(name).unwrap().len());
    }
}
