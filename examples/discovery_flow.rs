//! The discovery-agency flow of the paper's Figure 2 as actual SOAP
//! message exchange: both systems *register* their WSDL + fragmentation at
//! the agency over the wire (Step 1), then a requester asks the agency to
//! derive the mapping and an optimized data-transfer program (Steps 2–3).
//!
//! Run with: `cargo run --release --example discovery_flow`

use std::cell::RefCell;
use std::rc::Rc;
use xdx::core::exchange::DataExchange;
use xdx::net::endpoint::{call, ServiceHost};
use xdx::net::{Link, NetworkProfile, SoapEnvelope, SoapFault};
use xdx::wsdl::{FragmentationDecl, Registry, WsdlDefinition};
use xdx::xml::Element;

fn main() {
    let schema = xdx::xmark::schema();
    let wsdl = WsdlDefinition::single_service(
        "AuctionInfo",
        "http://auctions.wsdl",
        schema.clone(),
        "AuctionInfoService",
        "http://auctioninfo",
    );

    // ---- The discovery agency, as a SOAP service. ----------------------
    let registry = Rc::new(RefCell::new(Registry::new()));
    let mut agency = ServiceHost::new();
    {
        let registry = Rc::clone(&registry);
        let wsdl = wsdl.clone();
        agency.route("urn:Register", move |req| {
            let system = req
                .body
                .child("system")
                .map(|e| e.text())
                .ok_or_else(|| SoapFault {
                    code: "Client".into(),
                    string: "missing <system>".into(),
                })?;
            let fragmentation = req
                .body
                .child("fragmentation")
                .map(|e| FragmentationDecl::parse(&e.to_xml()))
                .transpose()
                .map_err(|e| SoapFault {
                    code: "Client".into(),
                    string: format!("bad fragmentation: {e}"),
                })?;
            registry
                .borrow_mut()
                .register(&system, wsdl.clone(), fragmentation);
            Ok(SoapEnvelope::new(
                Element::new("RegisterResponse").with_text(system),
            ))
        });
    }
    {
        let registry = Rc::clone(&registry);
        let schema = schema.clone();
        agency.route("urn:PlanExchange", move |req| {
            let get = |name: &str| {
                req.body
                    .child(name)
                    .map(|e| e.text())
                    .ok_or_else(|| SoapFault {
                        code: "Client".into(),
                        string: format!("missing <{name}>"),
                    })
            };
            let (source, target) = (get("source")?, get("target")?);
            let registry = registry.borrow();
            let exchange = DataExchange::from_registry(&schema, &registry, &source, &target)
                .map_err(|e| SoapFault {
                    code: "Client".into(),
                    string: e.to_string(),
                })?;
            // Plan against synthetic statistics (the agency has no data of
            // its own; Step 3's probe would refine this).
            let stats = xdx::core::cost::SchemaStats::multiplicative(&schema, 4, 16);
            let model = xdx::core::cost::CostModel::fast_network(stats);
            let (program, cost) = exchange.plan(&model).map_err(|e| SoapFault {
                code: "Server".into(),
                string: e.to_string(),
            })?;
            Ok(SoapEnvelope::new(
                Element::new("PlanExchangeResponse")
                    .with_attr("estimated-cost", format!("{cost:.0}"))
                    .with_text(program.display(&schema).to_string()),
            ))
        });
    }

    // ---- Step 1: both systems register over the wire. ------------------
    let mut link = Link::new(NetworkProfile::internet_2004());
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);
    for (system, frag) in [("auction-source", &mf), ("auction-sink", &lf)] {
        let decl_xml = frag.to_decl(&schema).to_xml(&schema).expect("renders");
        let decl_elem = xdx::xml::Document::parse(&decl_xml).expect("parses").root;
        let req = SoapEnvelope::new(
            Element::new("Register")
                .with_child(Element::new("system").with_text(system))
                .with_child(decl_elem),
        );
        let reply =
            call(&mut link, &mut agency, "/agency", "urn:Register", &req).expect("registers");
        println!("registered {} → {}", system, reply.body.text());
    }

    // ---- Steps 2–3: a requester asks for the exchange plan. ------------
    let req = SoapEnvelope::request(
        "PlanExchange",
        &[("source", "auction-source"), ("target", "auction-sink")],
    );
    let reply = call(&mut link, &mut agency, "/agency", "urn:PlanExchange", &req).expect("plans");
    println!(
        "\nagency returned a plan (estimated cost {}):\n{}",
        reply.body.attr("estimated-cost").unwrap_or("?"),
        reply.body.text()
    );

    // A bad request comes back as a proper SOAP fault.
    let bad = SoapEnvelope::request("PlanExchange", &[("source", "nobody")]);
    let fault = call(&mut link, &mut agency, "/agency", "urn:PlanExchange", &bad).unwrap_err();
    println!("fault for unknown system (as expected): {}", fault.string);
    println!(
        "\n{} messages crossed the simulated link in total",
        link.message_count()
    );
}
