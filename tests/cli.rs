//! Integration tests for the `xdx` command-line driver, run against the
//! actual compiled binary.

use std::process::Command;

fn xdx(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xdx"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = xdx(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("exchange"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = xdx(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn generate_to_stdout_is_wellformed() {
    let (ok, stdout, _) = xdx(&["generate", "--bytes", "20000"]);
    assert!(ok);
    assert!(xdx::xml::Document::parse(&stdout).is_ok());
    assert!(stdout.contains("<site>"));
}

#[test]
fn generate_to_file_and_exchange() {
    let dir = std::env::temp_dir().join(format!("xdx-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("doc.xml");
    let doc_str = doc.to_str().unwrap();

    let (ok, _, stderr) = xdx(&["generate", "--bytes", "50000", "--out", doc_str]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("wrote"));

    let (ok, stdout, stderr) = xdx(&[
        "exchange", "--doc", doc_str, "--source", "MF", "--target", "LF",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("DE MF->LF"));
    assert!(stdout.contains("target tables:"));
    assert!(stdout.contains("ITEM_"));

    let (ok, stdout, _) = xdx(&[
        "exchange",
        "--doc",
        doc_str,
        "--source",
        "MF",
        "--target",
        "MF",
        "--parallel",
        "4",
    ]);
    assert!(ok);
    assert!(stdout.contains("parallel x4"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_shows_program_and_cost() {
    let (ok, stdout, stderr) = xdx(&["plan", "--source", "LF", "--target", "MF"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Split"));
    assert!(stdout.contains("estimated cost"));
    assert!(stdout.contains("cross-edges"));
}

#[test]
fn plan_with_dumb_client_keeps_combines_at_source() {
    let (ok, stdout, _) = xdx(&[
        "plan",
        "--source",
        "MF",
        "--target",
        "LF",
        "--dumb-client",
        "--target-speed",
        "10",
    ]);
    assert!(ok);
    // Every combine line must carry the [S] location marker.
    for line in stdout.lines().filter(|l| l.contains("Combine(")) {
        assert!(line.contains("[S]"), "combine not at source: {line}");
    }
}

#[test]
fn compare_reports_savings() {
    let (ok, stdout, stderr) = xdx(&[
        "compare",
        "--source",
        "MF",
        "--target",
        "LF",
        "--network",
        "lan",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("DE MF->LF"));
    assert!(stdout.contains("PM MF->LF"));
    assert!(stdout.contains("saves"));
}

#[test]
fn wsdl_emits_definitions_and_fragmentation() {
    let (ok, stdout, _) = xdx(&["wsdl", "--fragmentation", "LF"]);
    assert!(ok);
    assert!(stdout.contains("<definitions"));
    assert!(stdout.contains("fragmentation name=\"LF\""));
    assert!(stdout.contains("attribute name=\"PARENT\""));
}

#[test]
fn exchange_with_selection_subsets() {
    let (ok, stdout, stderr) = xdx(&[
        "exchange",
        "--source",
        "MF",
        "--target",
        "LF",
        "--select",
        "item:location=Ghana",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("ITEM_"));
    // Extract the item row count and make sure it is well below the full
    // document's (~1176 items at the default 500 KB size).
    let items: usize = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("ITEM_"))
        .and_then(|l| l.rsplit_once(':'))
        .and_then(|(_, n)| n.trim().trim_end_matches(" rows").parse().ok())
        .expect("item row count");
    assert!(
        items > 0 && items < 600,
        "selection not applied: {items} rows"
    );
}

#[test]
fn advise_recommends_a_fragmentation() {
    let (ok, stdout, stderr) = xdx(&[
        "advise",
        "--side",
        "source",
        "--peer",
        "LF",
        "--doc-bytes-ignored",
        "x",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("advised fragmentation"));
    assert!(stdout.contains("planned cost"));
}

#[test]
fn shred_then_exchange_from_persisted_source() {
    let dir = std::env::temp_dir().join(format!("xdx-cli-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("doc.xml");
    let db = dir.join("db");
    let (ok, _, _) = xdx(&[
        "generate",
        "--bytes",
        "60000",
        "--out",
        doc.to_str().unwrap(),
    ]);
    assert!(ok);
    let (ok, _, stderr) = xdx(&[
        "shred",
        "--doc",
        doc.to_str().unwrap(),
        "--fragmentation",
        "MF",
        "--out",
        db.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("24 table(s)"));
    let (ok, stdout, stderr) = xdx(&[
        "exchange",
        "--source",
        "MF",
        "--target",
        "LF",
        "--source-dir",
        db.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    // ~140 items in a 60 KB document — far below the 500 KB default's
    // ~1176, proving the persisted source was actually used.
    let items: usize = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("ITEM_"))
        .and_then(|l| l.rsplit_once(':'))
        .and_then(|(_, n)| n.trim().trim_end_matches(" rows").parse().ok())
        .expect("item row count");
    assert!(items < 400, "persisted source ignored: {items} rows");
    // Mismatched fragmentation is caught.
    let (ok, _, stderr) = xdx(&[
        "exchange",
        "--source",
        "LF",
        "--target",
        "MF",
        "--source-dir",
        db.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("missing"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_required_option_is_reported() {
    let (ok, _, stderr) = xdx(&["exchange", "--source", "MF"]);
    assert!(!ok);
    assert!(stderr.contains("--target"));
}
