//! Workspace-level integration tests exercising the public facade the way
//! a downstream user would: register services, plan exchanges, run both
//! strategies, and check the paper's qualitative claims on real (small)
//! documents.

use xdx::core::cost::SystemProfile;
use xdx::core::pm::publish_and_map;
use xdx::core::{DataExchange, Location, Op, Optimizer};
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;
use xdx::wsdl::{Registry, WsdlDefinition};

const DOC_BYTES: usize = 120_000;

fn workload() -> (
    xdx::xml::SchemaTree,
    xdx::core::Fragmentation,
    xdx::core::Fragmentation,
    String,
) {
    let schema = xdx::xmark::schema();
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(DOC_BYTES));
    (schema, mf, lf, doc)
}

#[test]
fn de_ships_fewer_bytes_than_pm() {
    let (schema, mf, lf, doc) = workload();
    let mut de_source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
    let mut de_target = Database::new("de");
    let mut de_link = Link::new(NetworkProfile::internet_2004());
    let (de, _) = DataExchange::new(&schema, mf.clone(), lf.clone())
        .run(&mut de_source, &mut de_target, &mut de_link)
        .unwrap();

    let mut pm_source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
    let mut pm_target = Database::new("pm");
    let mut pm_link = Link::new(NetworkProfile::internet_2004());
    let pm = publish_and_map(
        &schema,
        &mf,
        &lf,
        &mut pm_source,
        &mut pm_target,
        &mut pm_link,
    )
    .unwrap();

    // Table 3's claim: fragment feeds beat tagged XML on the wire.
    assert!(
        de.bytes_shipped < pm.bytes_shipped,
        "DE shipped {} vs PM {}",
        de.bytes_shipped,
        pm.bytes_shipped
    );
    // And the data landing at the target is identical in volume.
    assert_eq!(de_target.total_rows(), pm_target.total_rows());
    // DE never tags or shreds.
    assert_eq!(de.times.tagging, std::time::Duration::ZERO);
    assert_eq!(de.times.shredding, std::time::Duration::ZERO);
    assert!(pm.times.shredding > std::time::Duration::ZERO);
}

#[test]
fn full_wsdl_flow_from_registry() {
    let (schema, mf, lf, doc) = workload();
    let wsdl = WsdlDefinition::single_service(
        "AuctionInfo",
        "http://auctions.wsdl",
        schema.clone(),
        "AuctionInfoService",
        "http://auctioninfo",
    );
    // Round-trip the registrations through actual WSDL/fragmentation XML.
    let wsdl = WsdlDefinition::parse(&wsdl.to_xml()).unwrap();
    let mf_decl_xml = mf.to_decl(&schema).to_xml(&schema).unwrap();
    let lf_decl_xml = lf.to_decl(&schema).to_xml(&schema).unwrap();
    let mf_decl = xdx::wsdl::FragmentationDecl::parse(&mf_decl_xml).unwrap();
    let lf_decl = xdx::wsdl::FragmentationDecl::parse(&lf_decl_xml).unwrap();

    let mut registry = Registry::new();
    registry.register("auction-source", wsdl.clone(), Some(mf_decl));
    registry.register("auction-sink", wsdl, Some(lf_decl));

    let exchange =
        DataExchange::from_registry(&schema, &registry, "auction-source", "auction-sink").unwrap();
    assert_eq!(exchange.source_frag.len(), 24);
    assert_eq!(exchange.target_frag.len(), 3);

    let mut source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
    let mut target = Database::new("sink");
    let mut link = Link::new(NetworkProfile::lan());
    let (report, _) = exchange.run(&mut source, &mut target, &mut link).unwrap();
    assert!(report.rows_loaded > 100);
    assert_eq!(target.table_names().len(), 3);
}

#[test]
fn dumb_client_never_receives_combines() {
    let (schema, mf, lf, doc) = workload();
    let mut source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
    let mut target = Database::new("dumb");
    let mut link = Link::new(NetworkProfile::lan());
    let (_, program) = DataExchange::new(&schema, mf.clone(), lf.clone())
        .with_profiles(SystemProfile::with_speed(0.1), SystemProfile::dumb_client())
        .run(&mut source, &mut target, &mut link)
        .unwrap();
    // Even with a 10× slower source, the dumb client cannot combine.
    for n in &program.nodes {
        if matches!(n.op, Op::Combine { .. }) {
            assert_eq!(n.location, Location::Source);
        }
    }
}

#[test]
fn fast_target_attracts_work_and_shrinks_source_time() {
    let (schema, mf, lf, doc) = workload();
    let run = |target_profile: SystemProfile| {
        let mut source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
        let mut target = Database::new("t");
        let mut link = Link::new(NetworkProfile::lan());
        DataExchange::new(&schema, mf.clone(), lf.clone())
            .with_profiles(SystemProfile::with_speed(1.0), target_profile)
            .run(&mut source, &mut target, &mut link)
            .unwrap()
    };
    let (_, fast_program) = run(SystemProfile::with_speed(10.0));
    let combines_at_target = fast_program
        .nodes
        .iter()
        .filter(|n| matches!(n.op, Op::Combine { .. }) && n.location == Location::Target)
        .count();
    assert_eq!(combines_at_target, fast_program.op_counts().1);
}

#[test]
fn optimal_and_greedy_agree_on_small_exchange() {
    let schema = xdx::xmark::schema();
    let lf = xdx::xmark::lf(&schema);
    let whole = xdx::core::Fragmentation::whole_document("whole", &schema);
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(30_000));
    for optimizer in [Optimizer::Greedy, Optimizer::Optimal { ordering_cap: 200 }] {
        let mut source = xdx::xmark::load_source(&doc, &schema, &whole).unwrap();
        let mut target = Database::new("t");
        let mut link = Link::new(NetworkProfile::lan());
        let (report, program) = DataExchange::new(&schema, whole.clone(), lf.clone())
            .with_optimizer(optimizer)
            .run(&mut source, &mut target, &mut link)
            .unwrap();
        // whole → LF is a pure split: 1 scan, 1 split, 3 writes.
        assert_eq!(program.op_counts(), (1, 0, 1, 3));
        assert!(report.rows_loaded > 0);
    }
}

#[test]
fn soap_control_flow_works_over_the_link() {
    // The service invocation itself (not the bulk data) travels as SOAP.
    use xdx::net::http::{Request, Response};
    use xdx::net::SoapEnvelope;
    let call = SoapEnvelope::request("GetAuctionData", &[("region", "africa")]);
    let req = Request::soap_post(
        "/auctioninfo",
        "urn:GetAuctionData",
        call.to_xml().into_bytes(),
    );
    let mut link = Link::new(NetworkProfile::internet_2004());
    let wire = req.to_bytes();
    link.send("service call", &wire);
    let arrived = Request::parse(&wire).unwrap();
    let env = SoapEnvelope::parse(std::str::from_utf8(&arrived.body).unwrap()).unwrap();
    assert_eq!(env.body.name, "GetAuctionData");
    assert_eq!(env.body.child("region").unwrap().text(), "africa");
    let reply = Response::ok_xml(b"<ok/>".to_vec());
    link.send("service reply", &reply.to_bytes());
    assert_eq!(link.message_count(), 2);
}
