//! Workspace-level property tests: for *arbitrary* valid fragmentation
//! pairs, planning must succeed, placements must be legal, the optimized
//! exchange must land exactly the rows publish&map lands, and the greedy
//! planner must never beat the exhaustive one.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xdx::core::cost::{CostModel, SchemaStats, SystemProfile};
use xdx::core::gen::Generator;
use xdx::core::optimal::cost_based_optim;
use xdx::core::pm::publish_and_map;
use xdx::core::{
    greedy, ksite_greedy, ksite_optimal, ksite_program_cost, optimal, DataExchange, Optimizer,
};
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;
use xdx::runtime::{plan_key, plan_key_with_fanout};
use xdx::sim::random_fragmentation;
use xdx::xml::SchemaTree;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Greedy never beats optimal; both produce valid placements.
    #[test]
    fn greedy_bounded_by_optimal(seed in 0u64..500, s_frags in 2usize..8, t_frags in 2usize..8,
                                 speed in prop::sample::select(vec![0.2f64, 1.0, 5.0])) {
        let schema = SchemaTree::balanced(2, 3, true); // 13 nodes
        let mut rng = StdRng::seed_from_u64(seed);
        let source = random_fragmentation(&schema, s_frags, "s", &mut rng);
        let target = random_fragmentation(&schema, t_frags, "t", &mut rng);
        let mut model = CostModel::fast_network(SchemaStats::multiplicative(&schema, 3, 10));
        model.target = SystemProfile::with_speed(speed);
        let gen = Generator::new(&schema, &source, &target);
        let best = optimal::optimal_program(&gen, &model, 20_000).unwrap();
        let (greedy_program, greedy_cost) = greedy::greedy(&gen, &model).unwrap();
        best.program.validate_placement().unwrap();
        greedy_program.validate_placement().unwrap();
        prop_assert!(greedy_cost >= best.cost - 1e-6,
            "greedy {greedy_cost} beat optimal {}", best.cost);
        let worst = optimal::worst_program(&gen, &model, 20_000).unwrap();
        prop_assert!(worst.cost >= best.cost - 1e-6);
        prop_assert!(greedy_cost <= worst.cost + 1e-6);
    }

    /// DE and PM land semantically identical data for random
    /// fragmentation pairs over a real document: re-publishing the
    /// document from either target yields the same XML. (Row counts may
    /// differ legitimately — outer-union feeds admit several encodings of
    /// the same instances depending on combine order.)
    #[test]
    fn de_equals_pm_on_random_fragmentations(seed in 0u64..200) {
        let schema = xdx::xmark::schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let source = random_fragmentation(&schema, 5, "src", &mut rng);
        let target = random_fragmentation(&schema, 4, "tgt", &mut rng);
        let doc = xdx::xmark::generate(xdx::xmark::GenConfig { target_bytes: 15_000, seed });

        let mut de_source = xdx::xmark::load_source(&doc, &schema, &source).unwrap();
        let mut de_target = Database::new("de");
        let mut de_link = Link::new(NetworkProfile::lan());
        let (de, _) = DataExchange::new(&schema, source.clone(), target.clone())
            .run(&mut de_source, &mut de_target, &mut de_link)
            .unwrap();

        let mut pm_source = xdx::xmark::load_source(&doc, &schema, &source).unwrap();
        let mut pm_target = Database::new("pm");
        let mut pm_link = Link::new(NetworkProfile::lan());
        let pm = publish_and_map(
            &schema, &source, &target, &mut pm_source, &mut pm_target, &mut pm_link,
        )
        .unwrap();

        prop_assert!(de.rows_loaded > 0 && pm.rows_loaded > 0);
        let de_doc = xdx::core::publish::publish(&schema, &target, &mut de_target).unwrap();
        let pm_doc = xdx::core::publish::publish(&schema, &target, &mut pm_target).unwrap();
        prop_assert_eq!(de_doc.xml, pm_doc.xml);
    }

    /// K-site placement on arbitrary fragmentation pairs: greedy never
    /// beats the exhaustive placement at any fanout, both placements are
    /// legal, and the k-site cost of any placed program is monotone in
    /// fanout (more subscribers never cost less).
    #[test]
    fn ksite_greedy_bounded_by_exhaustive(seed in 0u64..300, s_frags in 2usize..7,
                                          t_frags in 2usize..7, fanout in 2usize..6,
                                          speed in prop::sample::select(vec![0.2f64, 1.0, 5.0])) {
        let schema = SchemaTree::balanced(2, 3, true);
        let mut rng = StdRng::seed_from_u64(seed);
        let source = random_fragmentation(&schema, s_frags, "s", &mut rng);
        let target = random_fragmentation(&schema, t_frags, "t", &mut rng);
        let mut model = CostModel::fast_network(SchemaStats::multiplicative(&schema, 3, 10));
        model.target = SystemProfile::with_speed(speed);
        let gen = Generator::new(&schema, &source, &target);
        // Exhaustive: best k-site placement over every ordering.
        let orderings = gen.enumerate_orderings(20_000).unwrap();
        prop_assert!(!orderings.is_empty());
        let mut best = f64::INFINITY;
        for program in &orderings {
            let (placed, cost) = ksite_optimal(&schema, &model, program, fanout).unwrap();
            placed.validate_placement().unwrap();
            // Monotone in fanout: replicating to more subscribers never
            // gets cheaper.
            let wider = ksite_program_cost(&schema, &model, &placed, fanout + 1);
            prop_assert!(wider >= cost - 1e-6,
                "fanout {} cost {wider} undercut fanout {fanout} cost {cost}", fanout + 1);
            if cost < best { best = cost; }
        }
        let ordering = greedy::greedy_program(&gen, &model).unwrap();
        let (placed, greedy_cost) = ksite_greedy(&schema, &model, &ordering, fanout).unwrap();
        placed.validate_placement().unwrap();
        prop_assert!(greedy_cost >= best - 1e-6,
            "k-site greedy {greedy_cost} beat exhaustive {best} at fanout {fanout}");
    }

    /// The N=1 degenerate case, on arbitrary fragmentation pairs: a
    /// publish group of one reproduces the two-site plan byte for byte —
    /// same placements, bit-identical cost, and the fanout-tagged
    /// plan-cache key collapses to the two-site key (so single-subscriber
    /// publishes share cache entries with ordinary sessions).
    #[test]
    fn ksite_fanout_one_is_byte_identical_to_two_site(seed in 0u64..300, s_frags in 2usize..7,
                                                      t_frags in 2usize..7) {
        let schema = SchemaTree::balanced(2, 3, true);
        let mut rng = StdRng::seed_from_u64(seed);
        let source = random_fragmentation(&schema, s_frags, "s", &mut rng);
        let target = random_fragmentation(&schema, t_frags, "t", &mut rng);
        let model = CostModel::fast_network(SchemaStats::multiplicative(&schema, 3, 10));
        let gen = Generator::new(&schema, &source, &target);
        let ordering = greedy::greedy_program(&gen, &model).unwrap();

        let (two_site, two_cost) = greedy::greedy_placement(&schema, &model, &ordering).unwrap();
        let (k_site, k_cost) = ksite_greedy(&schema, &model, &ordering, 1).unwrap();
        prop_assert_eq!(two_cost.to_bits(), k_cost.to_bits());
        let locs = |p: &xdx::core::Program| p.nodes.iter().map(|n| n.location).collect::<Vec<_>>();
        prop_assert_eq!(locs(&two_site), locs(&k_site));

        let (two_opt, two_opt_cost) = cost_based_optim(&schema, &model, &ordering).unwrap();
        let (k_opt, k_opt_cost) = ksite_optimal(&schema, &model, &ordering, 1).unwrap();
        prop_assert_eq!(two_opt_cost.to_bits(), k_opt_cost.to_bits());
        prop_assert_eq!(locs(&two_opt), locs(&k_opt));

        prop_assert_eq!(
            ksite_program_cost(&schema, &model, &two_site, 1).to_bits(),
            model.program_cost(&schema, &two_site).to_bits()
        );

        for optimizer in [Optimizer::Greedy, Optimizer::Optimal { ordering_cap: 500 }] {
            let tagged = plan_key_with_fanout(&source, &target, &model, optimizer, None, 1);
            let plain = plan_key(&source, &target, &model, optimizer, None);
            prop_assert_eq!(tagged, plain, "fanout-1 key diverged from the two-site key");
        }
    }

    /// The exchange is lossless: exchanging then publishing from the
    /// target reproduces the original document.
    #[test]
    fn exchange_preserves_the_document(seed in 0u64..200) {
        let schema = xdx::xmark::schema();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let source = random_fragmentation(&schema, 6, "src", &mut rng);
        let target = random_fragmentation(&schema, 3, "tgt", &mut rng);
        let doc = xdx::xmark::generate(xdx::xmark::GenConfig { target_bytes: 12_000, seed });

        let mut src_db = xdx::xmark::load_source(&doc, &schema, &source).unwrap();
        let mut tgt_db = Database::new("t");
        let mut link = Link::new(NetworkProfile::lan());
        DataExchange::new(&schema, source.clone(), target.clone())
            .run(&mut src_db, &mut tgt_db, &mut link)
            .unwrap();

        // Re-publish from the *target* and compare to the original.
        let republished =
            xdx::core::publish::publish(&schema, &target, &mut tgt_db).unwrap();
        let body = republished.xml.split_once("?>").unwrap().1;
        prop_assert_eq!(body, doc.as_str());
    }
}
