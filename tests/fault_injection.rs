//! Failure-injection tests: a damaged wide-area link must surface as an
//! explicit error at the receiving side — never as silently corrupt target
//! data.

use xdx::core::exchange::DataExchange;
use xdx::core::Fragmentation;
use xdx::net::channel::Fault;
use xdx::net::{Link, NetworkProfile};
use xdx::relational::Database;

fn workload() -> (xdx::xml::SchemaTree, Fragmentation, Fragmentation, Database) {
    let schema = xdx::xmark::schema();
    let mf = xdx::xmark::mf(&schema);
    let lf = xdx::xmark::lf(&schema);
    let doc = xdx::xmark::generate(xdx::xmark::GenConfig::sized(40_000));
    let source = xdx::xmark::load_source(&doc, &schema, &mf).unwrap();
    (schema, mf, lf, source)
}

#[test]
fn corrupted_message_fails_loudly() {
    let (schema, mf, lf, mut source) = workload();
    let mut target = Database::new("t");
    let mut link = Link::new(NetworkProfile::lan()).with_fault(Fault::CorruptEveryNth(1));
    let err = DataExchange::new(&schema, mf, lf)
        .run(&mut source, &mut target, &mut link)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("corrupted") || msg.contains("content-length") || msg.contains("decode"),
        "unexpected error: {msg}"
    );
    // Nothing half-loaded: the failing fragment never reached a table.
    assert!(target.total_rows() == 0 || target.table_names().len() < 3);
}

#[test]
fn truncated_message_fails_loudly() {
    let (schema, mf, lf, mut source) = workload();
    let mut target = Database::new("t");
    let mut link = Link::new(NetworkProfile::lan()).with_fault(Fault::TruncateEveryNth(1));
    let err = DataExchange::new(&schema, mf, lf)
        .run(&mut source, &mut target, &mut link)
        .unwrap_err();
    // The HTTP layer catches the truncation before the feed decoder even
    // runs: either the header terminator is gone (short messages) or the
    // content-length no longer matches.
    let msg = err.to_string();
    assert!(
        msg.contains("content-length") || msg.contains("terminator"),
        "{msg}"
    );
}

#[test]
fn intermittent_fault_fails_only_when_hit() {
    let (schema, mf, lf, mut source) = workload();
    // MF→LF ships 3 messages by default; a fault on every 100th message
    // never triggers.
    let mut target = Database::new("t");
    let mut link = Link::new(NetworkProfile::lan()).with_fault(Fault::CorruptEveryNth(100));
    DataExchange::new(&schema, mf, lf)
        .run(&mut source, &mut target, &mut link)
        .expect("fault never fires within 3 messages");
    assert_eq!(target.table_names().len(), 3);
}

#[test]
fn healthy_link_is_unaffected_by_fault_plumbing() {
    let (schema, mf, lf, mut source) = workload();
    let mut target = Database::new("t");
    let mut link = Link::new(NetworkProfile::lan()); // Fault::None default
    let (report, _) = DataExchange::new(&schema, mf, lf)
        .run(&mut source, &mut target, &mut link)
        .unwrap();
    assert!(report.rows_loaded > 0);
}
